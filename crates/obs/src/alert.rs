//! Operational alerting: the paper's §VII surge machinery turned on
//! the system itself.
//!
//! §VII flags an AS whose conflict involvement suddenly exceeds
//! `max(baseline, 1) × surge_factor` of its EWMA profile. A feed-lag
//! spike, an ingest-rate collapse, a 5xx burst, a compaction backlog,
//! or a p99 latency surge is the same statistical object over an
//! operational series — so each [`AlertRule`] wraps one
//! [`moas_core::detector::EwmaSurge`] (the profiler machinery with the
//! per-AS map replaced by one baseline) and evaluates it over the
//! latest [`crate::tsdb`] sample on every tick.
//!
//! Rules run a pending → firing → resolved state machine with
//! hysteresis: a breach must persist `pending_ticks` before firing
//! (suppressing single-sample blips), a firing rule needs
//! `resolve_ticks` consecutive clean samples to resolve (suppressing
//! flapping), and while a rule is pending or firing its baseline is
//! *frozen* — a sustained incident cannot absorb itself into the
//! baseline the way a repeated §VII origin surge eventually does.
//! Every state transition lands in the registry's event journal
//! (`alert_pending` / `alert_firing` / `alert_resolved` / `alert_ok`),
//! and [`AlertEngine::firing_page`] feeds the server's `/readyz` so a
//! page-severity alert sheds traffic at the load balancer.

use crate::registry::Registry;
use crate::tsdb::Tsdb;
use moas_core::detector::{EwmaSurge, SurgeConfig};
use std::sync::{Arc, Mutex};

/// How loud a firing rule is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertSeverity {
    /// Worth a look; does not affect readiness.
    Warn,
    /// Page the operator; a firing page rule fails `/readyz`.
    Page,
}

impl AlertSeverity {
    /// Lower-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertSeverity::Warn => "warn",
            AlertSeverity::Page => "page",
        }
    }
}

/// What the rule evaluates each tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertInput {
    /// The sampled value itself (gauges, derived quantiles).
    Level,
    /// The per-second derivative between consecutive samples
    /// (counters: updates/s, responses/s).
    Rate,
}

/// Which way the anomaly points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertDirection {
    /// Breach when the value surges *above* the baseline
    /// (`value > max(baseline, 1) × surge_factor`, §VII's test).
    Up,
    /// Breach when the value collapses *below* the baseline
    /// (`baseline ≥ min_value` and `value < baseline / surge_factor`)
    /// — an ingest rate falling off a cliff.
    Down,
}

/// One alert rule over one tsdb series.
#[derive(Debug, Clone)]
pub struct AlertRule {
    /// Stable rule name (journal lines, `/v1/alerts`, runbooks).
    pub name: &'static str,
    /// The tsdb series the rule watches.
    pub series: String,
    /// Exact label set of the watched series.
    pub labels: Vec<(String, String)>,
    /// Level or per-second rate input.
    pub input: AlertInput,
    /// Surge (up) or collapse (down) detection.
    pub direction: AlertDirection,
    /// The §VII detector parameters (alpha, surge factor, floor).
    pub detector: SurgeConfig,
    /// Consecutive breaching ticks before pending becomes firing.
    pub pending_ticks: u32,
    /// Consecutive clean ticks before firing becomes resolved.
    pub resolve_ticks: u32,
    /// Warn or page.
    pub severity: AlertSeverity,
}

/// The rule state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RuleState {
    Ok,
    /// Breaching, counting up to `pending_ticks`.
    Pending(u32),
    /// Firing; the counter is the current clean-tick streak.
    Firing(u32),
    /// Fired and recovered; sticky until the next breach.
    Resolved,
}

impl RuleState {
    fn as_str(self) -> &'static str {
        match self {
            RuleState::Ok => "ok",
            RuleState::Pending(_) => "pending",
            RuleState::Firing(_) => "firing",
            RuleState::Resolved => "resolved",
        }
    }
}

/// One rule's current standing, for `/v1/alerts`.
#[derive(Debug, Clone)]
pub struct AlertStatus {
    /// Rule name.
    pub name: &'static str,
    /// Watched series.
    pub series: String,
    /// `warn` / `page`.
    pub severity: AlertSeverity,
    /// `ok` / `pending` / `firing` / `resolved`.
    pub state: &'static str,
    /// Last evaluated input value (level or rate), if any sample has
    /// been seen.
    pub value: Option<f64>,
    /// The detector's current EWMA baseline.
    pub baseline: f64,
    /// Unix seconds when the rule entered its current state.
    pub since_unix: u64,
}

struct RuleRuntime {
    rule: AlertRule,
    detector: EwmaSurge,
    state: RuleState,
    /// Last evaluated input value.
    value: Option<f64>,
    /// Previous raw sample `(unix, value)` for rate derivation.
    prev_raw: Option<(u64, f64)>,
    since_unix: u64,
}

/// The alert engine: rules plus the tsdb they watch and the journal
/// they report transitions to.
pub struct AlertEngine {
    registry: Arc<Registry>,
    tsdb: Arc<Tsdb>,
    rules: Mutex<Vec<RuleRuntime>>,
}

impl std::fmt::Debug for AlertEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.rules.lock().expect("alert lock poisoned").len();
        write!(f, "AlertEngine({n} rules)")
    }
}

impl AlertEngine {
    /// An engine running the standard rule set (see
    /// [`standard_rules`]).
    pub fn new(registry: Arc<Registry>, tsdb: Arc<Tsdb>) -> Self {
        AlertEngine::with_rules(registry, tsdb, standard_rules())
    }

    /// An engine running a custom rule set.
    pub fn with_rules(registry: Arc<Registry>, tsdb: Arc<Tsdb>, rules: Vec<AlertRule>) -> Self {
        let runtimes = rules
            .into_iter()
            .map(|rule| RuleRuntime {
                detector: EwmaSurge::new(rule.detector),
                rule,
                state: RuleState::Ok,
                value: None,
                prev_raw: None,
                since_unix: 0,
            })
            .collect();
        AlertEngine {
            registry,
            tsdb,
            rules: Mutex::new(runtimes),
        }
    }

    /// Evaluates every rule against the latest tsdb samples. Call
    /// after each [`Tsdb::sample`] tick (the background
    /// [`crate::tsdb::Sampler`] hook does exactly this).
    pub fn tick(&self, now_unix: u64) {
        let mut rules = self.rules.lock().expect("alert lock poisoned");
        for rt in rules.iter_mut() {
            let Some((sample_ts, raw)) = self.tsdb.latest(&rt.rule.series, &rt.rule.labels) else {
                continue; // series not sampled yet
            };
            let value = match rt.rule.input {
                AlertInput::Level => raw,
                AlertInput::Rate => {
                    let prev = rt.prev_raw.replace((sample_ts, raw));
                    match prev {
                        Some((pt, pv)) if sample_ts > pt => {
                            (raw - pv).max(0.0) / (sample_ts - pt) as f64
                        }
                        // First sample, or no new sample since the
                        // last tick: no rate to evaluate.
                        _ => continue,
                    }
                }
            };
            rt.value = Some(value);

            let breach = match rt.rule.direction {
                AlertDirection::Up => rt.detector.breach(value),
                AlertDirection::Down => {
                    let baseline = rt.detector.baseline();
                    baseline >= rt.detector.config().min_value
                        && value < baseline / rt.detector.config().surge_factor
                }
            };
            // Hysteresis: the baseline only learns from clean samples,
            // so an ongoing incident cannot absorb itself.
            if !breach {
                rt.detector.advance(value);
            }

            let next = match (rt.state, breach) {
                (RuleState::Ok | RuleState::Resolved, true) => RuleState::Pending(1),
                (RuleState::Pending(n), true) => RuleState::Pending(n + 1),
                (RuleState::Pending(_), false) => RuleState::Ok,
                (RuleState::Firing(_), true) => RuleState::Firing(0),
                (RuleState::Firing(n), false) => RuleState::Firing(n + 1),
                (s, _) => s,
            };
            // Promotions out of counting states.
            let next = match next {
                RuleState::Pending(n) if n >= rt.rule.pending_ticks => RuleState::Firing(0),
                RuleState::Firing(n) if n >= rt.rule.resolve_ticks && rt.rule.resolve_ticks > 0 => {
                    RuleState::Resolved
                }
                s => s,
            };

            if std::mem::discriminant(&next) != std::mem::discriminant(&rt.state) {
                rt.since_unix = now_unix;
                let kind = match next {
                    RuleState::Pending(_) => "alert_pending",
                    RuleState::Firing(_) => "alert_firing",
                    RuleState::Resolved => "alert_resolved",
                    RuleState::Ok => "alert_ok",
                };
                self.registry.journal().record(
                    kind,
                    format!(
                        "alert {} {}: {} = {:.2} (baseline {:.2})",
                        rt.rule.name,
                        next.as_str(),
                        rt.rule.series,
                        value,
                        rt.detector.baseline(),
                    ),
                );
            }
            rt.state = next;
        }
    }

    /// Every rule's current standing, rule order.
    pub fn report(&self) -> Vec<AlertStatus> {
        let rules = self.rules.lock().expect("alert lock poisoned");
        rules
            .iter()
            .map(|rt| AlertStatus {
                name: rt.rule.name,
                series: rt.rule.series.clone(),
                severity: rt.rule.severity,
                state: rt.state.as_str(),
                value: rt.value,
                baseline: rt.detector.baseline(),
                since_unix: rt.since_unix,
            })
            .collect()
    }

    /// The first page-severity rule currently firing, if any — the
    /// readiness check's input.
    pub fn firing_page(&self) -> Option<&'static str> {
        let rules = self.rules.lock().expect("alert lock poisoned");
        rules
            .iter()
            .find(|rt| {
                matches!(rt.state, RuleState::Firing(_)) && rt.rule.severity == AlertSeverity::Page
            })
            .map(|rt| rt.rule.name)
    }

    /// The tsdb this engine evaluates over.
    pub fn tsdb(&self) -> &Arc<Tsdb> {
        &self.tsdb
    }
}

/// The standard operational rule set — the §VII parameters table the
/// README runbook documents.
pub fn standard_rules() -> Vec<AlertRule> {
    vec![
        AlertRule {
            name: "feed_lag",
            series: "moas_feed_lag_seconds".to_string(),
            labels: Vec::new(),
            input: AlertInput::Level,
            direction: AlertDirection::Up,
            detector: SurgeConfig {
                alpha: 0.3,
                surge_factor: 10.0,
                min_value: 300.0,
            },
            pending_ticks: 2,
            resolve_ticks: 2,
            severity: AlertSeverity::Page,
        },
        AlertRule {
            name: "ingest_rate_collapse",
            series: "moas_monitor_updates_applied_total".to_string(),
            labels: Vec::new(),
            input: AlertInput::Rate,
            direction: AlertDirection::Down,
            detector: SurgeConfig {
                alpha: 0.2,
                surge_factor: 10.0,
                min_value: 100.0,
            },
            pending_ticks: 3,
            resolve_ticks: 3,
            severity: AlertSeverity::Warn,
        },
        AlertRule {
            name: "server_5xx",
            series: "moas_serve_responses_total".to_string(),
            labels: vec![("class".to_string(), "5xx".to_string())],
            input: AlertInput::Rate,
            direction: AlertDirection::Up,
            detector: SurgeConfig {
                alpha: 0.2,
                surge_factor: 10.0,
                min_value: 1.0,
            },
            pending_ticks: 2,
            resolve_ticks: 3,
            severity: AlertSeverity::Page,
        },
        AlertRule {
            name: "compaction_backlog",
            series: "moas_store_compaction_lag".to_string(),
            labels: Vec::new(),
            input: AlertInput::Level,
            direction: AlertDirection::Up,
            detector: SurgeConfig {
                alpha: 0.1,
                surge_factor: 4.0,
                min_value: 8.0,
            },
            pending_ticks: 3,
            resolve_ticks: 2,
            severity: AlertSeverity::Warn,
        },
        AlertRule {
            name: "request_p99_latency",
            series: "moas_serve_request_duration_us:p99".to_string(),
            labels: Vec::new(),
            input: AlertInput::Level,
            direction: AlertDirection::Up,
            detector: SurgeConfig {
                alpha: 0.2,
                surge_factor: 8.0,
                min_value: 250_000.0,
            },
            pending_ticks: 2,
            resolve_ticks: 2,
            severity: AlertSeverity::Warn,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lag_rule() -> AlertRule {
        AlertRule {
            name: "feed_lag",
            series: "moas_feed_lag_seconds".to_string(),
            labels: Vec::new(),
            input: AlertInput::Level,
            direction: AlertDirection::Up,
            detector: SurgeConfig {
                alpha: 0.3,
                surge_factor: 10.0,
                min_value: 300.0,
            },
            pending_ticks: 2,
            resolve_ticks: 2,
            severity: AlertSeverity::Page,
        }
    }

    fn setup() -> (Arc<Registry>, Arc<Tsdb>, AlertEngine) {
        let registry = Arc::new(Registry::new());
        let tsdb = Arc::new(Tsdb::default());
        let engine =
            AlertEngine::with_rules(Arc::clone(&registry), Arc::clone(&tsdb), vec![lag_rule()]);
        (registry, tsdb, engine)
    }

    #[test]
    fn level_rule_walks_pending_firing_resolved() {
        let (registry, tsdb, engine) = setup();
        let lag = registry.gauge("moas_feed_lag_seconds", "Lag.");

        // Calm samples: rule stays ok and learns the baseline.
        let mut now = 1_000u64;
        for _ in 0..3 {
            lag.set(5);
            tsdb.sample(&registry, now);
            engine.tick(now);
            now += 10;
        }
        assert_eq!(engine.report()[0].state, "ok");

        // The stall: lag jumps past min_value and 10x baseline.
        lag.set(1_200);
        tsdb.sample(&registry, now);
        engine.tick(now);
        assert_eq!(engine.report()[0].state, "pending");
        assert!(engine.firing_page().is_none(), "pending is not firing");
        now += 10;

        tsdb.sample(&registry, now);
        engine.tick(now);
        assert_eq!(engine.report()[0].state, "firing");
        assert_eq!(engine.firing_page(), Some("feed_lag"));
        now += 10;

        // Still breaching: stays firing, baseline stays frozen.
        let frozen = engine.report()[0].baseline;
        tsdb.sample(&registry, now);
        engine.tick(now);
        assert_eq!(engine.report()[0].state, "firing");
        assert_eq!(engine.report()[0].baseline, frozen, "hysteresis freeze");
        now += 10;

        // Recovery needs resolve_ticks clean samples.
        lag.set(0);
        tsdb.sample(&registry, now);
        engine.tick(now);
        assert_eq!(engine.report()[0].state, "firing", "one clean tick");
        now += 10;
        tsdb.sample(&registry, now);
        engine.tick(now);
        assert_eq!(engine.report()[0].state, "resolved");
        assert!(engine.firing_page().is_none());

        // Transitions were journaled in order.
        let kinds: Vec<String> = registry
            .journal()
            .events()
            .iter()
            .map(|e| e.kind.clone())
            .collect();
        assert_eq!(
            kinds,
            vec!["alert_pending", "alert_firing", "alert_resolved"]
        );
    }

    #[test]
    fn single_blip_cancels_back_to_ok() {
        let (registry, tsdb, engine) = setup();
        let lag = registry.gauge("moas_feed_lag_seconds", "Lag.");
        lag.set(1_200);
        tsdb.sample(&registry, 1_000);
        engine.tick(1_000);
        assert_eq!(engine.report()[0].state, "pending");
        lag.set(0);
        tsdb.sample(&registry, 1_010);
        engine.tick(1_010);
        assert_eq!(engine.report()[0].state, "ok");
        let kinds: Vec<String> = registry
            .journal()
            .events()
            .iter()
            .map(|e| e.kind.clone())
            .collect();
        assert_eq!(kinds, vec!["alert_pending", "alert_ok"]);
    }

    #[test]
    fn rate_collapse_rule_fires_downward() {
        let registry = Arc::new(Registry::new());
        let tsdb = Arc::new(Tsdb::default());
        let rule = AlertRule {
            name: "ingest_rate_collapse",
            series: "moas_monitor_updates_applied_total".to_string(),
            labels: Vec::new(),
            input: AlertInput::Rate,
            direction: AlertDirection::Down,
            detector: SurgeConfig {
                alpha: 0.5,
                surge_factor: 10.0,
                min_value: 100.0,
            },
            pending_ticks: 1,
            resolve_ticks: 1,
            severity: AlertSeverity::Warn,
        };
        let engine = AlertEngine::with_rules(Arc::clone(&registry), Arc::clone(&tsdb), vec![rule]);
        let c = registry.counter("moas_monitor_updates_applied_total", "Applied.");

        // Healthy ingest: 10k updates per 10 s tick → 1000/s.
        let mut now = 1_000u64;
        for _ in 0..4 {
            c.add(10_000);
            tsdb.sample(&registry, now);
            engine.tick(now);
            now += 10;
        }
        assert_eq!(engine.report()[0].state, "ok");
        let baseline = engine.report()[0].baseline;
        assert!(baseline > 500.0, "baseline learned the rate: {baseline}");

        // Collapse: the counter stops moving → rate 0 < baseline/10.
        tsdb.sample(&registry, now);
        engine.tick(now);
        assert_eq!(engine.report()[0].state, "firing");
    }

    #[test]
    fn min_value_floor_suppresses_cold_start_noise() {
        let (registry, tsdb, engine) = setup();
        let lag = registry.gauge("moas_feed_lag_seconds", "Lag.");
        // 120 > 10x baseline(0→max1)=10 but below the 300 s floor.
        lag.set(120);
        tsdb.sample(&registry, 1_000);
        engine.tick(1_000);
        assert_eq!(engine.report()[0].state, "ok", "floor suppresses");
    }
}
