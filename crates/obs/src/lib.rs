//! # moas-obs — the unified observability layer
//!
//! Every long-running crate in this workspace (monitor, history,
//! feed, server) used to grow its own ad-hoc atomics. This crate
//! replaces that with one std-only subsystem the whole pipeline
//! shares:
//!
//! * [`Registry`] — a central registry of named [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket log-scale [`Histogram`]s. Handles
//!   are registered once at startup and recorded through relaxed
//!   atomics: the hot path is one atomic add per counter observation
//!   (two for a histogram: bucket + sum), no locks, no allocation.
//! * Prometheus text exposition — [`Registry::render_prometheus`]
//!   renders every registered series in the text format 0.0.4 shape
//!   (`# HELP`/`# TYPE`, escaped labels, cumulative
//!   `_bucket`/`_sum`/`_count` histogram series) for a `GET /metrics`
//!   scrape endpoint.
//! * Stage timing — [`Registry::stage_histogram`] names one pipeline
//!   stage (MRT decode, shard apply, event append, segment seal,
//!   compaction, epoch publish, feed poll/tail, request
//!   parse/route/serialize) as a labeled series of one shared
//!   `moas_stage_duration_us` histogram family.
//! * [`LagTracker`] — the derived end-to-end `ingest_to_serve_lag`
//!   gauge: newest record timestamp ingested vs. the timestamp
//!   horizon of the epoch currently served.
//! * [`EventJournal`] — a bounded ring of structured operational
//!   events (slow requests, feed gaps, compaction runs, corrupt
//!   segment skips), served under `/v1/events/log`.
//!
//! ```
//! use moas_obs::Registry;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! let ingested = registry.counter("demo_records_ingested_total", "Records ingested.");
//! let latency = registry.stage_histogram("demo_stage");
//! ingested.add(3);
//! latency.observe(250);
//! let text = registry.render_prometheus();
//! assert!(text.contains("demo_records_ingested_total 3"));
//! assert!(text.contains("moas_stage_duration_us_bucket{stage=\"demo_stage\",le=\"256\"} 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod lag;
pub mod registry;

pub use journal::{EventJournal, JournalEvent};
pub use lag::LagTracker;
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, Registry};
