//! # moas-obs — the unified observability layer
//!
//! Every long-running crate in this workspace (monitor, history,
//! feed, server) used to grow its own ad-hoc atomics. This crate
//! replaces that with one std-only subsystem the whole pipeline
//! shares:
//!
//! * [`Registry`] — a central registry of named [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket log-scale [`Histogram`]s. Handles
//!   are registered once at startup and recorded through relaxed
//!   atomics: the hot path is one atomic add per counter observation
//!   (two for a histogram: bucket + sum), no locks, no allocation.
//! * Prometheus text exposition — [`Registry::render_prometheus`]
//!   renders every registered series in the text format 0.0.4 shape
//!   (`# HELP`/`# TYPE`, escaped labels, cumulative
//!   `_bucket`/`_sum`/`_count` histogram series) for a `GET /metrics`
//!   scrape endpoint.
//! * Stage timing — [`Registry::stage_histogram`] names one pipeline
//!   stage (MRT decode, shard apply, event append, segment seal,
//!   compaction, epoch publish, feed poll/tail, request
//!   parse/route/serialize) as a labeled series of one shared
//!   `moas_stage_duration_us` histogram family.
//! * [`LagTracker`] — the derived end-to-end `ingest_to_serve_lag`
//!   gauge: newest record timestamp ingested vs. the timestamp
//!   horizon of the epoch currently served.
//! * [`EventJournal`] — a bounded ring of structured operational
//!   events (slow requests, feed gaps, compaction runs, corrupt
//!   segment skips, alert transitions), served under
//!   `/v1/events/log`, with an eviction counter
//!   (`moas_journal_dropped_total`) so overflow is visible.
//! * [`Tracer`] — head-sampled span trees ([`trace`]): one trace id
//!   follows an MRT file from `feed_poll` through decode, shard
//!   apply, append, seal, and `epoch_publish`, and a served request
//!   from parse to serialize. Spans land in a bounded ring; the
//!   unsampled path is a single relaxed atomic load.
//! * [`Tsdb`] — a fixed-memory two-tier ring time-series store
//!   ([`tsdb`]): a background [`Sampler`] snapshots every registry
//!   scalar (plus windowed `:p99` series derived from histograms)
//!   every 10 s into a 1 h fine ring and a 24 h five-minute coarse
//!   ring, queryable under `/v1/series`.
//! * [`AlertEngine`] — §VII-style operational alerting ([`alert`]):
//!   each rule runs the paper's EWMA surge detector over one tsdb
//!   series (feed lag, ingest rate, 5xx rate, compaction backlog,
//!   p99 latency) with pending → firing → resolved hysteresis,
//!   journal events on transitions, and a firing-page hook for
//!   `/readyz`.
//! * Continuous profiling ([`prof`]) — the process-global thread-name
//!   registry ([`prof::register_thread`]) plus the [`CpuLedger`]
//!   attributing `/proc/self/task/*/stat` CPU to named pipeline
//!   threads, and the [`Profiler`] folding the span ring into
//!   per-stage self-time profiles and flamegraph.pl folded stacks
//!   for `GET /v1/profile`.
//! * Resource attribution ([`resource`]) — the [`ResourceLedger`] of
//!   per-component retained-byte probes
//!   (`moas_resource_bytes{component=...}`), process RSS, and the
//!   standard `moas_build_info` / `moas_process_start_time_seconds`
//!   gauges.
//! * Workload analytics ([`workload`]) — the [`Workload`] recorder
//!   behind `GET /v1/workload`: a space-saving hot-key sketch,
//!   per-endpoint latency/size histograms, and a bounded slow-query
//!   log carrying trace ids.
//!
//! ```
//! use moas_obs::Registry;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! let ingested = registry.counter("demo_records_ingested_total", "Records ingested.");
//! let latency = registry.stage_histogram("demo_stage");
//! ingested.add(3);
//! latency.observe(250);
//! let text = registry.render_prometheus();
//! assert!(text.contains("demo_records_ingested_total 3"));
//! assert!(text.contains("moas_stage_duration_us_bucket{stage=\"demo_stage\",le=\"256\"} 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod journal;
pub mod lag;
pub mod prof;
pub mod registry;
pub mod resource;
pub mod trace;
pub mod tsdb;
pub mod workload;

pub use alert::{AlertDirection, AlertEngine, AlertInput, AlertRule, AlertSeverity, AlertStatus};
pub use journal::{EventJournal, JournalEvent};
pub use lag::LagTracker;
pub use prof::{CpuLedger, Profiler, StageProfile};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, Registry};
pub use resource::ResourceLedger;
pub use trace::{Span, SpanContext, SpanRecord, Tracer};
pub use tsdb::{Sampler, SeriesPoints, Tsdb, TsdbConfig};
pub use workload::{SlowQuery, TopEntry, Workload, WorkloadReport};
