//! Query workload analytics: who is asking what, how hot, how slow.
//!
//! A serving replica needs three views of its own traffic to be
//! operable: the *hot keys* (which endpoint × prefix combinations
//! dominate — the cache-sizing and shard-balancing input), the
//! *per-endpoint distributions* (latency and response-size histograms,
//! published on the registry as `moas_endpoint_duration_us{endpoint=}`
//! and `moas_endpoint_response_bytes{endpoint=}`), and the *slow tail*
//! (a bounded ring of the slowest recent queries, each carrying its
//! trace id so `/v1/trace/{id}` explains it). All three are bounded:
//! the top-k sketch is a fixed-capacity space-saving summary
//! (Metwally et al. — evict the minimum, inherit its count as the
//! error bound), endpoint cardinality is capped by route
//! normalization at the call site, and the slow log is a ring.
//!
//! [`Workload::record`] is the single entry point, designed to sit on
//! the server's per-request path: one short mutex hold, no
//! allocation for repeat endpoints.

use crate::registry::{Histogram, Registry};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Default space-saving sketch capacity (distinct keys tracked).
pub const DEFAULT_TOPK_CAPACITY: usize = 64;
/// Default slow-query ring capacity.
pub const DEFAULT_SLOW_LOG_CAPACITY: usize = 64;

/// One entry of the space-saving top-k summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopEntry {
    /// Normalized endpoint (`/v1/prefix/{prefix}`, …).
    pub endpoint: String,
    /// The request's key within the endpoint (a prefix, a series
    /// name); empty for keyless endpoints.
    pub key: String,
    /// Estimated hit count (an overestimate by at most `error`).
    pub count: u64,
    /// Maximum overestimation inherited from evicted entries.
    pub error: u64,
}

/// Fixed-capacity space-saving frequency sketch: when full, the
/// minimum-count entry is evicted and the newcomer inherits its count
/// as both floor and error bound, so heavy hitters are never
/// undercounted and the error is tracked per entry.
struct SpaceSaving {
    capacity: usize,
    counts: HashMap<(String, String), (u64, u64)>,
}

impl SpaceSaving {
    fn new(capacity: usize) -> Self {
        SpaceSaving {
            capacity: capacity.max(1),
            counts: HashMap::new(),
        }
    }

    fn record(&mut self, endpoint: &str, key: &str) {
        if let Some((count, _)) = self
            .counts
            .get_mut(&(endpoint.to_string(), key.to_string()))
        {
            *count += 1;
            return;
        }
        if self.counts.len() < self.capacity {
            self.counts
                .insert((endpoint.to_string(), key.to_string()), (1, 0));
            return;
        }
        let (min_key, &(min_count, _)) = self
            .counts
            .iter()
            .min_by_key(|(_, &(count, _))| count)
            .expect("sketch non-empty at capacity");
        let min_key = min_key.clone();
        self.counts.remove(&min_key);
        self.counts.insert(
            (endpoint.to_string(), key.to_string()),
            (min_count + 1, min_count),
        );
    }

    fn top(&self, limit: usize) -> Vec<TopEntry> {
        let mut entries: Vec<TopEntry> = self
            .counts
            .iter()
            .map(|((endpoint, key), &(count, error))| TopEntry {
                endpoint: endpoint.clone(),
                key: key.clone(),
                count,
                error,
            })
            .collect();
        entries.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.endpoint.cmp(&b.endpoint))
                .then_with(|| a.key.cmp(&b.key))
        });
        entries.truncate(limit);
        entries
    }
}

/// One slow-query record.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Wall-clock milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Normalized endpoint.
    pub endpoint: String,
    /// The raw request target (path plus query string).
    pub target: String,
    /// Service time, microseconds.
    pub micros: u64,
    /// Response status code.
    pub status: u16,
    /// Trace id (0 when the request was unsampled).
    pub trace: u64,
}

struct EndpointStats {
    latency: Histogram,
    bytes: Histogram,
    count: u64,
}

struct WorkloadInner {
    topk: SpaceSaving,
    endpoints: BTreeMap<String, EndpointStats>,
    slow: VecDeque<SlowQuery>,
    slow_capacity: usize,
    recorded: u64,
}

/// Per-endpoint aggregate for the JSON report.
#[derive(Debug, Clone)]
pub struct EndpointReport {
    /// Normalized endpoint.
    pub endpoint: String,
    /// Requests recorded.
    pub count: u64,
    /// Latency quantiles, microseconds (p50, p99); `None` when empty.
    pub p50_us: Option<u64>,
    /// See `p50_us`.
    pub p99_us: Option<u64>,
    /// Response-size p99, bytes.
    pub p99_bytes: Option<u64>,
}

/// The full workload report backing `GET /v1/workload`.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Total requests recorded since start.
    pub recorded: u64,
    /// Hot keys, heaviest first.
    pub top: Vec<TopEntry>,
    /// Per-endpoint aggregates, sorted by endpoint.
    pub endpoints: Vec<EndpointReport>,
    /// Slow queries, most recent last.
    pub slow: Vec<SlowQuery>,
    /// The slow-log threshold in effect, microseconds.
    pub slow_threshold_us: u64,
}

/// The workload analytics recorder. See the module docs.
pub struct Workload {
    registry: Arc<Registry>,
    slow_threshold_us: u64,
    inner: Mutex<WorkloadInner>,
}

impl Workload {
    /// A recorder publishing histograms onto `registry`; requests at
    /// or above `slow_threshold_us` enter the slow log.
    pub fn new(registry: Arc<Registry>, slow_threshold_us: u64) -> Self {
        Workload::with_capacities(
            registry,
            slow_threshold_us,
            DEFAULT_TOPK_CAPACITY,
            DEFAULT_SLOW_LOG_CAPACITY,
        )
    }

    /// A recorder with explicit sketch and slow-log capacities.
    pub fn with_capacities(
        registry: Arc<Registry>,
        slow_threshold_us: u64,
        topk_capacity: usize,
        slow_capacity: usize,
    ) -> Self {
        Workload {
            registry,
            slow_threshold_us,
            inner: Mutex::new(WorkloadInner {
                topk: SpaceSaving::new(topk_capacity),
                endpoints: BTreeMap::new(),
                slow: VecDeque::with_capacity(slow_capacity.max(1)),
                slow_capacity: slow_capacity.max(1),
                recorded: 0,
            }),
        }
    }

    /// The slow-log threshold, microseconds.
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us
    }

    /// Records one served request. `endpoint` must already be
    /// normalized to a bounded set (the caller knows its routes);
    /// `key` is the hot-key dimension within the endpoint (prefix,
    /// series name — empty for keyless endpoints); `target` is the
    /// raw path+query kept only if the request enters the slow log.
    #[allow(clippy::too_many_arguments)] // hot-path record; a builder would cost an alloc
    pub fn record(
        &self,
        endpoint: &str,
        key: &str,
        target: &str,
        micros: u64,
        response_bytes: u64,
        status: u16,
        trace: u64,
    ) {
        let mut inner = self.inner.lock().expect("workload poisoned");
        inner.recorded += 1;
        inner.topk.record(endpoint, key);
        if !inner.endpoints.contains_key(endpoint) {
            let latency = self.registry.histogram_with(
                "moas_endpoint_duration_us",
                &[("endpoint", endpoint)],
                "Request service time by normalized endpoint.",
            );
            let bytes = self.registry.histogram_with(
                "moas_endpoint_response_bytes",
                &[("endpoint", endpoint)],
                "Response body size by normalized endpoint.",
            );
            inner.endpoints.insert(
                endpoint.to_string(),
                EndpointStats {
                    latency,
                    bytes,
                    count: 0,
                },
            );
        }
        let stats = inner.endpoints.get_mut(endpoint).expect("just inserted");
        stats.latency.observe(micros);
        stats.bytes.observe(response_bytes);
        stats.count += 1;
        if micros >= self.slow_threshold_us {
            let entry = SlowQuery {
                unix_ms: crate::tsdb::unix_now() * 1_000,
                endpoint: endpoint.to_string(),
                target: target.to_string(),
                micros,
                status,
                trace,
            };
            if inner.slow.len() == inner.slow_capacity {
                inner.slow.pop_front();
            }
            inner.slow.push_back(entry);
        }
    }

    /// The current report, hot keys capped at `top_limit`.
    pub fn report(&self, top_limit: usize) -> WorkloadReport {
        let inner = self.inner.lock().expect("workload poisoned");
        let endpoints = inner
            .endpoints
            .iter()
            .map(|(endpoint, stats)| {
                let lat = stats.latency.snapshot();
                let bytes = stats.bytes.snapshot();
                EndpointReport {
                    endpoint: endpoint.clone(),
                    count: stats.count,
                    p50_us: lat.quantile(0.50),
                    p99_us: lat.quantile(0.99),
                    p99_bytes: bytes.quantile(0.99),
                }
            })
            .collect();
        WorkloadReport {
            recorded: inner.recorded,
            top: inner.topk.top(top_limit),
            endpoints,
            slow: inner.slow.iter().cloned().collect(),
            slow_threshold_us: self.slow_threshold_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_saving_never_undercounts_heavy_hitters() {
        let mut sketch = SpaceSaving::new(4);
        // 60 hits on the heavy key, noise spread over 20 cold keys.
        for i in 0..60 {
            sketch.record("/v1/prefix/{prefix}", "10.0.0.0/8");
            sketch.record("/v1/prefix/{prefix}", &format!("cold-{}", i % 20));
        }
        let top = sketch.top(4);
        assert_eq!(top[0].key, "10.0.0.0/8");
        // Space-saving guarantees count ≥ true count, error-bounded.
        assert!(top[0].count >= 60, "heavy hitter count {}", top[0].count);
        assert!(top[0].count - top[0].error <= 60);
        assert_eq!(sketch.counts.len(), 4, "sketch stays bounded");
    }

    #[test]
    fn workload_records_histograms_slow_log_and_report() {
        let registry = Arc::new(Registry::new());
        let workload = Workload::new(Arc::clone(&registry), 10_000);
        for _ in 0..9 {
            workload.record(
                "/v1/prefix/{prefix}",
                "10.0.0.0/8",
                "/v1/prefix/10.0.0.0%2F8",
                500,
                2_000,
                200,
                0,
            );
        }
        workload.record(
            "/v1/history",
            "",
            "/v1/history?origins=2",
            25_000,
            100_000,
            200,
            77,
        );
        let report = workload.report(10);
        assert_eq!(report.recorded, 10);
        assert_eq!(report.top[0].endpoint, "/v1/prefix/{prefix}");
        assert_eq!(report.top[0].count, 9);
        assert_eq!(report.slow.len(), 1, "only the 25ms query is slow");
        assert_eq!(report.slow[0].trace, 77);
        assert_eq!(report.slow[0].endpoint, "/v1/history");
        let history = report
            .endpoints
            .iter()
            .find(|e| e.endpoint == "/v1/history")
            .unwrap();
        assert_eq!(history.count, 1);
        assert!(history.p99_us.unwrap() >= 25_000);
        // The histograms are on the shared registry for scraping.
        let text = registry.render_prometheus();
        assert!(text.contains("moas_endpoint_duration_us"));
        assert!(text.contains("moas_endpoint_response_bytes"));
    }

    #[test]
    fn slow_log_is_a_bounded_ring() {
        let registry = Arc::new(Registry::new());
        let workload = Workload::with_capacities(registry, 0, 8, 3);
        for i in 0..10u64 {
            workload.record("/metrics", "", "/metrics", i, 10, 200, 0);
        }
        let report = workload.report(5);
        let kept: Vec<u64> = report.slow.iter().map(|s| s.micros).collect();
        assert_eq!(kept, vec![7, 8, 9], "oldest entries evicted first");
    }
}
