//! The metric registry: named counters, gauges, and log-scale
//! histograms behind lock-free typed handles, rendered on demand as
//! Prometheus text exposition.
//!
//! Registration (name + label set → handle) takes a mutex and happens
//! once at startup; recording through a handle is relaxed atomics
//! only. Registering the same name and labels again returns a handle
//! to the *same* underlying series — components that share a registry
//! share the series — while re-registering under a different metric
//! kind panics (a configuration bug worth failing loudly on).
//!
//! Histograms use fixed log-scale buckets: bucket `i` holds
//! observations `v` with `2^(i-1) < v <= 2^i` (bucket 0 holds `0` and
//! `1`). One `fetch_add` on the bucket plus one on the running sum per
//! observation, no floats on the record path, and cumulative bucket
//! counts are derived at render time from a single point-in-time copy
//! of the slots — so a concurrent scrape can never observe a
//! non-monotone cumulative series or a `_count` that disagrees with
//! the `+Inf` bucket.

use crate::journal::EventJournal;
use crate::trace::Tracer;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Finite histogram buckets: upper bounds `2^0 ..= 2^63`. One extra
/// overflow slot (rendered only into `+Inf`) catches larger values.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// What kind of series a name is registered as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Set-to-current-value measurement.
    Gauge,
    /// Log-scale distribution of u64 observations.
    Histogram,
}

/// One scraped counter or gauge: `(name, labels, kind, value)` — see
/// [`Registry::scalar_values`]. Values are `f64` so seconds-unit
/// counters (stored internally in microseconds) sample into the tsdb
/// in the unit their name declares.
pub type ScalarValue = (String, Vec<(String, String)>, MetricKind, f64);

/// One scraped histogram: `(name, labels, snapshot)` — see
/// [`Registry::histogram_snapshots`].
pub type HistogramSample = (String, Vec<(String, String)>, HistogramSnapshot);

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotonically increasing counter handle. Cloning shares the
/// underlying series.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`. One relaxed atomic add — safe on any hot path.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (set-to-value semantics). Cloning shares the
/// underlying series.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (for up/down occupancy gauges).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-watermark
    /// semantics, e.g. newest-timestamp gauges).
    pub fn max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Finite buckets plus one overflow slot.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    sum: AtomicU64,
}

/// A fixed-bucket log-scale histogram handle. Cloning shares the
/// underlying series.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }))
    }
}

/// Bucket index for `v`: the smallest `i` with `v <= 2^i`, overflow
/// slot past `2^63`.
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(HISTOGRAM_BUCKETS)
    }
}

/// Upper bound of finite bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    1u64 << i
}

impl Histogram {
    /// Records one observation: one relaxed add on its bucket, one on
    /// the running sum.
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Times `f` and records the elapsed wall clock in microseconds.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let t = std::time::Instant::now();
        let out = f();
        self.observe(t.elapsed().as_micros() as u64);
        out
    }

    /// Records an already-measured duration, in microseconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_micros() as u64);
    }

    /// A point-in-time copy of the slots — what rendering and
    /// quantile estimation work from, so one scrape is internally
    /// consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed)),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of one histogram's slots.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (finite buckets then overflow).
    pub counts: [u64; HISTOGRAM_BUCKETS + 1],
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The observations recorded since `prev` was taken (per-bucket
    /// saturating difference) — what a windowed quantile works over,
    /// so a long-running process's p99 reflects the last sampling
    /// interval rather than its whole lifetime.
    pub fn delta(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].saturating_sub(prev.counts[i])),
            sum: self.sum.saturating_sub(prev.sum),
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the owning log-scale bucket. Returns `None` before the
    /// first observation — "no data" is an explicit answer, never `0`
    /// (the same rule the server's latency ring uses).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= rank {
                if i >= HISTOGRAM_BUCKETS {
                    // Overflow bucket: no finite upper bound to
                    // interpolate toward.
                    return Some(bucket_bound(HISTOGRAM_BUCKETS - 1));
                }
                let lo = if i == 0 { 0 } else { bucket_bound(i - 1) };
                let hi = bucket_bound(i);
                let into = (rank - cum) as f64 / n as f64;
                return Some(lo + ((hi - lo) as f64 * into).round() as u64);
            }
            cum += n;
        }
        unreachable!("rank <= total")
    }
}

/// One registered series: the shared handle plus its metadata.
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    /// A counter whose handle records *microseconds* but whose series
    /// renders as fractional *seconds* — the shape Prometheus
    /// conventions demand of `*_seconds_total` CPU-time families while
    /// the registry stays integer-atomic inside.
    SecondsCounter(Counter),
}

impl Series {
    fn kind(&self) -> MetricKind {
        match self {
            Series::Counter(_) | Series::SecondsCounter(_) => MetricKind::Counter,
            Series::Gauge(_) => MetricKind::Gauge,
            Series::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Entry {
    help: String,
    series: Series,
}

type SeriesKey = (String, Vec<(String, String)>);

/// The central metric registry: registration map plus the embedded
/// operational [`EventJournal`].
///
/// Deployments create one `Arc<Registry>` and thread it through every
/// layer (monitor engine, history store, feed follower, query server)
/// so a single `GET /metrics` scrape covers the whole pipeline.
pub struct Registry {
    series: Mutex<BTreeMap<SeriesKey, Entry>>,
    journal: EventJournal,
    tracer: Tracer,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.series.lock().expect("registry lock poisoned").len();
        write!(f, "Registry({n} series)")
    }
}

impl Registry {
    /// An empty registry with a default-capacity event journal.
    pub fn new() -> Self {
        Registry::with_journal_capacity(crate::journal::DEFAULT_JOURNAL_CAPACITY)
    }

    /// An empty registry whose event journal holds `journal_capacity`
    /// events. The journal's eviction counter is pre-registered as
    /// `moas_journal_dropped_total`, so silently overwritten events
    /// are visible from the metric data itself.
    pub fn with_journal_capacity(journal_capacity: usize) -> Self {
        let dropped = Counter::default();
        let registry = Registry {
            series: Mutex::new(BTreeMap::new()),
            journal: EventJournal::with_capacity_and_counter(journal_capacity, dropped.clone()),
            tracer: Tracer::default(),
        };
        registry
            .series
            .lock()
            .expect("registry lock poisoned")
            .insert(
                ("moas_journal_dropped_total".to_string(), Vec::new()),
                Entry {
                    help: "Journal events evicted by ring overflow before being read.".to_string(),
                    series: Series::Counter(dropped),
                },
            );
        registry
    }

    /// The embedded operational event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// The embedded span tracer (see [`crate::trace`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: impl FnOnce() -> Series,
    ) -> Series {
        let key: SeriesKey = (
            name.to_string(),
            labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        );
        let mut map = self.series.lock().expect("registry lock poisoned");
        // One name, one shape — across all label sets. Discriminants,
        // not kinds: a seconds counter and a plain counter both render
        // as TYPE counter but record in different units, so mixing
        // them under one name is the same configuration bug.
        let wanted = make();
        if let Some((_, existing)) = map
            .range((key.0.clone(), Vec::new())..)
            .take_while(|((n, _), _)| *n == key.0)
            .next()
        {
            assert!(
                std::mem::discriminant(&existing.series) == std::mem::discriminant(&wanted),
                "metric {name:?} already registered as {}, re-registered as {}",
                shape_str(&existing.series),
                shape_str(&wanted),
            );
        }
        match map.entry(key) {
            std::collections::btree_map::Entry::Occupied(e) => clone_series(&e.get().series),
            std::collections::btree_map::Entry::Vacant(e) => {
                let out = clone_series(&wanted);
                e.insert(Entry {
                    help: help.to_string(),
                    series: wanted,
                });
                out
            }
        }
    }

    /// Registers (or finds) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Registers (or finds) a counter with a static label set.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        match self.register(name, labels, help, || Series::Counter(Counter::default())) {
            Series::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or finds) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Registers (or finds) a gauge with a static label set.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        match self.register(name, labels, help, || Series::Gauge(Gauge::default())) {
            Series::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or finds) a seconds-unit counter with a static label
    /// set. The returned handle records **microseconds** (`add` takes
    /// µs); the series renders and samples as fractional seconds, the
    /// conventional unit for `*_seconds_total` families like the
    /// per-thread CPU ledger's `moas_thread_cpu_seconds_total`.
    pub fn seconds_counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        match self.register(name, labels, help, || {
            Series::SecondsCounter(Counter::default())
        }) {
            Series::SecondsCounter(c) => c,
            _ => unreachable!("shape checked in register"),
        }
    }

    /// Registers (or finds) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, &[], help)
    }

    /// Registers (or finds) a histogram with a static label set.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
        match self.register(name, labels, help, || {
            Series::Histogram(Histogram::default())
        }) {
            Series::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// The shared pipeline stage-latency histogram family
    /// (`moas_stage_duration_us{stage="..."}`), in microseconds. Every
    /// instrumented stage across monitor, history, feed, and server
    /// registers through here so stage names stay one label apart.
    pub fn stage_histogram(&self, stage: &str) -> Histogram {
        self.histogram_with(
            "moas_stage_duration_us",
            &[("stage", stage)],
            "Pipeline stage latency in microseconds.",
        )
    }

    /// The value of a registered counter or gauge, for tests and
    /// report views (`None` if the series does not exist or is a
    /// histogram). Seconds counters report their raw microsecond
    /// tally.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key: SeriesKey = (
            name.to_string(),
            labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        );
        let map = self.series.lock().expect("registry lock poisoned");
        match &map.get(&key)?.series {
            Series::Counter(c) | Series::SecondsCounter(c) => Some(c.get()),
            Series::Gauge(g) => Some(g.get()),
            Series::Histogram(_) => None,
        }
    }

    /// Every registered counter and gauge as
    /// `(name, labels, kind, value)` — the sampling surface the
    /// [`crate::tsdb`] store scrapes on its cadence. Histograms are
    /// excluded (see [`Registry::histogram_snapshots`]).
    pub fn scalar_values(&self) -> Vec<ScalarValue> {
        let map = self.series.lock().expect("registry lock poisoned");
        map.iter()
            .filter_map(|((name, labels), entry)| match &entry.series {
                Series::Counter(c) => Some((
                    name.clone(),
                    labels.clone(),
                    MetricKind::Counter,
                    c.get() as f64,
                )),
                Series::SecondsCounter(c) => Some((
                    name.clone(),
                    labels.clone(),
                    MetricKind::Counter,
                    c.get() as f64 / 1e6,
                )),
                Series::Gauge(g) => Some((
                    name.clone(),
                    labels.clone(),
                    MetricKind::Gauge,
                    g.get() as f64,
                )),
                Series::Histogram(_) => None,
            })
            .collect()
    }

    /// A point-in-time snapshot of every registered histogram as
    /// `(name, labels, snapshot)` — the surface the tsdb derives
    /// windowed quantile series from.
    pub fn histogram_snapshots(&self) -> Vec<HistogramSample> {
        let map = self.series.lock().expect("registry lock poisoned");
        map.iter()
            .filter_map(|((name, labels), entry)| match &entry.series {
                Series::Histogram(h) => Some((name.clone(), labels.clone(), h.snapshot())),
                _ => None,
            })
            .collect()
    }

    /// Renders every registered series as Prometheus text exposition
    /// (format 0.0.4): `# HELP` and `# TYPE` once per family, series
    /// sorted by name then label set, label values escaped, histogram
    /// families as cumulative `_bucket{le=...}` plus `_sum` and
    /// `_count`. Empty trailing histogram buckets are elided (the
    /// `+Inf` bucket always carries the total).
    pub fn render_prometheus(&self) -> String {
        let map = self.series.lock().expect("registry lock poisoned");
        let mut out = String::with_capacity(4096 + map.len() * 64);
        let mut last_name: Option<&str> = None;
        for ((name, labels), entry) in map.iter() {
            if last_name != Some(name.as_str()) {
                out.push_str("# HELP ");
                out.push_str(name);
                out.push(' ');
                escape_help(&entry.help, &mut out);
                out.push('\n');
                out.push_str("# TYPE ");
                out.push_str(name);
                out.push(' ');
                out.push_str(entry.series.kind().as_str());
                out.push('\n');
                last_name = Some(name.as_str());
            }
            match &entry.series {
                Series::Counter(c) => {
                    render_series_line(&mut out, name, labels, None, c.get());
                }
                Series::SecondsCounter(c) => {
                    let micros = c.get();
                    render_series_text(
                        &mut out,
                        name,
                        labels,
                        None,
                        &format!("{}.{:06}", micros / 1_000_000, micros % 1_000_000),
                    );
                }
                Series::Gauge(g) => {
                    render_series_line(&mut out, name, labels, None, g.get());
                }
                Series::Histogram(h) => {
                    let snap = h.snapshot();
                    let total = snap.count();
                    let last_used = snap.counts[..HISTOGRAM_BUCKETS]
                        .iter()
                        .rposition(|&n| n > 0)
                        .unwrap_or(0);
                    let bucket_name = format!("{name}_bucket");
                    let mut cum = 0u64;
                    for i in 0..=last_used {
                        cum += snap.counts[i];
                        render_series_line(
                            &mut out,
                            &bucket_name,
                            labels,
                            Some(&bucket_bound(i).to_string()),
                            cum,
                        );
                    }
                    render_series_line(&mut out, &bucket_name, labels, Some("+Inf"), total);
                    render_series_line(&mut out, &format!("{name}_sum"), labels, None, snap.sum);
                    render_series_line(&mut out, &format!("{name}_count"), labels, None, total);
                }
            }
        }
        out
    }
}

fn clone_series(s: &Series) -> Series {
    match s {
        Series::Counter(c) => Series::Counter(c.clone()),
        Series::Gauge(g) => Series::Gauge(g.clone()),
        Series::Histogram(h) => Series::Histogram(h.clone()),
        Series::SecondsCounter(c) => Series::SecondsCounter(c.clone()),
    }
}

/// The registration-shape name for conflict diagnostics (unlike
/// [`MetricKind::as_str`], distinguishes seconds counters).
fn shape_str(s: &Series) -> &'static str {
    match s {
        Series::Counter(_) => "counter",
        Series::Gauge(_) => "gauge",
        Series::Histogram(_) => "histogram",
        Series::SecondsCounter(_) => "seconds counter",
    }
}

fn render_series_line(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    le: Option<&str>,
    value: u64,
) {
    render_series_text(out, name, labels, le, &value.to_string());
}

fn render_series_text(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    le: Option<&str>,
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            escape_label(v, out);
            out.push('"');
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(le);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Label-value escaping per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
}

/// Help-text escaping: backslash and newline (quotes are legal there).
fn escape_help(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 63), 63);
        assert_eq!(bucket_index((1 << 63) + 1), HISTOGRAM_BUCKETS);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS);
    }

    #[test]
    fn same_name_same_labels_share_a_series() {
        let r = Registry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        assert_eq!(r.value("x_total", &[]), Some(5));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("x_total", "x");
        let _ = r.gauge("x_total", "x");
    }

    #[test]
    fn seconds_counter_renders_fractional_seconds() {
        let r = Registry::new();
        let c = r.seconds_counter_with("cpu_seconds_total", &[("thread", "w0")], "CPU.");
        c.add(1_234_567); // microseconds
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE cpu_seconds_total counter"), "{text}");
        assert!(
            text.contains("cpu_seconds_total{thread=\"w0\"} 1.234567"),
            "{text}"
        );
        // Samples into the tsdb surface in seconds, not micros.
        let (_, _, kind, v) = r
            .scalar_values()
            .into_iter()
            .find(|(n, _, _, _)| n == "cpu_seconds_total")
            .unwrap();
        assert_eq!(kind, MetricKind::Counter);
        assert!((v - 1.234567).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn seconds_counter_and_counter_shapes_conflict() {
        let r = Registry::new();
        let _ = r.counter_with("x_seconds_total", &[("thread", "a")], "x");
        let _ = r.seconds_counter_with("x_seconds_total", &[("thread", "b")], "x");
    }

    #[test]
    fn quantile_is_none_before_first_observation() {
        let h = Histogram::default();
        assert_eq!(h.snapshot().quantile(0.5), None);
        h.observe(100);
        assert!(h.snapshot().quantile(0.5).is_some());
    }

    #[test]
    fn quantile_tracks_the_distribution() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.observe(10);
        }
        h.observe(100_000);
        let snap = h.snapshot();
        let p50 = snap.quantile(0.5).unwrap();
        assert!(p50 <= 16, "p50 {p50} should sit in the low bucket");
        let p995 = snap.quantile(0.995).unwrap();
        assert!(
            p995 > 65_536,
            "p995 {p995} should sit in the outlier bucket"
        );
    }
}
