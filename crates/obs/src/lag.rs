//! The derived end-to-end ingest-to-serve lag gauge.
//!
//! The feed side reports the newest *record* timestamp it has decoded
//! ([`LagTracker::observe_ingested`]); the history side reports the
//! newest *event* timestamp covered by the epoch currently being
//! served ([`LagTracker::observe_served`]). Their difference is how
//! far query results trail the live collector stream — the single
//! number the paper-scale deployment (years of continuous MOAS
//! observation) is operated by.
//!
//! Both sides use high-watermark updates, so out-of-order observations
//! (shards finishing at different points, replayed files) can only
//! move the gauges forward.
//!
//! Collector clocks skew: a collector can stamp records *ahead* of the
//! serving side's clock, making the served watermark overtake the
//! ingested one. A naive signed difference would publish a bogus
//! negative (or, as `u64`, astronomically huge) lag; instead the lag
//! clamps to 0 and each skewed refresh tallies on
//! `moas_lag_clock_skew_total`, so the pathology is visible without
//! poisoning the gauge.

use crate::registry::{Counter, Gauge, Registry};

/// Tracks newest-ingested vs. newest-served record timestamps and
/// keeps the derived lag gauge current.
#[derive(Debug, Clone)]
pub struct LagTracker {
    ingested: Gauge,
    served: Gauge,
    lag: Gauge,
    clock_skew: Counter,
}

impl LagTracker {
    /// Registers the three gauges on `registry`. Safe to call from
    /// several components sharing one registry — they share the
    /// series.
    pub fn new(registry: &Registry) -> Self {
        LagTracker {
            ingested: registry.gauge(
                "moas_ingest_last_event_timestamp_seconds",
                "Newest record timestamp ingested from the feed, seconds.",
            ),
            served: registry.gauge(
                "moas_serve_last_event_timestamp_seconds",
                "Newest event timestamp covered by the published epoch, seconds.",
            ),
            lag: registry.gauge(
                "moas_ingest_to_serve_lag_seconds",
                "Ingest-to-serve lag: newest ingested minus newest served timestamp.",
            ),
            clock_skew: registry.counter(
                "moas_lag_clock_skew_total",
                "Lag refreshes where the served watermark was ahead of the ingested one.",
            ),
        }
    }

    /// Notes a record timestamp seen on the ingest side (high
    /// watermark).
    pub fn observe_ingested(&self, ts_seconds: u64) {
        self.ingested.max(ts_seconds);
        self.refresh();
    }

    /// Notes the newest event timestamp covered by a newly published
    /// epoch (high watermark).
    pub fn observe_served(&self, ts_seconds: u64) {
        self.served.max(ts_seconds);
        self.refresh();
    }

    /// The current lag in seconds (0 until both sides have reported).
    pub fn lag_seconds(&self) -> u64 {
        self.lag.get()
    }

    fn refresh(&self) {
        let ingested = self.ingested.get();
        let served = self.served.get();
        if served > 0 {
            if served > ingested && ingested > 0 {
                // Clock skew: the serving side's watermark overtook
                // ingest. Clamp to 0 (never a negative-as-huge-u64
                // gauge) and make the skew itself countable.
                self.clock_skew.inc();
                self.lag.set(0);
            } else {
                self.lag.set(ingested.saturating_sub(served));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_is_the_watermark_difference() {
        let r = Registry::new();
        let lag = LagTracker::new(&r);
        assert_eq!(lag.lag_seconds(), 0);
        lag.observe_ingested(1_000);
        // Served side has not reported yet: lag stays 0 rather than
        // claiming the entire ingest history is lag.
        assert_eq!(lag.lag_seconds(), 0);
        lag.observe_served(400);
        assert_eq!(lag.lag_seconds(), 600);
        lag.observe_ingested(900); // stale, ignored by the watermark
        assert_eq!(lag.lag_seconds(), 600);
        lag.observe_served(1_000);
        assert_eq!(lag.lag_seconds(), 0);
    }

    /// Skewed watermarks (served ahead of ingested — collector clock
    /// drift) must clamp the lag to 0 and count the skew, never
    /// publish a wrapped/huge value.
    #[test]
    fn skewed_watermarks_clamp_to_zero_and_count() {
        let r = Registry::new();
        let lag = LagTracker::new(&r);
        lag.observe_ingested(1_000);
        lag.observe_served(1_500); // served clock runs 500s ahead
        assert_eq!(lag.lag_seconds(), 0, "skew must clamp, not wrap");
        assert_eq!(r.value("moas_lag_clock_skew_total", &[]), Some(1));
        lag.observe_served(1_600);
        assert_eq!(lag.lag_seconds(), 0);
        assert_eq!(r.value("moas_lag_clock_skew_total", &[]), Some(2));
        // Ingest catching back up resumes normal lag arithmetic.
        lag.observe_ingested(2_000);
        assert_eq!(lag.lag_seconds(), 400);
        assert_eq!(
            r.value("moas_lag_clock_skew_total", &[]),
            Some(2),
            "no skew once ingest is ahead again"
        );
    }

    #[test]
    fn trackers_on_one_registry_share_series() {
        let r = Registry::new();
        let a = LagTracker::new(&r);
        let b = LagTracker::new(&r);
        a.observe_ingested(500);
        b.observe_served(200);
        assert_eq!(a.lag_seconds(), 300);
        assert_eq!(b.lag_seconds(), 300);
    }
}
