//! A fixed-memory in-process time-series store over the registry.
//!
//! Prometheus answers "what is it now"; incident response needs "what
//! was it two minutes ago". The tsdb closes that gap without an
//! external system: on every tick ([`Tsdb::sample`]) it copies each
//! registry counter and gauge into a two-tier ring per series —
//! a *fine* tier (default 10 s × 360 slots = the last hour) and a
//! *coarse* downsampled tier (default 5 min × 288 slots = the last
//! day, slot mean of the fine samples that landed in it). Memory is
//! fixed at construction: `series × (fine + coarse)` slots of
//! `(bucket, value)` pairs, independent of uptime.
//!
//! Histograms are sampled as *windowed* quantiles: each tick diffs the
//! histogram against its previous snapshot and records the p99 of just
//! that window as a derived series named `<family>:p99` (same labels),
//! so `moas_serve_request_duration_us:p99` is the alerting-grade tail
//! latency of the last interval, not of process lifetime.
//!
//! Sampling is driven either manually (tests, deterministic clocks)
//! or by a background [`Sampler`] thread. Everything is queryable by
//! series name over a time range — the data behind `GET /v1/series`
//! and the input the [`crate::alert`] engine evaluates its rules over.

use crate::registry::Registry;
use crate::HistogramSnapshot;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Ring geometry: slot widths and counts for both tiers.
#[derive(Debug, Clone, Copy)]
pub struct TsdbConfig {
    /// Fine-tier slot width in seconds.
    pub fine_step_secs: u64,
    /// Fine-tier slot count.
    pub fine_slots: usize,
    /// Coarse-tier slot width in seconds.
    pub coarse_step_secs: u64,
    /// Coarse-tier slot count.
    pub coarse_slots: usize,
}

impl Default for TsdbConfig {
    /// 10 s × 360 (one hour fine) + 5 min × 288 (one day coarse).
    fn default() -> Self {
        TsdbConfig {
            fine_step_secs: 10,
            fine_slots: 360,
            coarse_step_secs: 300,
            coarse_slots: 288,
        }
    }
}

impl TsdbConfig {
    /// Slots held per series across both tiers (the memory-budget
    /// number: each slot is one `(u64, f64)` or `(u64, f64, u32)`).
    pub fn slots_per_series(&self) -> usize {
        self.fine_slots + self.coarse_slots
    }
}

/// One series' two ring tiers.
struct SeriesRings {
    /// `(bucket, value)` — bucket is `ts / fine_step`.
    fine: Vec<Option<(u64, f64)>>,
    /// `(bucket, sum, count)` — downsampled mean accumulator.
    coarse: Vec<Option<(u64, f64, u32)>>,
}

type SeriesKey = (String, Vec<(String, String)>);

struct Inner {
    series: BTreeMap<SeriesKey, SeriesRings>,
    /// Previous histogram snapshots, for windowed quantile deltas.
    hist_prev: BTreeMap<SeriesKey, HistogramSnapshot>,
}

/// One matched series in a [`Tsdb::query`] answer.
#[derive(Debug, Clone)]
pub struct SeriesPoints {
    /// Series name (possibly a derived one like `...:p99`).
    pub name: String,
    /// Label set of the series.
    pub labels: Vec<(String, String)>,
    /// `(unix_seconds, value)` points, oldest first.
    pub points: Vec<(u64, f64)>,
}

/// The fixed-memory ring time-series store. See the module docs.
pub struct Tsdb {
    config: TsdbConfig,
    inner: Mutex<Inner>,
}

impl Default for Tsdb {
    fn default() -> Self {
        Tsdb::new(TsdbConfig::default())
    }
}

impl std::fmt::Debug for Tsdb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.inner.lock().expect("tsdb lock poisoned").series.len();
        write!(f, "Tsdb({n} series)")
    }
}

impl Tsdb {
    /// An empty store with the given ring geometry.
    pub fn new(config: TsdbConfig) -> Self {
        Tsdb {
            config,
            inner: Mutex::new(Inner {
                series: BTreeMap::new(),
                hist_prev: BTreeMap::new(),
            }),
        }
    }

    /// The ring geometry.
    pub fn config(&self) -> &TsdbConfig {
        &self.config
    }

    /// Samples every registry counter and gauge (plus the windowed
    /// `:p99` of every histogram) at `now_unix`. One tick of the
    /// background cadence; call with [`unix_now`] outside tests.
    pub fn sample(&self, registry: &Registry, now_unix: u64) {
        let scalars = registry.scalar_values();
        let hists = registry.histogram_snapshots();
        let mut inner = self.inner.lock().expect("tsdb lock poisoned");
        for (name, labels, _kind, value) in scalars {
            Self::record(
                &self.config,
                &mut inner.series,
                (name, labels),
                now_unix,
                value,
            );
        }
        for (name, labels, snap) in hists {
            let key: SeriesKey = (name, labels);
            let window = match inner.hist_prev.get(&key) {
                Some(prev) => snap.delta(prev),
                None => snap.clone(),
            };
            if let Some(p99) = window.quantile(0.99) {
                let derived = (format!("{}:p99", key.0), key.1.clone());
                Self::record(
                    &self.config,
                    &mut inner.series,
                    derived,
                    now_unix,
                    p99 as f64,
                );
            }
            inner.hist_prev.insert(key, snap);
        }
    }

    fn record(
        config: &TsdbConfig,
        series: &mut BTreeMap<SeriesKey, SeriesRings>,
        key: SeriesKey,
        now_unix: u64,
        value: f64,
    ) {
        let rings = series.entry(key).or_insert_with(|| SeriesRings {
            fine: vec![None; config.fine_slots],
            coarse: vec![None; config.coarse_slots],
        });
        let fine_bucket = now_unix / config.fine_step_secs;
        let fi = (fine_bucket % config.fine_slots as u64) as usize;
        // Same-bucket re-sampling overwrites (last value wins); a new
        // bucket displaces whatever aged into this slot a full window
        // ago.
        rings.fine[fi] = Some((fine_bucket, value));

        let coarse_bucket = now_unix / config.coarse_step_secs;
        let ci = (coarse_bucket % config.coarse_slots as u64) as usize;
        rings.coarse[ci] = match rings.coarse[ci] {
            Some((b, sum, count)) if b == coarse_bucket => {
                Some((coarse_bucket, sum + value, count + 1))
            }
            _ => Some((coarse_bucket, value, 1)),
        };
    }

    /// Every series matching `name` exactly (all label sets), with the
    /// points falling in `[now - range_secs, now]`, oldest first. The
    /// fine tier answers what it still covers; older points come from
    /// the coarse tier as slot means.
    pub fn query(&self, name: &str, range_secs: u64, now_unix: u64) -> Vec<SeriesPoints> {
        let from = now_unix.saturating_sub(range_secs);
        let fine_window = self.config.fine_step_secs * self.config.fine_slots as u64;
        let fine_floor = now_unix.saturating_sub(fine_window);
        let inner = self.inner.lock().expect("tsdb lock poisoned");
        inner
            .series
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|((n, labels), rings)| {
                let mut points: Vec<(u64, f64)> = Vec::new();
                for slot in rings.coarse.iter().flatten() {
                    let (bucket, sum, count) = *slot;
                    let ts = bucket * self.config.coarse_step_secs;
                    // The fine tier owns everything it still covers;
                    // the coarse tier fills in the older range only.
                    if ts >= from && ts <= now_unix && ts < fine_floor && count > 0 {
                        points.push((ts, sum / count as f64));
                    }
                }
                for slot in rings.fine.iter().flatten() {
                    let (bucket, value) = *slot;
                    let ts = bucket * self.config.fine_step_secs;
                    if ts >= from && ts <= now_unix {
                        points.push((ts, value));
                    }
                }
                points.sort_by_key(|&(ts, _)| ts);
                SeriesPoints {
                    name: n.clone(),
                    labels: labels.clone(),
                    points,
                }
            })
            .filter(|s| !s.points.is_empty())
            .collect()
    }

    /// The newest sampled point of the series with exactly `name` and
    /// `labels`, as `(unix_seconds, value)`.
    pub fn latest(&self, name: &str, labels: &[(String, String)]) -> Option<(u64, f64)> {
        let inner = self.inner.lock().expect("tsdb lock poisoned");
        let key: SeriesKey = (name.to_string(), labels.to_vec());
        let rings = inner.series.get(&key)?;
        rings
            .fine
            .iter()
            .flatten()
            .max_by_key(|(bucket, _)| *bucket)
            .map(|(bucket, value)| (bucket * self.config.fine_step_secs, *value))
    }

    /// Distinct series names currently held (including derived `:p99`
    /// names), sorted.
    pub fn series_names(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("tsdb lock poisoned");
        let mut names: Vec<String> = inner.series.keys().map(|(n, _)| n.clone()).collect();
        names.dedup();
        names
    }

    /// Number of series currently held.
    pub fn series_count(&self) -> usize {
        self.inner.lock().expect("tsdb lock poisoned").series.len()
    }

    /// Approximate retained bytes — ring geometry × series count plus
    /// key strings and histogram snapshots. The
    /// `moas_resource_bytes{component="tsdb"}` probe; geometry math,
    /// not an allocator measurement.
    pub fn approx_bytes(&self) -> u64 {
        let inner = self.inner.lock().expect("tsdb lock poisoned");
        let fine = std::mem::size_of::<Option<(u64, f64)>>() * self.config.fine_slots;
        let coarse = std::mem::size_of::<Option<(u64, f64, u32)>>() * self.config.coarse_slots;
        let mut total = 0u64;
        for (name, labels) in inner.series.keys() {
            let key_bytes: usize =
                name.len() + labels.iter().map(|(k, v)| k.len() + v.len()).sum::<usize>();
            total += (fine + coarse + key_bytes) as u64;
        }
        total += (inner.hist_prev.len() * std::mem::size_of::<HistogramSnapshot>()) as u64;
        total
    }
}

/// Wall clock as Unix seconds — the `now` to drive live sampling with.
pub fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// A background sampling thread: every `interval` it ticks
/// [`Tsdb::sample`] and then the supplied hook (the alert engine's
/// tick, typically). Stops and joins on drop.
///
/// The loop watches its own cadence: a tick that starts more than
/// twice the interval after the previous one (a wedged hook, a
/// starved scheduler — the self-monitoring layer itself degrading)
/// lands a `sampler_stall` event in the registry journal, so the
/// stall surfaces in `/v1/events/log` and the SSE tail like any other
/// incident.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Spawns the sampling loop. `on_tick(now)` runs after each
    /// sample — pass the alert engine's tick, or a no-op.
    pub fn spawn(
        registry: Arc<Registry>,
        tsdb: Arc<Tsdb>,
        interval: Duration,
        on_tick: impl Fn(u64) + Send + 'static,
    ) -> std::io::Result<Sampler> {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("moas-obs-sampler".into())
            .spawn(move || {
                let _registered = crate::prof::register_thread();
                let mut last_tick: Option<std::time::Instant> = None;
                while !stop_flag.load(Ordering::Acquire) {
                    let tick_started = std::time::Instant::now();
                    if let Some(prev) = last_tick {
                        let gap = tick_started.duration_since(prev);
                        if !interval.is_zero() && gap > interval * 2 {
                            registry.journal().record(
                                "sampler_stall",
                                format!(
                                    "sampler tick gap {}ms exceeds 2x interval {}ms",
                                    gap.as_millis(),
                                    interval.as_millis()
                                ),
                            );
                        }
                    }
                    last_tick = Some(tick_started);
                    let now = unix_now();
                    tsdb.sample(&registry, now);
                    on_tick(now);
                    // Sleep in small steps so drop() never waits a
                    // full interval to join.
                    let mut remaining = interval;
                    while !stop_flag.load(Ordering::Acquire) && remaining > Duration::ZERO {
                        let step = remaining.min(Duration::from_millis(50));
                        std::thread::sleep(step);
                        remaining = remaining.saturating_sub(step);
                    }
                }
            })?;
        Ok(Sampler {
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tsdb {
        Tsdb::new(TsdbConfig {
            fine_step_secs: 10,
            fine_slots: 6, // one fine minute
            coarse_step_secs: 30,
            coarse_slots: 4, // two coarse minutes
        })
    }

    #[test]
    fn samples_counters_and_gauges_and_answers_ranges() {
        let r = Registry::new();
        let c = r.counter("ops_total", "Ops.");
        let g = r.gauge("depth", "Depth.");
        let db = small();
        for (i, now) in [1_000u64, 1_010, 1_020].iter().enumerate() {
            c.add(5);
            g.set(i as u64);
            db.sample(&r, *now);
        }
        let series = db.query("ops_total", 60, 1_020);
        assert_eq!(series.len(), 1);
        assert_eq!(
            series[0].points,
            vec![(1_000, 5.0), (1_010, 10.0), (1_020, 15.0)]
        );
        assert_eq!(db.latest("depth", &[]), Some((1_020, 2.0)));
        // A narrow range excludes old points.
        let narrow = db.query("ops_total", 10, 1_020);
        assert_eq!(narrow[0].points, vec![(1_010, 10.0), (1_020, 15.0)]);
        assert!(db.query("nope", 60, 1_020).is_empty());
    }

    #[test]
    fn fine_ring_rotates_and_coarse_tier_keeps_means() {
        let r = Registry::new();
        let g = r.gauge("depth", "Depth.");
        let db = small();
        // 12 ticks × 10 s: twice the fine window (60 s), within the
        // coarse window (120 s).
        for i in 0..12u64 {
            g.set(i);
            db.sample(&r, 1_000 + i * 10);
        }
        let now = 1_110;
        let fine_only = db.query("depth", 50, now);
        assert_eq!(
            fine_only[0].points.len(),
            6,
            "fine tier covers the last minute"
        );
        // Full range: old points come from the coarse tier as means.
        let all = db.query("depth", 200, now);
        let pts = &all[0].points;
        assert!(pts.len() > 6, "coarse points cover the aged-out range");
        // The 4-slot coarse ring covers 120 s; the tick at 1110
        // (bucket 37) displaced bucket 33 (990..1020), so the oldest
        // surviving coarse slot is 1020..1050: samples 2, 3, 4 →
        // slot mean 3.0.
        assert_eq!(pts.first(), Some(&(1_020, 3.0)));
        assert!(
            pts.iter().all(|(ts, _)| *ts < 1_050 || *ts % 10 == 0),
            "fine tier owns the covered window"
        );
    }

    #[test]
    fn histogram_p99_is_windowed_not_lifetime() {
        let r = Registry::new();
        let h = r.histogram("lat_us", "Latency.");
        let db = small();
        // First window: all slow.
        for _ in 0..100 {
            h.observe(100_000);
        }
        db.sample(&r, 1_000);
        let (_, slow) = db.latest("lat_us:p99", &[]).expect("p99 series");
        assert!(slow > 60_000.0, "first window p99 is slow: {slow}");
        // Second window: all fast. A lifetime p99 would stay slow.
        for _ in 0..100 {
            h.observe(10);
        }
        db.sample(&r, 1_010);
        let (_, fast) = db.latest("lat_us:p99", &[]).expect("p99 series");
        assert!(fast < 100.0, "windowed p99 must reflect the window: {fast}");
        // An idle window records no new p99 point.
        db.sample(&r, 1_020);
        let (ts, _) = db.latest("lat_us:p99", &[]).unwrap();
        assert_eq!(ts, 1_010, "no observations, no point");
    }

    #[test]
    fn memory_is_fixed_by_geometry() {
        let cfg = TsdbConfig::default();
        assert_eq!(cfg.slots_per_series(), 360 + 288);
        let r = Registry::new();
        r.counter("a_total", "A.");
        let db = Tsdb::default();
        for i in 0..10_000u64 {
            db.sample(&r, i * 10);
        }
        assert_eq!(db.series_count(), 2, "a_total + moas_journal_dropped_total");
    }
}
