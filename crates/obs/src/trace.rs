//! Span tracing: lightweight trees of timed spans with `u64`
//! trace/span ids, a bounded in-memory span ring, and a head-sampling
//! [`Tracer`].
//!
//! A *trace* is a tree of spans sharing one trace id — here, the
//! journey of one MRT file from feed discovery (`feed_poll`) through
//! decode, shard apply, and history append to the published epoch, or
//! of one HTTP request through parse → route → serialize. Spans are
//! cheap: a sampled span takes two clock reads and one uncontended
//! per-slot lock on finish; an *unsampled* span takes a single atomic
//! load and records nothing (the bench gate pins both paths).
//!
//! Sampling is head-based: the root decides once (1-in-N) and every
//! child inherits the decision through its [`SpanContext`], so a trace
//! is always complete or absent, never partial.
//!
//! Two recording shapes cover the codebase's measurement styles:
//! guard spans ([`Tracer::span`] / [`Tracer::child`]) for scoped work,
//! and [`Tracer::record_child`] for stages that already measure an
//! elapsed `Duration` — the record is backdated so span trees still
//! nest correctly.
//!
//! The *current context* ([`Tracer::set_current`]) is an ambient slot
//! for the active ingest trace: the feed follower sets it for the span
//! of one poll so downstream stages on other threads (shard workers
//! receive it by message; the history store and compaction daemon read
//! it directly) attach as children without threading a context through
//! every call signature. It is a single global slot written by the one
//! feed thread — writers other than the follower should pass contexts
//! explicitly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime};

/// Default capacity of the span ring (spans, not traces).
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// A span's identity within its trace: the trace id shared by the
/// whole tree plus this span's own id. A zeroed context means "not
/// sampled" and makes every downstream recording a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanContext {
    /// Trace id shared by every span in the tree (the root's span id).
    pub trace: u64,
    /// This span's id (0 = unsampled).
    pub span: u64,
}

impl SpanContext {
    /// The explicit "not sampled / no active trace" context.
    pub const NONE: SpanContext = SpanContext { trace: 0, span: 0 };

    /// Whether this context belongs to a sampled trace.
    pub fn is_sampled(&self) -> bool {
        self.span != 0
    }
}

/// One finished span in the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace id of the tree this span belongs to.
    pub trace: u64,
    /// This span's id.
    pub span: u64,
    /// Parent span id (0 for a root span).
    pub parent: u64,
    /// Stage name (`feed_poll`, `mrt_decode`, `request_route`, …).
    pub name: &'static str,
    /// Wall-clock start, microseconds since the Unix epoch.
    pub start_unix_us: u64,
    /// Span duration in microseconds.
    pub duration_us: u64,
}

/// A live span guard: finishes (records) on drop.
///
/// Unsampled spans carry a zeroed context and record nothing.
#[must_use = "a span measures the scope it lives in"]
pub struct Span<'t> {
    tracer: &'t Tracer,
    ctx: SpanContext,
    parent: u64,
    name: &'static str,
    started: Option<(Instant, SystemTime)>,
}

impl Span<'_> {
    /// This span's context, for handing to children (possibly on other
    /// threads). Zeroed when unsampled.
    pub fn context(&self) -> SpanContext {
        self.ctx
    }

    /// Whether this span will be recorded.
    pub fn is_sampled(&self) -> bool {
        self.ctx.is_sampled()
    }

    /// Finishes the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some((started, wall)) = self.started else {
            return;
        };
        self.tracer.push(SpanRecord {
            trace: self.ctx.trace,
            span: self.ctx.span,
            parent: self.parent,
            name: self.name,
            start_unix_us: unix_micros(wall),
            duration_us: started.elapsed().as_micros() as u64,
        });
    }
}

/// The head-sampling tracer: id allocator, sampling decision, span
/// ring, and the ambient current-ingest context.
#[derive(Debug)]
pub struct Tracer {
    /// 0 disables tracing entirely; N samples 1 trace in N.
    sample_every: AtomicU64,
    /// Root counter driving the 1-in-N decision.
    heads: AtomicU64,
    /// Monotonic span-id allocator (ids start at 1; 0 means none).
    next_id: AtomicU64,
    /// Bounded span ring: per-slot mutexes stay uncontended (each
    /// writer owns a distinct slot via the cursor), keeping the write
    /// path lock-free in practice while staying within
    /// `forbid(unsafe_code)`. Each slot remembers the push sequence
    /// that wrote it, so [`Tracer::drain_new`] can hand out each span
    /// exactly once even while writers race the drain.
    slots: Vec<Mutex<Option<(u64, SpanRecord)>>>,
    cursor: AtomicU64,
    /// Ambient (trace, span) of the active ingest trace.
    current_trace: AtomicU64,
    current_span: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl Tracer {
    /// A tracer whose ring holds `capacity` spans (minimum 1); the
    /// default sampling is 1 (record every trace — the ring bounds
    /// memory, and per-span cost is nanoseconds against the
    /// millisecond-scale stages being traced).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            sample_every: AtomicU64::new(1),
            heads: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            current_trace: AtomicU64::new(0),
            current_span: AtomicU64::new(0),
        }
    }

    /// Sets head sampling: 0 records nothing, 1 records every trace,
    /// N records one root (and its whole tree) in N.
    pub fn set_sampling(&self, every: u64) {
        self.sample_every.store(every, Ordering::Relaxed);
    }

    /// The current sampling divisor (see [`Tracer::set_sampling`]).
    pub fn sampling(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Retained bytes of the span ring — fixed at construction
    /// (capacity × slot size); the
    /// `moas_resource_bytes{component="spans"}` probe.
    pub fn approx_bytes(&self) -> u64 {
        (self.slots.len() * std::mem::size_of::<Mutex<Option<(u64, SpanRecord)>>>()) as u64
    }

    /// Starts a root span, making the head-sampling decision for the
    /// whole trace. The unsampled path is one relaxed atomic load.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        let every = self.sample_every.load(Ordering::Relaxed);
        let sampled = match every {
            0 => false,
            1 => true,
            n => self.heads.fetch_add(1, Ordering::Relaxed).is_multiple_of(n),
        };
        if !sampled {
            return Span {
                tracer: self,
                ctx: SpanContext::NONE,
                parent: 0,
                name,
                started: None,
            };
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        Span {
            tracer: self,
            ctx: SpanContext {
                trace: id,
                span: id,
            },
            parent: 0,
            name,
            started: Some((Instant::now(), SystemTime::now())),
        }
    }

    /// Starts a child span under `parent`; inherits the sampling
    /// decision (an unsampled parent yields an unsampled child).
    pub fn child(&self, parent: SpanContext, name: &'static str) -> Span<'_> {
        if !parent.is_sampled() {
            return Span {
                tracer: self,
                ctx: SpanContext::NONE,
                parent: 0,
                name,
                started: None,
            };
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        Span {
            tracer: self,
            ctx: SpanContext {
                trace: parent.trace,
                span: id,
            },
            parent: parent.span,
            name,
            started: Some((Instant::now(), SystemTime::now())),
        }
    }

    /// Records an already-measured child span under `parent`,
    /// backdated so the record's start is `duration` ago. This is the
    /// hook for stages that time themselves with an `Instant` and hand
    /// the elapsed duration over (`mrt_decode`, `event_append`, …).
    /// Returns the recorded span's context (NONE when unsampled).
    pub fn record_child(
        &self,
        parent: SpanContext,
        name: &'static str,
        duration: Duration,
    ) -> SpanContext {
        if !parent.is_sampled() {
            return SpanContext::NONE;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let duration_us = duration.as_micros() as u64;
        let now_us = unix_micros(SystemTime::now());
        self.push(SpanRecord {
            trace: parent.trace,
            span: id,
            parent: parent.span,
            name,
            start_unix_us: now_us.saturating_sub(duration_us),
            duration_us,
        });
        SpanContext {
            trace: parent.trace,
            span: id,
        }
    }

    /// Records an already-measured stage span: under `parent` when
    /// that trace is sampled, otherwise as its own single-span root
    /// trace, subject to a fresh head-sampling decision. Stages that
    /// observe a duration histogram should record through this rather
    /// than [`Tracer::record_child`]: work that runs outside any
    /// trace — a daemon flush, a finalize drain — still reaches the
    /// wall-clock profiler, which is what keeps per-stage profile
    /// time reconciled with the `moas_stage_duration_us` sums.
    pub fn record_stage(
        &self,
        parent: SpanContext,
        name: &'static str,
        duration: Duration,
    ) -> SpanContext {
        if parent.is_sampled() {
            return self.record_child(parent, name, duration);
        }
        let every = self.sample_every.load(Ordering::Relaxed);
        let sampled = match every {
            0 => false,
            1 => true,
            n => self.heads.fetch_add(1, Ordering::Relaxed).is_multiple_of(n),
        };
        if !sampled {
            return SpanContext::NONE;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let duration_us = duration.as_micros() as u64;
        let now_us = unix_micros(SystemTime::now());
        self.push(SpanRecord {
            trace: id,
            span: id,
            parent: 0,
            name,
            start_unix_us: now_us.saturating_sub(duration_us),
            duration_us,
        });
        SpanContext {
            trace: id,
            span: id,
        }
    }

    /// Publishes `ctx` as the ambient ingest context (see the module
    /// docs); downstream stages pick it up via [`Tracer::current`].
    pub fn set_current(&self, ctx: SpanContext) {
        self.current_trace.store(ctx.trace, Ordering::Relaxed);
        self.current_span.store(ctx.span, Ordering::Relaxed);
    }

    /// Clears the ambient ingest context.
    pub fn clear_current(&self) {
        self.set_current(SpanContext::NONE);
    }

    /// The ambient ingest context ([`SpanContext::NONE`] when no
    /// ingest trace is active).
    pub fn current(&self) -> SpanContext {
        SpanContext {
            trace: self.current_trace.load(Ordering::Relaxed),
            span: self.current_span.load(Ordering::Relaxed),
        }
    }

    fn push(&self, record: SpanRecord) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let i = seq as usize % self.slots.len();
        *self.slots[i].lock().expect("span slot poisoned") = Some((seq, record));
    }

    /// All spans of one trace, parents before children (start order,
    /// root first). Empty when the trace has rotated out of the ring.
    pub fn trace_spans(&self, trace: u64) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().expect("span slot poisoned").clone())
            .map(|(_, r)| r)
            .filter(|r| r.trace == trace)
            .collect();
        spans.sort_by_key(|r| (r.parent != 0, r.start_unix_us, r.span));
        spans
    }

    /// The slowest root spans still in the ring, longest first,
    /// truncated to `limit`.
    pub fn slowest_roots(&self, limit: usize) -> Vec<SpanRecord> {
        let mut roots: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().expect("span slot poisoned").clone())
            .map(|(_, r)| r)
            .filter(|r| r.parent == 0)
            .collect();
        roots.sort_by_key(|r| (std::cmp::Reverse(r.duration_us), r.span));
        roots.truncate(limit);
        roots
    }

    /// Total spans currently held in the ring.
    pub fn recorded(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.lock().expect("span slot poisoned").is_some())
            .count()
    }

    /// Spans pushed since a previous checkpoint, exactly once.
    ///
    /// `from` is the cursor a prior call returned (0 to start).
    /// Returns `(spans, next_cursor, missed)` where `missed` counts
    /// spans that were overwritten by ring wrap before this drain
    /// reached them — the continuous profiler's signal to tick more
    /// often (surfaced as `moas_profile_spans_dropped_total`). Each
    /// slot is matched against the push sequence that should occupy
    /// it, so a racing writer can neither duplicate an old span into
    /// the answer nor leak one pushed after `next_cursor`.
    pub fn drain_new(&self, from: u64) -> (Vec<SpanRecord>, u64, u64) {
        let end = self.cursor.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let start = from.max(end.saturating_sub(cap));
        let missed = start - from;
        let mut spans = Vec::with_capacity((end - start) as usize);
        for seq in start..end {
            let i = seq as usize % self.slots.len();
            let slot = self.slots[i].lock().expect("span slot poisoned");
            if let Some((slot_seq, record)) = &*slot {
                if *slot_seq == seq {
                    spans.push(record.clone());
                }
            }
        }
        (spans, end, missed)
    }
}

fn unix_micros(t: SystemTime) -> u64 {
    t.duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_stage_falls_back_to_a_root_trace_outside_any_parent() {
        let tracer = Tracer::default();
        // With a sampled parent it behaves exactly like record_child.
        let root = tracer.span("feed_poll");
        let ctx = tracer.record_stage(root.context(), "shard_apply", Duration::from_micros(9));
        assert_eq!(ctx.trace, root.context().trace);
        root.finish();
        // Without one, the stage still records — as its own root —
        // so profiles stay reconciled with the stage histograms.
        let orphan =
            tracer.record_stage(SpanContext::NONE, "shard_apply", Duration::from_micros(4));
        assert!(orphan.is_sampled());
        let spans = tracer.trace_spans(orphan.trace);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent, 0, "the fallback span is a root");
        assert_eq!(spans[0].duration_us, 4);
        // Sampling 0 silences the fallback path too.
        tracer.set_sampling(0);
        let none = tracer.record_stage(SpanContext::NONE, "shard_apply", Duration::from_micros(4));
        assert!(!none.is_sampled());
    }

    #[test]
    fn root_and_children_share_a_trace_and_link_parents() {
        let tracer = Tracer::default();
        let root = tracer.span("feed_poll");
        let root_ctx = root.context();
        assert!(root_ctx.is_sampled());
        let child = tracer.child(root_ctx, "feed_tail");
        let child_ctx = child.context();
        assert_eq!(child_ctx.trace, root_ctx.trace);
        assert_ne!(child_ctx.span, root_ctx.span);
        let grand = tracer.record_child(child_ctx, "mrt_decode", Duration::from_micros(7));
        assert_eq!(grand.trace, root_ctx.trace);
        child.finish();
        root.finish();

        let spans = tracer.trace_spans(root_ctx.trace);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "feed_poll");
        assert_eq!(spans[0].parent, 0);
        let tail = spans.iter().find(|s| s.name == "feed_tail").unwrap();
        assert_eq!(tail.parent, root_ctx.span);
        let decode = spans.iter().find(|s| s.name == "mrt_decode").unwrap();
        assert_eq!(decode.parent, child_ctx.span);
        assert_eq!(decode.duration_us, 7);
    }

    #[test]
    fn sampling_zero_records_nothing_and_children_inherit() {
        let tracer = Tracer::default();
        tracer.set_sampling(0);
        let root = tracer.span("feed_poll");
        assert!(!root.is_sampled());
        let ctx = root.context();
        let child = tracer.child(ctx, "feed_tail");
        assert!(!child.is_sampled());
        assert_eq!(
            tracer.record_child(ctx, "mrt_decode", Duration::from_micros(5)),
            SpanContext::NONE
        );
        child.finish();
        root.finish();
        assert_eq!(tracer.recorded(), 0);
    }

    #[test]
    fn one_in_n_sampling_keeps_whole_trees() {
        let tracer = Tracer::default();
        tracer.set_sampling(3);
        let mut sampled = 0;
        for _ in 0..9 {
            let root = tracer.span("r");
            if root.is_sampled() {
                sampled += 1;
                tracer.child(root.context(), "c").finish();
            }
        }
        assert_eq!(sampled, 3, "1-in-3 heads over 9 roots");
        assert_eq!(tracer.recorded(), 6, "each sampled tree has 2 spans");
    }

    #[test]
    fn ring_overwrites_oldest_spans() {
        let tracer = Tracer::with_capacity(4);
        let mut last = 0;
        for _ in 0..10 {
            let s = tracer.span("r");
            last = s.context().trace;
            s.finish();
        }
        assert_eq!(tracer.recorded(), 4);
        assert_eq!(tracer.trace_spans(last).len(), 1, "newest survives");
        assert!(tracer.trace_spans(1).is_empty(), "oldest rotated out");
    }

    #[test]
    fn slowest_roots_sorts_and_truncates() {
        let tracer = Tracer::default();
        let root = tracer.span("outer");
        let ctx = root.context();
        for us in [5u64, 50, 500] {
            // Fabricated root spans via a parentless record: use
            // fresh root guards instead, with recorded durations via
            // record_child under a throwaway root.
            tracer.record_child(ctx, "inner", Duration::from_micros(us));
        }
        root.finish();
        let another = tracer.span("outer2");
        another.finish();
        let roots = tracer.slowest_roots(10);
        assert!(roots.len() >= 2);
        assert!(roots.iter().all(|r| r.parent == 0));
        assert!(roots
            .windows(2)
            .all(|w| w[0].duration_us >= w[1].duration_us));
        assert_eq!(tracer.slowest_roots(1).len(), 1);
    }

    #[test]
    fn drain_new_hands_out_each_span_exactly_once_and_counts_misses() {
        let tracer = Tracer::with_capacity(4);
        tracer.span("a").finish();
        tracer.span("b").finish();
        let (spans, cursor, missed) = tracer.drain_new(0);
        assert_eq!(spans.len(), 2);
        assert_eq!((cursor, missed), (2, 0));
        // Nothing new: an empty drain from the checkpoint.
        let (spans, cursor2, missed) = tracer.drain_new(cursor);
        assert!(spans.is_empty());
        assert_eq!((cursor2, missed), (2, 0));
        // Overflow the 4-slot ring by 6 pushes: 2 are unrecoverable.
        for _ in 0..6 {
            tracer.span("c").finish();
        }
        let (spans, cursor3, missed) = tracer.drain_new(cursor2);
        assert_eq!(spans.len(), 4, "only the ring's worth survives");
        assert_eq!(cursor3, 8);
        assert_eq!(missed, 2, "overwritten spans are counted, not silent");
    }

    #[test]
    fn ambient_current_context_round_trips() {
        let tracer = Tracer::default();
        assert_eq!(tracer.current(), SpanContext::NONE);
        let root = tracer.span("feed_poll");
        tracer.set_current(root.context());
        assert_eq!(tracer.current(), root.context());
        tracer.clear_current();
        assert_eq!(tracer.current(), SpanContext::NONE);
        root.finish();
    }
}
