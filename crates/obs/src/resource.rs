//! Component-level resource attribution: the byte ledger and the
//! standard process-identity gauges.
//!
//! The [`ResourceLedger`] answers "where do the bytes go" the way the
//! CPU ledger answers it for cycles: each retaining subsystem (store,
//! response cache, tsdb, journal, span ring, shard state) registers a
//! *probe* — a closure reporting its current retained footprint — and
//! every [`ResourceLedger::sample`] publishes the probes as
//! `moas_resource_bytes{component=...}` gauges next to the kernel's
//! own view of the process (`moas_process_rss_bytes` from
//! `/proc/self/statm`). The gap between Σ components and RSS is the
//! unattributed remainder (allocator slack, stacks, code); watching
//! both is what makes month-scale capacity drift visible before it
//! kills a deployment.
//!
//! [`register_process_metrics`] fills the standard-convention gap
//! from PR 6: `moas_build_info{version,profile} 1` and
//! `moas_process_start_time_seconds` (from `/proc/self/stat`
//! starttime + `/proc/stat` btime, falling back to first-registration
//! time off Linux).

use crate::registry::{Gauge, Registry};
use std::sync::{Arc, Mutex, OnceLock};

/// Bytes per page for `/proc/self/statm` accounting. Linux reports
/// statm in pages; 4 KiB is the page size on every platform this
/// workspace targets (no libc available to ask `sysconf`).
const PAGE_BYTES: u64 = 4096;

type Probe = Box<dyn Fn() -> u64 + Send + Sync>;

/// The component byte ledger. See the module docs.
pub struct ResourceLedger {
    registry: Arc<Registry>,
    probes: Mutex<Vec<(String, Gauge, Probe)>>,
    rss: Gauge,
}

impl ResourceLedger {
    /// A ledger publishing onto `registry`; also registers the
    /// process-identity gauges ([`register_process_metrics`]) so any
    /// wiring site that attaches a ledger gets them for free.
    pub fn new(registry: Arc<Registry>) -> Self {
        register_process_metrics(&registry);
        let rss = registry.gauge(
            "moas_process_rss_bytes",
            "Resident set size from /proc/self/statm.",
        );
        ResourceLedger {
            registry,
            probes: Mutex::new(Vec::new()),
            rss,
        }
    }

    /// Registers a component probe. The closure reports the
    /// component's current retained bytes and runs on every
    /// [`ResourceLedger::sample`]; it must not block (take a quick
    /// lock, read an atomic, do geometry math). Re-registering a
    /// component name replaces its probe.
    pub fn probe(&self, component: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        let gauge = self.registry.gauge_with(
            "moas_resource_bytes",
            &[("component", component)],
            "Retained bytes attributed to a component.",
        );
        let mut probes = self.probes.lock().expect("resource probes poisoned");
        if let Some(slot) = probes.iter_mut().find(|(name, _, _)| name == component) {
            slot.2 = Box::new(f);
        } else {
            probes.push((component.to_string(), gauge, Box::new(f)));
        }
    }

    /// Runs every probe into its gauge and refreshes process RSS.
    /// Returns the number of components sampled.
    pub fn sample(&self) -> usize {
        let probes = self.probes.lock().expect("resource probes poisoned");
        for (_, gauge, probe) in probes.iter() {
            gauge.set(probe());
        }
        if let Some(rss) = read_rss_bytes() {
            self.rss.set(rss);
        }
        probes.len()
    }

    /// Current `(component, bytes)` readings, sorted by component —
    /// the JSON-facing view (probes are run fresh, not cached).
    pub fn components(&self) -> Vec<(String, u64)> {
        let probes = self.probes.lock().expect("resource probes poisoned");
        let mut out: Vec<(String, u64)> = probes
            .iter()
            .map(|(name, _, probe)| (name.clone(), probe()))
            .collect();
        out.sort();
        out
    }
}

/// Resident set size in bytes from `/proc/self/statm` (second field,
/// pages). `None` off Linux.
pub fn read_rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_ascii_whitespace().nth(1)?.parse().ok()?;
    Some(pages * PAGE_BYTES)
}

/// Unix time the process started, seconds: `/proc/stat` btime plus
/// `/proc/self/stat` starttime (field 22, clock ticks since boot at
/// `USER_HZ = 100`).
fn read_process_start_seconds() -> Option<u64> {
    let btime = std::fs::read_to_string("/proc/stat")
        .ok()?
        .lines()
        .find_map(|line| line.strip_prefix("btime ")?.trim().parse::<u64>().ok())?;
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    let tail = &stat[stat.rfind(')')? + 1..];
    let starttime_ticks: u64 = tail.split_ascii_whitespace().nth(19)?.parse().ok()?;
    Some(btime + starttime_ticks / 100)
}

/// Registers `moas_build_info{version,profile} 1` and
/// `moas_process_start_time_seconds` on `registry`. Idempotent; every
/// registry a process exposes should carry both (Prometheus uses the
/// start time to spot restarts, build_info to join dashboards to
/// releases).
pub fn register_process_metrics(registry: &Registry) {
    static START: OnceLock<u64> = OnceLock::new();
    let start =
        *START.get_or_init(|| read_process_start_seconds().unwrap_or_else(crate::tsdb::unix_now));
    registry
        .gauge_with(
            "moas_build_info",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                (
                    "profile",
                    if cfg!(debug_assertions) {
                        "debug"
                    } else {
                        "release"
                    },
                ),
            ],
            "Build identity; always 1.",
        )
        .set(1);
    registry
        .gauge(
            "moas_process_start_time_seconds",
            "Unix time the process started.",
        )
        .set(start);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_publish_gauges_and_rss() {
        let registry = Arc::new(Registry::new());
        let ledger = ResourceLedger::new(Arc::clone(&registry));
        let bytes = Arc::new(std::sync::atomic::AtomicU64::new(1_000));
        let src = Arc::clone(&bytes);
        ledger.probe("cache", move || {
            src.load(std::sync::atomic::Ordering::Relaxed)
        });
        assert_eq!(ledger.sample(), 1);
        assert_eq!(
            registry.value("moas_resource_bytes", &[("component", "cache")]),
            Some(1_000)
        );
        bytes.store(2_500, std::sync::atomic::Ordering::Relaxed);
        ledger.sample();
        assert_eq!(
            registry.value("moas_resource_bytes", &[("component", "cache")]),
            Some(2_500)
        );
        assert_eq!(ledger.components(), vec![("cache".to_string(), 2_500)]);
        if read_rss_bytes().is_some() {
            assert!(registry.value("moas_process_rss_bytes", &[]).unwrap() > 0);
        }
    }

    #[test]
    fn process_metrics_follow_prometheus_conventions() {
        let registry = Registry::new();
        register_process_metrics(&registry);
        register_process_metrics(&registry); // idempotent
        assert_eq!(
            registry.value(
                "moas_build_info",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    (
                        "profile",
                        if cfg!(debug_assertions) {
                            "debug"
                        } else {
                            "release"
                        }
                    ),
                ]
            ),
            Some(1)
        );
        let start = registry
            .value("moas_process_start_time_seconds", &[])
            .unwrap();
        assert!(start > 1_000_000_000, "plausible unix time, got {start}");
        assert!(start <= crate::tsdb::unix_now());
        let text = registry.render_prometheus();
        assert!(text.contains("moas_build_info{"));
        assert!(text.contains("moas_process_start_time_seconds"));
    }
}
