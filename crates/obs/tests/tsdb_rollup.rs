//! Property test for tsdb fine→coarse tier rollup continuity: the
//! coarse tier's slot means across the 10s→5min boundary must agree
//! with a reference fold of the raw samples that landed in each
//! coarse bucket, and a query spanning the boundary must hand the
//! covered window to the fine tier without gaps or double counting.

use moas_obs::{Registry, Tsdb, TsdbConfig};
use proptest::prelude::*;

/// Small two-tier geometry with the production 1:30 step ratio shape
/// (10 s fine, 5 slots of fine per coarse slot): a 60 s fine window
/// over a 600 s coarse window keeps the proptest cases fast while
/// still rotating both rings.
fn small_config() -> TsdbConfig {
    TsdbConfig {
        fine_step_secs: 10,
        fine_slots: 6,
        coarse_step_secs: 50,
        coarse_slots: 12,
    }
}

proptest! {
    #[test]
    fn coarse_means_agree_with_a_reference_fold(
        values in prop::collection::vec(0u64..100_000, 8..40),
        start_bucket in 1_000u64..1_000_000,
    ) {
        let cfg = small_config();
        let registry = Registry::new();
        let gauge = registry.gauge("rollup_probe", "Rollup probe.");
        let db = Tsdb::new(cfg);
        // One sample per fine step, gauges driven by the generated
        // values — the exact stream the reference fold sees.
        let start = start_bucket * cfg.fine_step_secs;
        let mut samples: Vec<(u64, f64)> = Vec::new();
        for (i, v) in values.iter().enumerate() {
            let now = start + i as u64 * cfg.fine_step_secs;
            gauge.set(*v);
            db.sample(&registry, now);
            samples.push((now, *v as f64));
        }
        let now = start + (values.len() as u64 - 1) * cfg.fine_step_secs;

        // Reference fold: group raw samples by coarse bucket, mean.
        let mut reference: std::collections::BTreeMap<u64, (f64, u32)> =
            std::collections::BTreeMap::new();
        for &(ts, v) in &samples {
            let e = reference.entry(ts / cfg.coarse_step_secs).or_insert((0.0, 0));
            e.0 += v;
            e.1 += 1;
        }

        let range = cfg.coarse_step_secs * cfg.coarse_slots as u64;
        let series = db.query("rollup_probe", range, now);
        prop_assert_eq!(series.len(), 1);
        let points = &series[0].points;

        // Continuity: strictly increasing timestamps, no duplicates.
        for pair in points.windows(2) {
            prop_assert!(pair[0].0 < pair[1].0, "sorted, deduped: {:?}", points);
        }

        let fine_window = cfg.fine_step_secs * cfg.fine_slots as u64;
        let fine_floor = now.saturating_sub(fine_window);
        for &(ts, value) in points {
            if ts < fine_floor {
                // Coarse-tier point: must be the reference mean of the
                // raw samples in its bucket, timestamped at the bucket.
                prop_assert_eq!(ts % cfg.coarse_step_secs, 0, "coarse ts aligned");
                let (sum, count) = reference[&(ts / cfg.coarse_step_secs)];
                let mean = sum / count as f64;
                prop_assert!(
                    (value - mean).abs() < 1e-9,
                    "coarse slot at {} is {} but reference fold says {}",
                    ts, value, mean
                );
            } else {
                // Fine-tier point: must be the raw sample itself.
                let raw = samples.iter().find(|(t, _)| *t == ts);
                prop_assert_eq!(raw.map(|(_, v)| *v), Some(value));
            }
        }

        // Coverage across the boundary: every raw sample still inside
        // the fine window is answered verbatim, and every wholly
        // aged-out coarse bucket that the ring still holds is
        // answered as a mean — the boundary loses nothing the rings
        // still cover.
        let answered: std::collections::BTreeSet<u64> =
            points.iter().map(|(ts, _)| *ts).collect();
        for &(ts, _) in &samples {
            if ts >= fine_floor && ts / cfg.fine_step_secs + (cfg.fine_slots as u64) > now / cfg.fine_step_secs {
                prop_assert!(answered.contains(&ts), "fine sample at {} missing", ts);
            }
        }
        let oldest_live_coarse = (now / cfg.coarse_step_secs + 1)
            .saturating_sub(cfg.coarse_slots as u64);
        for (&bucket, _) in reference.iter() {
            let ts = bucket * cfg.coarse_step_secs;
            // Buckets fully older than the fine floor and still in the
            // coarse ring must be present.
            if bucket >= oldest_live_coarse && ts + cfg.coarse_step_secs <= fine_floor {
                prop_assert!(
                    answered.contains(&ts),
                    "coarse bucket at {} lost across the boundary",
                    ts
                );
            }
        }
    }

    #[test]
    fn rollup_of_a_constant_series_is_the_constant(
        value in 0u64..1_000_000,
        ticks in 10usize..40,
    ) {
        // Means of a constant must be the constant in both tiers — the
        // cheapest possible distortion detector.
        let cfg = small_config();
        let registry = Registry::new();
        let gauge = registry.gauge("flat_probe", "Flat probe.");
        let db = Tsdb::new(cfg);
        let start = 50_000u64;
        gauge.set(value);
        let mut now = start;
        for i in 0..ticks {
            now = start + i as u64 * cfg.fine_step_secs;
            db.sample(&registry, now);
        }
        let series = db.query("flat_probe", cfg.coarse_step_secs * cfg.coarse_slots as u64, now);
        prop_assert_eq!(series.len(), 1);
        for &(ts, v) in &series[0].points {
            prop_assert!(
                (v - value as f64).abs() < 1e-9,
                "constant distorted at {}: {} != {}",
                ts, v, value
            );
        }
    }
}
