//! Ground-truth calibration probe: prints the generator's numbers
//! *before* any collection or detection happens.
//!
//! This is the tool used to tune `Calibration::paper()` — it reports
//! what the world schedules, against which EXPERIMENTS.md's *measured*
//! numbers (which flow through the collector and detector) can be
//! compared. If the two diverge, the gap is in visibility/measurement,
//! not in scheduling.
//!
//! ```sh
//! cargo run --release -p moas-sim --example calibration_probe
//! ```

use moas_sim::{SimParams, World};

fn main() {
    let t = std::time::Instant::now();
    let w = World::generate(SimParams::paper());
    println!("generated in {:?}", t.elapsed());
    println!("conflicts scheduled:  {}", w.conflicts.len());
    println!("plan prefixes:        {}", w.plan.len());
    println!("topology ASes:        {}", w.topo.len());

    let idx98 = w
        .window
        .snapshot_index(moas_net::Date::ymd(1998, 4, 7).day_index())
        .expect("incident day");
    println!("1998-04-07 active:    {}", w.active_count(idx98));
    let idx01 = w
        .window
        .snapshot_index(moas_net::Date::ymd(2001, 4, 6).day_index())
        .expect("incident day");
    println!("2001-04-06 active:    {}", w.active_count(idx01));
    println!("ongoing at cutoff:    {}", w.ongoing_at_cutoff());

    let d = w.observed_durations();
    println!("with core presence:   {}", d.len());
    let one = d.iter().filter(|&&x| x == 1).count();
    println!("one-timers:           {one}");
    let sum: u64 = d.iter().map(|&x| x as u64).sum();
    println!("mean duration:        {:.1}", sum as f64 / d.len() as f64);
    let over9: Vec<u32> = d.iter().copied().filter(|&x| x > 9).collect();
    println!(
        "k>9:                  {} (mean {:.1})",
        over9.len(),
        over9.iter().map(|&x| x as u64).sum::<u64>() as f64 / over9.len().max(1) as f64
    );
    println!(
        "k>300:                {}",
        d.iter().filter(|&&x| x > 300).count()
    );

    println!(
        "background at start:  {}",
        w.background_alive(w.window.start().day_index())
    );
    println!(
        "background at end:    {}",
        w.background_alive(w.window.end().day_index())
    );

    println!("\nyearly medians of scheduled active conflicts:");
    for y in [1998, 1999, 2000, 2001] {
        let pos = w.window.core_positions_in_year(y);
        let mut counts: Vec<usize> = pos.iter().map(|&i| w.active_count(i)).collect();
        counts.sort_unstable();
        let m = if counts.len() % 2 == 1 {
            counts[counts.len() / 2] as f64
        } else {
            (counts[counts.len() / 2 - 1] + counts[counts.len() / 2]) as f64 / 2.0
        };
        println!("  {y}: {m}");
    }
}
