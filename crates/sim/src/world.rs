//! The assembled world: topology + prefix plan + conflict schedule.

use crate::calibrate::SimParams;
use crate::conflict::Conflict;
use crate::schedule::{self, AsSetRoute, Schedule};
use crate::window::StudyWindow;
use moas_net::rng::DetRng;
use moas_net::DayIndex;
use moas_topology::prefixes::PrefixPlan;
use moas_topology::Topology;

/// A fully generated world, ready for collection and analysis.
#[derive(Debug, Clone)]
pub struct World {
    /// Parameters used.
    pub params: SimParams,
    /// The study window.
    pub window: StudyWindow,
    /// The AS-level topology.
    pub topo: Topology,
    /// Legitimate prefix originations.
    pub plan: PrefixPlan,
    /// All conflict instances.
    pub conflicts: Vec<Conflict>,
    /// Routes ending in AS sets (excluded from MOAS analysis).
    pub as_set_routes: Vec<AsSetRoute>,
    /// Per-snapshot-day active conflict ids (index = snapshot position).
    active_by_day: Vec<Vec<u32>>,
}

impl World {
    /// Generates the world for the given parameters. Deterministic:
    /// the same parameters always produce the same world.
    pub fn generate(params: SimParams) -> World {
        let rng = DetRng::new(params.seed);
        let window = params.window();
        let topo = Topology::grow(params.growth.clone(), &rng);
        let plan = PrefixPlan::generate(&topo, &params.plan, &rng);
        let Schedule {
            conflicts,
            as_set_routes,
        } = schedule::generate(&params, &window, &topo, &plan);

        let mut active_by_day: Vec<Vec<u32>> = vec![Vec::new(); window.total_len()];
        for c in &conflicts {
            for idx in c.active.iter_days() {
                if (idx as usize) < active_by_day.len() {
                    active_by_day[idx as usize].push(c.id);
                }
            }
        }

        World {
            params,
            window,
            topo,
            plan,
            conflicts,
            as_set_routes,
            active_by_day,
        }
    }

    /// The conflict ids active at snapshot position `idx`.
    pub fn active_at(&self, idx: usize) -> &[u32] {
        &self.active_by_day[idx]
    }

    /// The number of active conflicts at snapshot position `idx` —
    /// ground truth for Figure 1 (the analyzer must rediscover it from
    /// the tables).
    pub fn active_count(&self, idx: usize) -> usize {
        self.active_by_day[idx].len()
    }

    /// A conflict by id.
    pub fn conflict(&self, id: u32) -> &Conflict {
        &self.conflicts[id as usize]
    }

    /// Ground-truth count of conflicts ongoing at the paper cutoff.
    pub fn ongoing_at_cutoff(&self) -> usize {
        let core = self.window.core_len();
        self.conflicts.iter().filter(|c| c.ongoing_at(core)).count()
    }

    /// Ground-truth observed durations (snapshot days within the core
    /// window) for every conflict with at least one core-window day.
    pub fn observed_durations(&self) -> Vec<u32> {
        let core = self.window.core_len();
        self.conflicts
            .iter()
            .map(|c| c.observed_duration(core))
            .filter(|&d| d > 0)
            .collect()
    }

    /// Number of legitimate (non-conflicted) prefixes alive at `day`.
    pub fn background_alive(&self, day: DayIndex) -> usize {
        self.plan.alive_count(day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::Cause;
    use crate::window::incidents;

    fn world() -> World {
        World::generate(SimParams::test(0.01))
    }

    #[test]
    fn world_is_deterministic() {
        let a = world();
        let b = world();
        assert_eq!(a.conflicts.len(), b.conflicts.len());
        for idx in [0usize, 100, 500, 1278] {
            assert_eq!(a.active_at(idx), b.active_at(idx));
        }
    }

    #[test]
    fn active_index_matches_patterns() {
        let w = world();
        for idx in (0..w.window.total_len()).step_by(97) {
            for &id in w.active_at(idx) {
                assert!(w.conflict(id).active.is_active(idx as u32));
            }
            let expect = w
                .conflicts
                .iter()
                .filter(|c| c.active.is_active(idx as u32))
                .count();
            assert_eq!(w.active_count(idx), expect, "day {idx}");
        }
    }

    #[test]
    fn daily_actives_track_baseline() {
        let w = world();
        // Compare mid-window activity against the scaled baseline,
        // away from incident days.
        let check_day = |date: moas_net::Date| {
            let idx = w.window.snapshot_index(date.day_index()).unwrap();
            let got = w.active_count(idx) as f64;
            let want = w.params.calibration.baseline(date.day_index());
            assert!(
                (got - want).abs() < want.max(4.0) * 0.8 + 6.0,
                "{date}: got {got}, baseline {want}"
            );
        };
        check_day(moas_net::Date::ymd(1999, 3, 1));
        check_day(moas_net::Date::ymd(2000, 9, 15));
    }

    #[test]
    fn incident_day_is_the_peak() {
        let w = world();
        let idx98 = w
            .window
            .snapshot_index(incidents::fault_1998().day_index())
            .unwrap();
        let count98 = w.active_count(idx98);
        // The 1998 spike dwarfs every surrounding day.
        for off in [-3i64, -2, -1, 1, 2, 3] {
            let other = (idx98 as i64 + off) as usize;
            assert!(
                count98 > w.active_count(other) * 3,
                "spike not dominant: {count98} vs day {other}: {}",
                w.active_count(other)
            );
        }
    }

    #[test]
    fn ongoing_count_positive_and_bounded() {
        let w = world();
        let ongoing = w.ongoing_at_cutoff();
        let target = 1_326.0 * w.params.scale;
        assert!(
            (ongoing as f64) > target * 0.4 && (ongoing as f64) < target * 2.5,
            "ongoing {ongoing} vs scaled target {target}"
        );
    }

    #[test]
    fn durations_have_heavy_tail() {
        let w = world();
        let durations = w.observed_durations();
        let one_timers = durations.iter().filter(|&&d| d == 1).count();
        let long = durations.iter().filter(|&&d| d > 300).count();
        assert!(one_timers > durations.len() / 5, "one-timers missing");
        assert!(long > 0, "no long tail");
        let max = *durations.iter().max().unwrap();
        assert_eq!(max, w.params.calibration.longest_days);
    }

    #[test]
    fn background_table_grows() {
        let w = world();
        let start = w.window.start().day_index();
        let end = w.window.end().day_index();
        assert!(w.background_alive(end) > w.background_alive(start));
    }

    #[test]
    fn cause_taxonomy_is_populated() {
        let w = world();
        let causes: std::collections::HashSet<Cause> =
            w.conflicts.iter().map(|c| c.cause).collect();
        for expect in [
            Cause::Misconfig,
            Cause::ProviderTransition,
            Cause::StaticMultihome,
            Cause::TrafficEngineering,
            Cause::ExchangePoint,
            Cause::MassFault1998,
            Cause::MassFault2001,
        ] {
            assert!(causes.contains(&expect), "missing cause {expect}");
        }
    }
}
