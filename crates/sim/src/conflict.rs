//! Conflict instances: cause taxonomy, path shape, active patterns.

use moas_net::{Asn, Ipv4Prefix};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a conflict exists — the §VI taxonomy, used as ground truth for
/// scoring the invalid-conflict detector (never shown to the detector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cause {
    /// §VI-A: an exchange-point prefix originated by several members.
    ExchangePoint,
    /// §VI-B: multi-homing without BGP (static/IGP glue); providers
    /// originate the customer's prefix.
    StaticMultihome,
    /// §VI-C: multi-homing with a private AS substituted on egress.
    PrivateAsMultihome,
    /// §VI-F: transition period while a non-BGP customer switches
    /// providers (both originate briefly).
    ProviderTransition,
    /// Traffic engineering at a large ISP: one AS intentionally
    /// announces multiple routes (produces OrigTranAS / SplitView).
    TrafficEngineering,
    /// §VI-E: misconfiguration — an AS falsely originates someone
    /// else's prefix.
    Misconfig,
    /// §VI-E: faulty aggregation — an AS announces an aggregate
    /// covering space it cannot reach.
    FaultyAggregation,
    /// The scripted 1998-04-07 AS 8584 incident.
    MassFault1998,
    /// The scripted 2001-04 AS 15412 / AS 3561 incident.
    MassFault2001,
}

impl Cause {
    /// Whether the paper considers this cause *valid* (operational
    /// practice) as opposed to a fault.
    pub fn is_valid_practice(self) -> bool {
        matches!(
            self,
            Cause::ExchangePoint
                | Cause::StaticMultihome
                | Cause::PrivateAsMultihome
                | Cause::ProviderTransition
                | Cause::TrafficEngineering
        )
    }
}

impl fmt::Display for Cause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cause::ExchangePoint => "exchange-point",
            Cause::StaticMultihome => "static-multihome",
            Cause::PrivateAsMultihome => "private-as-multihome",
            Cause::ProviderTransition => "provider-transition",
            Cause::TrafficEngineering => "traffic-engineering",
            Cause::Misconfig => "misconfig",
            Cause::FaultyAggregation => "faulty-aggregation",
            Cause::MassFault1998 => "mass-fault-1998",
            Cause::MassFault2001 => "mass-fault-2001",
        };
        f.write_str(s)
    }
}

/// The intended §V path-shape of the conflict at the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Shape {
    /// Different peers see entirely different paths to different
    /// origins (the dominant class).
    Distinct,
    /// One AS appears both as origin and as transit: some session sees
    /// `… X` and another `… X Y`.
    OrigTran,
    /// The same first-hop AS exports different routes on different
    /// sessions.
    SplitView,
}

/// Active-day pattern in *snapshot-index space*: runs of consecutive
/// snapshot indices. Patterns may be intermittent — the paper counts
/// total days in existence "regardless of whether the conflict was
/// continuous".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivePattern {
    /// Sorted, non-overlapping, non-adjacent runs: (first snapshot
    /// index, length in snapshot days).
    runs: Vec<(u32, u32)>,
}

impl ActivePattern {
    /// A single contiguous run.
    pub fn contiguous(start: u32, len: u32) -> Self {
        assert!(len > 0, "empty pattern");
        ActivePattern {
            runs: vec![(start, len)],
        }
    }

    /// Builds from explicit runs; validates ordering and disjointness.
    pub fn from_runs(runs: Vec<(u32, u32)>) -> Self {
        assert!(!runs.is_empty(), "empty pattern");
        for r in &runs {
            assert!(r.1 > 0, "zero-length run");
        }
        for pair in runs.windows(2) {
            assert!(
                pair[0].0 + pair[0].1 < pair[1].0,
                "runs must be sorted and separated"
            );
        }
        ActivePattern { runs }
    }

    /// Whether the pattern covers snapshot index `idx`.
    pub fn is_active(&self, idx: u32) -> bool {
        // Runs are few (1–6); linear scan wins.
        self.runs.iter().any(|(s, l)| idx >= *s && idx < s + l)
    }

    /// First covered snapshot index.
    pub fn first(&self) -> u32 {
        self.runs[0].0
    }

    /// Last covered snapshot index.
    pub fn last(&self) -> u32 {
        let (s, l) = *self.runs.last().expect("nonempty");
        s + l - 1
    }

    /// Total covered snapshot days.
    pub fn total_days(&self) -> u32 {
        self.runs.iter().map(|(_, l)| *l).sum()
    }

    /// Covered days at or below index `cutoff` (inclusive) — duration
    /// as observed within the paper's core window.
    pub fn days_up_to(&self, cutoff: u32) -> u32 {
        self.runs
            .iter()
            .map(|(s, l)| {
                if *s > cutoff {
                    0
                } else {
                    (cutoff - s + 1).min(*l)
                }
            })
            .sum()
    }

    /// Iterates covered snapshot indices.
    pub fn iter_days(&self) -> impl Iterator<Item = u32> + '_ {
        self.runs.iter().flat_map(|(s, l)| *s..s + l)
    }

    /// The runs themselves.
    pub fn runs(&self) -> &[(u32, u32)] {
        &self.runs
    }
}

/// One MOAS conflict instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conflict {
    /// Stable id (index into the world's conflict table).
    pub id: u32,
    /// The conflicted prefix (conflicts are identified by prefix, §III).
    pub prefix: Ipv4Prefix,
    /// The legitimate origin (ground truth; may not even be announced
    /// during the conflict, e.g. a hijacked silent prefix).
    pub owner: Asn,
    /// All origin ASes visible during the conflict (≥ 2, distinct).
    pub origins: Vec<Asn>,
    /// Ground-truth cause.
    pub cause: Cause,
    /// Intended path shape at the collector.
    pub shape: Shape,
    /// When the conflict is active, in snapshot-index space.
    pub active: ActivePattern,
    /// For faulty aggregation (§VI-E): the covering aggregate the
    /// faulty AS additionally announces while active. Detected by the
    /// subMOAS analysis, not by exact-prefix MOAS detection.
    pub aggregate: Option<Ipv4Prefix>,
}

impl Conflict {
    /// Observed duration within the core window (snapshot days with
    /// index < `core_len`).
    pub fn observed_duration(&self, core_len: usize) -> u32 {
        if core_len == 0 {
            return 0;
        }
        self.active.days_up_to(core_len as u32 - 1)
    }

    /// Whether the conflict is active on the final core day — the
    /// paper's "still ongoing as of the date the paper was written".
    pub fn ongoing_at(&self, core_len: usize) -> bool {
        core_len > 0 && self.active.is_active(core_len as u32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_pattern_basics() {
        let p = ActivePattern::contiguous(10, 5);
        assert_eq!(p.total_days(), 5);
        assert_eq!(p.first(), 10);
        assert_eq!(p.last(), 14);
        assert!(p.is_active(10) && p.is_active(14));
        assert!(!p.is_active(9) && !p.is_active(15));
        assert_eq!(p.iter_days().collect::<Vec<_>>(), vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn intermittent_pattern() {
        let p = ActivePattern::from_runs(vec![(0, 3), (10, 2), (20, 1)]);
        assert_eq!(p.total_days(), 6);
        assert_eq!(p.last(), 20);
        assert!(p.is_active(11));
        assert!(!p.is_active(5));
    }

    #[test]
    fn days_up_to_truncates() {
        let p = ActivePattern::from_runs(vec![(0, 3), (10, 5)]);
        assert_eq!(p.days_up_to(1), 2);
        assert_eq!(p.days_up_to(2), 3);
        assert_eq!(p.days_up_to(9), 3);
        assert_eq!(p.days_up_to(11), 5);
        assert_eq!(p.days_up_to(100), 8);
    }

    #[test]
    #[should_panic(expected = "sorted and separated")]
    fn overlapping_runs_rejected() {
        ActivePattern::from_runs(vec![(0, 5), (4, 2)]);
    }

    #[test]
    #[should_panic(expected = "sorted and separated")]
    fn adjacent_runs_rejected() {
        // Adjacent runs should have been merged by the caller.
        ActivePattern::from_runs(vec![(0, 5), (5, 2)]);
    }

    #[test]
    fn conflict_observed_duration_and_ongoing() {
        let c = Conflict {
            id: 0,
            prefix: "10.0.0.0/8".parse().unwrap(),
            owner: Asn::new(1),
            origins: vec![Asn::new(1), Asn::new(2)],
            cause: Cause::Misconfig,
            shape: Shape::Distinct,
            active: ActivePattern::contiguous(95, 10), // days 95..104
            aggregate: None,
        };
        assert_eq!(c.observed_duration(100), 5); // indices 95..=99
        assert_eq!(c.observed_duration(200), 10);
        assert!(c.ongoing_at(100)); // active at index 99
        assert!(!c.ongoing_at(200));
        assert!(!c.ongoing_at(95)); // last core index 94: not yet active
    }

    #[test]
    fn cause_validity_split() {
        assert!(Cause::ExchangePoint.is_valid_practice());
        assert!(Cause::ProviderTransition.is_valid_practice());
        assert!(!Cause::Misconfig.is_valid_practice());
        assert!(!Cause::MassFault1998.is_valid_practice());
        assert!(!Cause::FaultyAggregation.is_valid_practice());
    }
}
