//! Calibration targets derived from the paper, and the scale knob.
//!
//! ## Where the numbers come from
//!
//! Figure 4's rows are mutually consistent only under the reading
//! *duration = number of snapshot days observed (k), filters strict
//! `k > d`* (see DESIGN.md §2). Under that reading the cohort algebra
//! is fully determined by the paper:
//!
//! | constraint (paper) | value |
//! |---|---|
//! | total conflicts | 38 225 |
//! | E\[k\] over all | 30.9 → Σk ≈ 1 181 k day-observations |
//! | one-time (k = 1) | 13 730, of which 11 358 on 1998-04-07 |
//! | E\[k \| k>1\] | 47.7 (consistency check: (1 181 153 − 13 730)/24 495 ≈ 47.7 ✓) |
//! | k > 9 | 10 177 conflicts, E = 107.5 → Σ ≈ 1 094 k |
//! | k > 29 / k > 89 | E = 175.3 / 281.8 |
//! | k > 300 | 1 002 conflicts; max 1246; ~1 326 ongoing at cutoff |
//!
//! Solving the bucket means gives the cohort table in
//! [`Calibration::paper`]; `moas-core` re-measures everything and
//! EXPERIMENTS.md records the deltas.
//!
//! The daily baseline [`Calibration::baseline`] is piecewise-linear
//! through Figure 2's yearly medians (mid-year anchors, since the
//! median of a linear ramp over a year sits at mid-year).

use crate::window::StudyWindow;
use moas_net::{Date, DayIndex};
use moas_topology::graph::GrowthParams;
use moas_topology::prefixes::PlanParams;

/// One duration cohort of the generative model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cohort {
    /// Cohort label (used for RNG sub-streams and reports).
    pub name: &'static str,
    /// Number of conflicts (at scale 1.0).
    pub count: usize,
    /// Smallest observed duration (snapshot days).
    pub min_days: u32,
    /// Largest observed duration.
    pub max_days: u32,
    /// Target mean duration.
    pub mean_days: f64,
    /// Fraction of the cohort that is right-censored (still active at
    /// the cutoff — the paper's "ongoing" conflicts).
    pub censored_frac: f64,
    /// Fraction with an intermittent (non-contiguous) active pattern.
    pub intermittent_frac: f64,
}

/// All numeric targets of the generative model.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Background one-timers (k = 1) outside the incidents.
    pub one_timers: usize,
    /// Duration cohorts for k ≥ 2 background conflicts.
    pub cohorts: Vec<Cohort>,
    /// 1998-04-07 incident size (one-day conflicts by AS 8584).
    pub incident_1998_count: usize,
    /// 2001-04 incident: conflicts active per day offset from Apr 6.
    /// Decreasing profile; a prefix active on offset j is active on all
    /// earlier offsets (nested withdrawal of the leak).
    pub incident_2001_profile: [usize; 5],
    /// Exchange-point prefixes (all near-window-length conflicts).
    pub exchange_points: usize,
    /// Prefixes whose routes end in AS sets (excluded by §III).
    pub as_set_routes: usize,
    /// The single longest observed duration (paper: 1246 of 1279).
    pub longest_days: u32,
    /// Baseline anchors: (date, expected active conflicts).
    pub baseline_anchors: Vec<(Date, f64)>,
}

impl Calibration {
    /// The paper-scale calibration (see module docs for derivations).
    pub fn paper() -> Self {
        Calibration {
            one_timers: 1_643,
            cohorts: vec![
                Cohort {
                    name: "short",
                    count: 6_118,
                    min_days: 2,
                    max_days: 9,
                    mean_days: 6.3,
                    censored_frac: 0.0,
                    intermittent_frac: 0.05,
                },
                Cohort {
                    name: "medium",
                    count: 4_414,
                    min_days: 10,
                    max_days: 29,
                    mean_days: 19.0,
                    censored_frac: 0.01,
                    intermittent_frac: 0.12,
                },
                Cohort {
                    name: "long",
                    count: 2_706,
                    min_days: 30,
                    max_days: 89,
                    mean_days: 55.0,
                    censored_frac: 0.115,
                    intermittent_frac: 0.15,
                },
                Cohort {
                    name: "verylong",
                    count: 2_055,
                    min_days: 90,
                    max_days: 300,
                    mean_days: 165.0,
                    censored_frac: 0.225,
                    intermittent_frac: 0.15,
                },
                Cohort {
                    name: "persistent",
                    count: 972, // + 30 exchange points = 1002 with k > 300
                    min_days: 301,
                    max_days: 1_100,
                    mean_days: 500.0,
                    censored_frac: 0.50,
                    intermittent_frac: 0.10,
                },
            ],
            incident_1998_count: 11_357,
            incident_2001_profile: [8_930, 8_200, 7_300, 6_400, 5_532],
            exchange_points: 30,
            as_set_routes: 12,
            longest_days: 1_246,
            baseline_anchors: vec![
                (Date::ymd(1997, 11, 8), 600.0),
                (Date::ymd(1998, 7, 2), 683.0),
                (Date::ymd(1999, 7, 2), 810.5),
                (Date::ymd(2000, 7, 1), 951.0),
                (Date::ymd(2001, 4, 9), 1_294.0),
                (Date::ymd(2001, 8, 15), 1_448.0),
            ],
        }
    }

    /// Scales every cohort and incident by `scale` (for fast tests),
    /// keeping structure. Counts round down but stay ≥ 1 where the
    /// original was ≥ 1; the baseline is scaled linearly.
    pub fn scaled(&self, scale: f64) -> Calibration {
        if (scale - 1.0).abs() < f64::EPSILON {
            return self.clone();
        }
        let s = |n: usize| -> usize { ((n as f64 * scale).round() as usize).max(1) };
        Calibration {
            one_timers: s(self.one_timers),
            cohorts: self
                .cohorts
                .iter()
                .map(|c| Cohort {
                    count: s(c.count),
                    ..*c
                })
                .collect(),
            incident_1998_count: s(self.incident_1998_count),
            incident_2001_profile: {
                let mut p = [0usize; 5];
                for (i, v) in self.incident_2001_profile.iter().enumerate() {
                    p[i] = s(*v);
                }
                // Keep the nested (non-increasing) property after rounding.
                for i in 1..5 {
                    p[i] = p[i].min(p[i - 1]);
                }
                p
            },
            exchange_points: s(self.exchange_points),
            as_set_routes: s(self.as_set_routes),
            longest_days: self.longest_days,
            baseline_anchors: self
                .baseline_anchors
                .iter()
                .map(|(d, v)| (*d, v * scale))
                .collect(),
        }
    }

    /// The expected number of active conflicts on a day (piecewise
    /// linear through the anchors, clamped outside).
    pub fn baseline(&self, day: DayIndex) -> f64 {
        let anchors = &self.baseline_anchors;
        if anchors.is_empty() {
            return 0.0;
        }
        let x = day.0 as f64;
        let first = (anchors[0].0.day_index().0 as f64, anchors[0].1);
        if x <= first.0 {
            return first.1;
        }
        for pair in anchors.windows(2) {
            let (d0, v0) = (pair[0].0.day_index().0 as f64, pair[0].1);
            let (d1, v1) = (pair[1].0.day_index().0 as f64, pair[1].1);
            if x <= d1 {
                let t = (x - d0) / (d1 - d0).max(1.0);
                return v0 + t * (v1 - v0);
            }
        }
        anchors.last().map(|(_, v)| *v).unwrap_or(0.0)
    }

    /// Total background conflicts (everything outside the two
    /// incidents).
    pub fn background_total(&self) -> usize {
        self.one_timers + self.exchange_points + self.cohorts.iter().map(|c| c.count).sum::<usize>()
    }

    /// Total distinct conflicts including incidents — the paper's
    /// 38 225 at scale 1.0.
    pub fn grand_total(&self) -> usize {
        self.background_total() + self.incident_1998_count + self.incident_2001_profile[0]
    }
}

/// Top-level simulation parameters.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Master seed: every stream derives from it.
    pub seed: u64,
    /// Scale factor (1.0 = paper scale).
    pub scale: f64,
    /// Calibration targets (already scaled if `scale` ≠ 1).
    pub calibration: Calibration,
    /// Topology growth parameters.
    pub growth: GrowthParams,
    /// Prefix-plan parameters.
    pub plan: PlanParams,
}

impl SimParams {
    /// Paper-scale parameters with the default seed.
    pub fn paper() -> Self {
        SimParams {
            seed: 2001,
            scale: 1.0,
            calibration: Calibration::paper(),
            growth: GrowthParams::default(),
            plan: PlanParams::default(),
        }
    }

    /// A laptop-test configuration: a world shrunk by `scale`
    /// (topology, conflict counts, baseline — durations stay unscaled;
    /// they are calendar facts).
    pub fn test(scale: f64) -> Self {
        SimParams {
            seed: 2001,
            scale,
            calibration: Calibration::paper().scaled(scale),
            growth: GrowthParams::scaled(scale),
            plan: PlanParams::default(),
        }
    }

    /// Builds the study window for these parameters.
    pub fn window(&self) -> StudyWindow {
        StudyWindow::paper(&moas_net::rng::DetRng::new(self.seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_totals_match() {
        let c = Calibration::paper();
        // 38 225 total conflicts (paper §IV-A).
        assert_eq!(c.grand_total(), 38_225);
        // One-timers: 11 357 (incident) + 1 643 (background) + the
        // first-day-only slice of the 2001 incident = 13 730.
        let inc2001_one_timers = c.incident_2001_profile[0] - c.incident_2001_profile[1];
        assert_eq!(
            c.incident_1998_count + c.one_timers + inc2001_one_timers,
            13_730
        );
        // k > 300 cohort: persistent + exchange points = 1 002.
        assert_eq!(c.cohorts.last().unwrap().count + c.exchange_points, 1_002);
    }

    #[test]
    fn expected_duration_mass_close_to_paper() {
        // Σk should approximate 38 225 × 30.9 ≈ 1 181 k day-observations.
        let c = Calibration::paper();
        let mut sum = 0.0;
        sum += (c.incident_1998_count + c.one_timers) as f64; // k = 1
                                                              // 2001 incident: nested profile — day j count minus day j+1
                                                              // count gives the cohort with k = j+1.
        let p = c.incident_2001_profile;
        for j in 0..5 {
            let next = if j + 1 < 5 { p[j + 1] } else { 0 };
            sum += ((p[j] - next) * (j + 1)) as f64;
        }
        for co in &c.cohorts {
            sum += co.count as f64 * co.mean_days;
        }
        sum += c.exchange_points as f64 * 1_200.0; // near-window XPs
        let target = 38_225.0 * 30.9;
        let err = (sum - target).abs() / target;
        assert!(err < 0.05, "duration mass off by {:.1}%", err * 100.0);
    }

    #[test]
    fn baseline_hits_anchor_values() {
        let c = Calibration::paper();
        assert!((c.baseline(Date::ymd(1998, 7, 2).day_index()) - 683.0).abs() < 1.0);
        assert!((c.baseline(Date::ymd(2000, 7, 1).day_index()) - 951.0).abs() < 1.0);
        // Interpolation between anchors is monotone here.
        let a = c.baseline(Date::ymd(1999, 1, 1).day_index());
        assert!(683.0 < a && a < 810.5, "got {a}");
        // Clamps outside.
        assert_eq!(c.baseline(Date::ymd(1990, 1, 1).day_index()), 600.0);
        assert_eq!(c.baseline(Date::ymd(2005, 1, 1).day_index()), 1_448.0);
    }

    #[test]
    fn scaling_preserves_structure() {
        let c = Calibration::paper().scaled(0.01);
        assert!(c.grand_total() < 600);
        assert!(c.cohorts.iter().all(|co| co.count >= 1));
        // Nested incident profile preserved.
        for i in 1..5 {
            assert!(c.incident_2001_profile[i] <= c.incident_2001_profile[i - 1]);
        }
        // Baseline scaled too.
        assert!(c.baseline(Date::ymd(2000, 7, 1).day_index()) < 12.0);
    }

    #[test]
    fn scale_one_is_identity() {
        let a = Calibration::paper();
        let b = a.scaled(1.0);
        assert_eq!(a.grand_total(), b.grand_total());
        assert_eq!(a.cohorts, b.cohorts);
    }

    #[test]
    fn params_window_is_paper_window() {
        let p = SimParams::paper();
        let w = p.window();
        assert_eq!(w.core_len(), 1_279);
    }
}
