//! # moas-sim — the conflict generative model
//!
//! This crate is the synthetic stand-in for the real 1997–2001 routing
//! system's *behavior*: which prefixes conflicted, when, for how long,
//! and why. Everything the paper measures is produced by explicit
//! per-cause stochastic processes (§VI's taxonomy), not by replaying
//! the paper's numbers:
//!
//! * [`window`] — the study window: 1997-11-08 → 2001-07-18 with a
//!   deterministic 70-day archive-gap set (1279 snapshot days, matching
//!   the paper), extended to 2001-08-15 for the Figure 6 classification
//!   window.
//! * [`calibrate`] — the numeric targets derived from the paper
//!   (duration mixture solved from Figure 4's expectations, the daily
//!   baseline curve through Figure 2's yearly medians) and the scale
//!   knob for laptop-size test runs.
//! * [`conflict`] — conflict instances: cause, origin set, intended
//!   path shape, and the active-day pattern (possibly intermittent —
//!   the paper counts days in existence "regardless of whether the
//!   conflict was continuous").
//! * [`schedule`] — the generator: duration cohorts, start-day
//!   placement proportional to the baseline curve, right-censoring
//!   (the paper's 1326 still-ongoing conflicts), and the two scripted
//!   mass-fault incidents (1998-04-07 AS 8584; 2001-04-06/10 AS 15412
//!   via AS 3561).
//! * [`world`] — ties topology + prefix plan + conflicts together and
//!   answers per-day queries for the collector substrate.
//!
//! The generator is *calibrated, then measured*: `moas-core` analyzes
//! the produced tables with the paper's own methodology, and
//! EXPERIMENTS.md records how close the measured statistics land.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod conflict;
pub mod schedule;
pub mod window;
pub mod world;

pub use calibrate::{Calibration, SimParams};
pub use conflict::{ActivePattern, Cause, Conflict, Shape};
pub use window::StudyWindow;
pub use world::World;
