//! The conflict generator: cohorts → scheduled conflict instances.
//!
//! Every conflict gets (1) a duration drawn from its cohort's
//! power-transformed uniform (the exponent is solved so the cohort mean
//! matches Figure 4's algebra), (2) a start day drawn proportionally to
//! the baseline curve (so daily active counts track Figure 2's yearly
//! medians), (3) a prefix sampled without replacement from the
//! origination plan (conflicts are identified by prefix, §III — one
//! instance per prefix), and (4) cause/shape/origins per the §VI
//! taxonomy. Right-censored conflicts run through the cutoff — those
//! are the paper's ~1 326 "still ongoing" conflicts. The two mass
//! faults are scripted on their historical dates.

use crate::calibrate::{Cohort, SimParams};
use crate::conflict::{ActivePattern, Cause, Conflict, Shape};
use crate::window::{incidents, StudyWindow};
use moas_net::rng::DetRng;
use moas_net::{Asn, DayIndex, Ipv4Prefix};
use moas_topology::graph::{well_known, Tier, Topology};
use moas_topology::prefixes::{PrefixAllocator, PrefixPlan};
use std::collections::HashSet;

/// A route that ends in an AS set (excluded from MOAS analysis, §III:
/// "roughly 12 routes ended in AS sets").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsSetRoute {
    /// The aggregated prefix.
    pub prefix: Ipv4Prefix,
    /// The AS set it originates from (consistent across peers, §VI-D).
    pub set: Vec<Asn>,
    /// The aggregating AS announcing the route.
    pub via: Asn,
}

/// Everything the generator produces.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// All conflict instances, id = index.
    pub conflicts: Vec<Conflict>,
    /// The AS-set routes (present all window).
    pub as_set_routes: Vec<AsSetRoute>,
}

/// Samples a prefix (with its owner) alive at `day`, not yet used.
fn sample_unused_prefix(
    plan: &PrefixPlan,
    day: DayIndex,
    used: &mut HashSet<Ipv4Prefix>,
    rng: &mut DetRng,
) -> Option<(Ipv4Prefix, Asn)> {
    for _ in 0..200 {
        let a = plan.sample_alive(day, rng)?;
        if used.insert(a.prefix) {
            return Some((a.prefix, a.owner));
        }
    }
    // Dense usage: linear fallback scan from a random offset.
    let alive = plan.alive_at(day);
    if alive.is_empty() {
        return None;
    }
    let start = rng.below(alive.len() as u64) as usize;
    for i in 0..alive.len() {
        let a = &alive[(start + i) % alive.len()];
        if used.insert(a.prefix) {
            return Some((a.prefix, a.owner));
        }
    }
    None
}

/// Duration draw: `min + round((max-min) * u^alpha)` where `alpha` is
/// solved from the target mean (`E[u^alpha] = 1/(1+alpha)`).
fn draw_duration(c: &Cohort, rng: &mut DetRng) -> u32 {
    let min = c.min_days as f64;
    let max = c.max_days as f64;
    if max <= min {
        return c.min_days;
    }
    let alpha = ((max - min) / (c.mean_days - min) - 1.0).max(0.05);
    let u = rng.f64();
    let k = min + (max - min) * u.powf(alpha);
    (k.round() as u32).clamp(c.min_days, c.max_days)
}

/// Start-day placement: candidates drawn ∝ the baseline curve, final
/// choice by *deficit-greedy fill* — among the candidates, pick the
/// start whose covered days are most under the target curve. This
/// removes the boundary biases of pure density sampling (no pre-window
/// tail on the left, censored pile-up on the right) so daily active
/// counts track Figure 2's yearly medians.
struct StartSampler {
    /// Cumulative weight per core snapshot index (for candidate draws).
    cumulative: Vec<f64>,
    /// Target active count per snapshot index (core + extension).
    target: Vec<f64>,
    /// Accumulated active count per snapshot index.
    acc: Vec<f64>,
}

/// Candidate starts evaluated per conflict.
const PLACEMENT_CANDIDATES: usize = 12;

impl StartSampler {
    fn new(params: &SimParams, window: &StudyWindow) -> Self {
        let mut cumulative = Vec::with_capacity(window.core_len());
        let mut acc = 0.0;
        for day in window.core_days() {
            acc += params.calibration.baseline(*day).max(0.0);
            cumulative.push(acc);
        }
        let target: Vec<f64> = window
            .all_days()
            .iter()
            .map(|d| params.calibration.baseline(*d))
            .collect();
        StartSampler {
            cumulative,
            target,
            acc: vec![0.0; window.total_len()],
        }
    }

    /// Records a placed pattern so later placements see its load.
    fn commit(&mut self, pattern: &ActivePattern) {
        for idx in pattern.iter_days() {
            if (idx as usize) < self.acc.len() {
                self.acc[idx as usize] += 1.0;
            }
        }
    }

    /// Draws one candidate start in `[0, max_start]` ∝ baseline.
    fn draw_candidate(&self, max_start: usize, rng: &mut DetRng) -> u32 {
        let hi = max_start.min(self.cumulative.len() - 1);
        let total = self.cumulative[hi];
        let target = rng.f64() * total;
        let idx = self.cumulative[..=hi].partition_point(|&c| c < target);
        idx.min(hi) as u32
    }

    /// Surplus (positive = overfull) of the contiguous span
    /// `[start, start+len)` against the target curve.
    fn span_surplus(&self, start: u32, len: u32) -> f64 {
        let mut s = 0.0;
        let end = ((start + len) as usize).min(self.acc.len());
        for d in start as usize..end {
            s += self.acc[d] - self.target[d];
        }
        s / len.max(1) as f64
    }

    /// Picks the best of several candidate starts for a duration-`len`
    /// conflict: the one with the largest average deficit.
    fn place(&mut self, max_start: usize, len: u32, rng: &mut DetRng) -> u32 {
        let mut best_start = self.draw_candidate(max_start, rng);
        let mut best_score = self.span_surplus(best_start, len);
        for _ in 1..PLACEMENT_CANDIDATES {
            let cand = self.draw_candidate(max_start, rng);
            let score = self.span_surplus(cand, len);
            if score < best_score {
                best_score = score;
                best_start = cand;
            }
        }
        best_start
    }
}

/// Builds an intermittent pattern of `days` active snapshot days
/// starting at `start`, stretched by `stretch` (>1), capped at
/// `last_idx`. Runs alternate active/idle.
fn intermittent_pattern(
    start: u32,
    days: u32,
    stretch: f64,
    last_idx: u32,
    rng: &mut DetRng,
) -> ActivePattern {
    if days <= 2 {
        return ActivePattern::contiguous(start.min(last_idx), days.max(1));
    }
    let span = ((days as f64 * stretch) as u32).min(last_idx.saturating_sub(start) + 1);
    if span <= days {
        return ActivePattern::contiguous(start, days.min(last_idx - start + 1));
    }
    let idle_total = span - days;
    let run_count = (2 + rng.below(3)) as u32; // 2–4 runs
    let run_count = run_count.min(days);
    let mut runs = Vec::new();
    let mut remaining_active = days;
    let mut remaining_idle = idle_total;
    let mut pos = start;
    for r in 0..run_count {
        let runs_left = run_count - r;
        let active = if runs_left == 1 {
            remaining_active
        } else {
            let max_here = remaining_active - (runs_left - 1);
            1 + rng.below(max_here.max(1) as u64) as u32
        };
        runs.push((pos, active));
        remaining_active -= active;
        pos += active;
        if runs_left > 1 && remaining_idle > 0 {
            let idle = 1 + rng.below(remaining_idle as u64) as u32;
            pos += idle;
            remaining_idle -= idle;
        }
        if remaining_active == 0 {
            break;
        }
    }
    ActivePattern::from_runs(merge_adjacent(runs))
}

/// Merges adjacent runs (the generator can exhaust its idle budget and
/// emit back-to-back runs, which [`ActivePattern::from_runs`] rejects).
/// Runs are produced in order and never overlap, so day counts are
/// preserved.
fn merge_adjacent(runs: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(runs.len());
    for (s, l) in runs {
        if let Some(last) = out.last_mut() {
            if s <= last.0 + last.1 {
                let end = (s + l).max(last.0 + last.1);
                last.1 = end - last.0;
                continue;
            }
        }
        out.push((s, l));
    }
    out
}

/// A pattern spanning `[start, end]` with exactly `active` covered
/// days, the rest removed as scattered small gaps (for exchange-point
/// prefixes: present "most or all of the observation period").
fn spread_pattern(start: u32, end: u32, active: u32, rng: &mut DetRng) -> ActivePattern {
    let span = end - start + 1;
    let active = active.min(span);
    let gaps = span - active;
    if gaps == 0 {
        return ActivePattern::contiguous(start, span);
    }
    // Choose gap day positions (not at the very ends), then compress
    // the complement into runs.
    let mut gap_days: HashSet<u32> = HashSet::new();
    let mut guard = 0;
    while (gap_days.len() as u32) < gaps && guard < 20_000 {
        guard += 1;
        let g = start + 1 + rng.below((span - 2).max(1) as u64) as u32;
        gap_days.insert(g);
    }
    let mut runs: Vec<(u32, u32)> = Vec::new();
    let mut run_start: Option<u32> = None;
    for idx in start..=end {
        if gap_days.contains(&idx) {
            if let Some(s) = run_start.take() {
                runs.push((s, idx - s));
            }
        } else if run_start.is_none() {
            run_start = Some(idx);
        }
    }
    if let Some(s) = run_start {
        runs.push((s, end - s + 1));
    }
    ActivePattern::from_runs(runs)
}

/// Cause mixture per cohort: (cause, weight) rows.
fn cause_mix(cohort: &str) -> &'static [(Cause, f64)] {
    match cohort {
        "short" => &[
            (Cause::Misconfig, 0.55),
            (Cause::ProviderTransition, 0.35),
            (Cause::FaultyAggregation, 0.10),
        ],
        "medium" => &[
            (Cause::StaticMultihome, 0.30),
            (Cause::ProviderTransition, 0.25),
            (Cause::TrafficEngineering, 0.25),
            (Cause::Misconfig, 0.15),
            (Cause::PrivateAsMultihome, 0.05),
        ],
        "long" => &[
            (Cause::StaticMultihome, 0.40),
            (Cause::TrafficEngineering, 0.28),
            (Cause::PrivateAsMultihome, 0.17),
            (Cause::ProviderTransition, 0.10),
            (Cause::Misconfig, 0.05),
        ],
        "verylong" => &[
            (Cause::StaticMultihome, 0.45),
            (Cause::TrafficEngineering, 0.25),
            (Cause::PrivateAsMultihome, 0.20),
            (Cause::ProviderTransition, 0.08),
            (Cause::Misconfig, 0.02),
        ],
        "persistent" => &[
            (Cause::StaticMultihome, 0.50),
            (Cause::TrafficEngineering, 0.25),
            (Cause::PrivateAsMultihome, 0.25),
        ],
        _ => &[(Cause::Misconfig, 1.0)],
    }
}

fn draw_cause(cohort: &str, rng: &mut DetRng) -> Cause {
    let mix = cause_mix(cohort);
    let weights: Vec<f64> = mix.iter().map(|(_, w)| *w).collect();
    mix[rng.choose_weighted(&weights).unwrap_or(0)].0
}

fn draw_shape(cause: Cause, rng: &mut DetRng) -> Shape {
    match cause {
        Cause::TrafficEngineering => {
            // SplitView-heavy: OrigTranAS also arises *organically*
            // from static multi-homing (a provider originating its
            // customer's prefix sits on the customer's own path, which
            // the classifier correctly reads as origin+transit), so
            // the explicit OrigTran share stays small.
            if rng.chance(0.85) {
                Shape::SplitView
            } else {
                Shape::OrigTran
            }
        }
        Cause::StaticMultihome => {
            if rng.chance(0.15) {
                Shape::OrigTran
            } else {
                Shape::Distinct
            }
        }
        _ => Shape::Distinct,
    }
}

/// Picks a random AS alive at `day`, tier-weighted (edge-heavy),
/// excluding `not`.
fn random_alive_as(topo: &Topology, day: DayIndex, not: &[Asn], rng: &mut DetRng) -> Option<Asn> {
    for _ in 0..50 {
        let tier = match rng.choose_weighted(&[0.05, 0.25, 0.70]).unwrap_or(2) {
            0 => Tier::Core,
            1 => Tier::Transit,
            _ => Tier::Edge,
        };
        let alive = topo.alive_asns(day, Some(tier));
        if let Some(a) = rng.choose(&alive) {
            if !not.contains(a) {
                return Some(*a);
            }
        }
    }
    None
}

/// Picks a transit-or-core AS alive at `day`, excluding `not`.
fn random_transit(topo: &Topology, day: DayIndex, not: &[Asn], rng: &mut DetRng) -> Option<Asn> {
    for _ in 0..50 {
        let tier = if rng.chance(0.8) {
            Tier::Transit
        } else {
            Tier::Core
        };
        let alive = topo.alive_asns(day, Some(tier));
        if let Some(a) = rng.choose(&alive) {
            if !not.contains(a) {
                return Some(*a);
            }
        }
    }
    None
}

/// Origin set for a conflict, per cause semantics (§VI).
fn draw_origins(
    cause: Cause,
    shape: Shape,
    owner: Asn,
    day: DayIndex,
    topo: &Topology,
    rng: &mut DetRng,
) -> Vec<Asn> {
    let provider_of_owner = |rng: &mut DetRng| -> Option<Asn> {
        let provs = topo.neighbors_with(owner, moas_bgp::policy::Rel::Provider);
        rng.choose(&provs).copied()
    };
    match cause {
        Cause::StaticMultihome | Cause::TrafficEngineering => {
            // SplitView needs a second origin *off* the owner's own
            // provider chain (a provider origin sits on the owner's
            // path, which the classifier reads as OrigTranAS); the
            // other shapes use a provider of the owner.
            if shape == Shape::SplitView {
                let providers = topo.neighbors_with(owner, moas_bgp::policy::Rel::Provider);
                let mut exclude: Vec<Asn> = vec![owner];
                exclude.extend(providers);
                let q = random_transit(topo, day, &exclude, rng).unwrap_or(Asn::new(1));
                return vec![owner, q];
            }
            let p = provider_of_owner(rng)
                .or_else(|| random_transit(topo, day, &[owner], rng))
                .unwrap_or(owner);
            if p == owner {
                // Core owner with no provider: fall back to a transit.
                let q = random_transit(topo, day, &[owner], rng).unwrap_or(Asn::new(1));
                return match shape {
                    Shape::OrigTran => vec![q, owner],
                    _ => vec![owner, q],
                };
            }
            match shape {
                Shape::OrigTran => vec![p, owner],
                _ => vec![owner, p],
            }
        }
        Cause::PrivateAsMultihome | Cause::ProviderTransition => {
            // Two providers originate; the customer is invisible.
            let a = random_transit(topo, day, &[owner], rng).unwrap_or(Asn::new(2));
            let b = random_transit(topo, day, &[owner, a], rng).unwrap_or(Asn::new(3));
            vec![a, b]
        }
        Cause::Misconfig | Cause::FaultyAggregation => {
            let faulty = random_alive_as(topo, day, &[owner], rng).unwrap_or(Asn::new(4));
            vec![owner, faulty]
        }
        Cause::ExchangePoint => {
            let n = 2 + rng.below(3) as usize;
            let mut parts: Vec<Asn> = Vec::new();
            let mut guard = 0;
            while parts.len() < n && guard < 60 {
                guard += 1;
                if let Some(a) = random_transit(topo, day, &parts, rng) {
                    parts.push(a);
                }
            }
            if parts.len() < 2 {
                parts = vec![Asn::new(5), Asn::new(6)];
            }
            parts
        }
        Cause::MassFault1998 => vec![owner, well_known::FAULT_1998],
        Cause::MassFault2001 => vec![owner, well_known::FAULT_2001],
    }
}

/// Carves a covering aggregate (two bits shorter) for a faulty-
/// aggregation conflict, unless that exact prefix is already announced
/// by someone. The aggregate is reserved in `used` so no later conflict
/// lands on it.
fn carve_aggregate(specific: Ipv4Prefix, used: &mut HashSet<Ipv4Prefix>) -> Option<Ipv4Prefix> {
    if specific.len() < 10 {
        return None;
    }
    let covering = Ipv4Prefix::from_bits(specific.bits(), specific.len() - 2);
    if used.insert(covering) {
        Some(covering)
    } else {
        None
    }
}

/// Generates the full conflict schedule.
pub fn generate(
    params: &SimParams,
    window: &StudyWindow,
    topo: &Topology,
    plan: &PrefixPlan,
) -> Schedule {
    let root = DetRng::new(params.seed).substream("schedule");
    let cal = &params.calibration;
    let mut used: HashSet<Ipv4Prefix> = HashSet::new();
    let mut conflicts: Vec<Conflict> = Vec::new();
    let mut sampler = StartSampler::new(params, window);
    let core_last = (window.core_len() - 1) as u32;
    let total_last = (window.total_len() - 1) as u32;

    let push = |c: Conflict, conflicts: &mut Vec<Conflict>| {
        conflicts.push(c);
    };

    // ---- censored cohort conflicts (fixed placement: end at cutoff) --
    // Placed before the greedy pass so it can compensate around them.
    for cohort in &cal.cohorts {
        let mut rng = root.substream(cohort.name);
        let censored_count = (cohort.count as f64 * cohort.censored_frac).round() as usize;
        for i in 0..censored_count {
            let mut r = rng.substream_idx("c", i as u64);
            let k = draw_duration(cohort, &mut r);
            // Ends at the cutoff and continues through the extension:
            // observed-in-core = k.
            let start = core_last + 1 - k.min(core_last + 1);
            let len = total_last - start + 1;
            let pattern = ActivePattern::contiguous(start, len);
            let day = window.day_at(start as usize);
            let Some((prefix, owner)) = sample_unused_prefix(plan, day, &mut used, &mut rng) else {
                continue;
            };
            let cause = draw_cause(cohort.name, &mut r);
            let shape = draw_shape(cause, &mut r);
            let origins = draw_origins(cause, shape, owner, day, topo, &mut r);
            sampler.commit(&pattern);
            push(
                Conflict {
                    id: 0,
                    prefix,
                    owner,
                    origins,
                    cause,
                    shape,
                    active: pattern,
                    aggregate: None,
                },
                &mut conflicts,
            );
        }
    }

    // ---- exchange points (fixed: span nearly the whole window) -------
    {
        let rng = root.substream("exchange-points");
        let mut xp_alloc = PrefixAllocator::new();
        for i in 0..cal.exchange_points {
            let mut r = rng.substream_idx("xp", i as u64);
            let Some(prefix) = xp_alloc.alloc_exchange_point() else {
                break;
            };
            used.insert(prefix);
            // One pinned at the paper's maximum (1246 observed days);
            // the rest cover most of the window.
            let active_core = if i == 0 {
                cal.longest_days
            } else {
                1_050 + r.below(190) as u32
            };
            let active_core = active_core.min(core_last + 1);
            let start = r.below(3) as u32;
            // Spread active_core days over the core span, then run
            // through the extension (ongoing).
            let mut pat = spread_pattern(start, core_last, active_core, &mut r);
            // Extend the final run through the extension days.
            let mut runs = pat.runs().to_vec();
            if let Some(last) = runs.last_mut() {
                if last.0 + last.1 - 1 == core_last {
                    last.1 += total_last - core_last;
                }
            }
            pat = ActivePattern::from_runs(runs);
            let day = window.day_at(start as usize);
            let origins = draw_origins(
                Cause::ExchangePoint,
                Shape::Distinct,
                Asn::new(0),
                day,
                topo,
                &mut r,
            );
            let owner = origins[0];
            sampler.commit(&pat);
            push(
                Conflict {
                    id: 0,
                    prefix,
                    owner,
                    origins,
                    cause: Cause::ExchangePoint,
                    shape: Shape::Distinct,
                    active: pat,
                    aggregate: None,
                },
                &mut conflicts,
            );
        }
    }

    // ---- non-censored cohort conflicts + one-timers: deficit-greedy --
    // Draw durations first, then place longest-first so long conflicts
    // find room and short ones fill the remaining dips.
    struct Pending {
        cohort: &'static str,
        index: usize,
        k: u32,
        intermittent_frac: f64,
    }
    let mut pending: Vec<Pending> = Vec::new();
    for cohort in &cal.cohorts {
        let rng = root.substream(cohort.name);
        let censored_count = (cohort.count as f64 * cohort.censored_frac).round() as usize;
        for i in censored_count..cohort.count {
            let mut r = rng.substream_idx("c", i as u64);
            let k = draw_duration(cohort, &mut r);
            pending.push(Pending {
                cohort: cohort.name,
                index: i,
                k,
                intermittent_frac: cohort.intermittent_frac,
            });
        }
    }
    for i in 0..cal.one_timers {
        pending.push(Pending {
            cohort: "one-timers",
            index: i,
            k: 1,
            intermittent_frac: 0.0,
        });
    }
    // Longest first; deterministic tie-break by (cohort, index).
    pending.sort_by(|a, b| {
        b.k.cmp(&a.k)
            .then_with(|| a.cohort.cmp(b.cohort))
            .then_with(|| a.index.cmp(&b.index))
    });

    for p in &pending {
        let cohort_rng = root.substream(p.cohort);
        let mut r = cohort_rng.substream_idx("place", p.index as u64);
        let mut prefix_rng = cohort_rng.substream_idx("prefix", p.index as u64);
        let max_start = core_last.saturating_sub(p.k);
        let start = sampler.place(max_start as usize, p.k, &mut r);
        let pattern = if p.cohort != "one-timers" && r.chance(p.intermittent_frac) {
            let stretch = 1.2 + r.f64() * 0.8;
            intermittent_pattern(start, p.k, stretch, core_last, &mut r)
        } else {
            ActivePattern::contiguous(start, p.k)
        };
        let day = window.day_at(start as usize);
        let Some((prefix, owner)) = sample_unused_prefix(plan, day, &mut used, &mut prefix_rng)
        else {
            continue;
        };
        let cause = if p.cohort == "one-timers" {
            if r.chance(0.8) {
                Cause::Misconfig
            } else {
                Cause::FaultyAggregation
            }
        } else {
            draw_cause(p.cohort, &mut r)
        };
        let shape = draw_shape(cause, &mut r);
        let origins = draw_origins(cause, shape, owner, day, topo, &mut r);
        // Faulty aggregation additionally announces a covering
        // aggregate (a supernet two bits shorter), when one can be
        // carved without colliding with an existing announcement.
        let aggregate = if cause == Cause::FaultyAggregation {
            carve_aggregate(prefix, &mut used)
        } else {
            None
        };
        sampler.commit(&pattern);
        push(
            Conflict {
                id: 0,
                prefix,
                owner,
                origins,
                cause,
                shape,
                active: pattern,
                aggregate,
            },
            &mut conflicts,
        );
    }

    // ---- scripted incident: 1998-04-07, AS 8584 ----------------------
    {
        let mut rng = root.substream("incident-1998");
        let day = incidents::fault_1998().day_index();
        let idx = window
            .snapshot_index(day)
            .expect("1998-04-07 is a protected snapshot day") as u32;
        for i in 0..cal.incident_1998_count {
            let mut r = rng.substream_idx("i98", i as u64);
            let Some((prefix, owner)) = sample_unused_prefix(plan, day, &mut used, &mut rng) else {
                continue;
            };
            let origins = draw_origins(
                Cause::MassFault1998,
                Shape::Distinct,
                owner,
                day,
                topo,
                &mut r,
            );
            push(
                Conflict {
                    id: 0,
                    prefix,
                    owner,
                    origins,
                    cause: Cause::MassFault1998,
                    shape: Shape::Distinct,
                    active: ActivePattern::contiguous(idx, 1),
                    aggregate: None,
                },
                &mut conflicts,
            );
        }
    }

    // ---- scripted incident: 2001-04-06..10, AS 15412 via AS 3561 -----
    {
        let mut rng = root.substream("incident-2001");
        let day = incidents::fault_2001_start().day_index();
        let idx = window
            .snapshot_index(day)
            .expect("2001-04-06 is a protected snapshot day") as u32;
        let profile = cal.incident_2001_profile;
        for i in 0..profile[0] {
            let mut r = rng.substream_idx("i01", i as u64);
            // Nested withdrawal: prefix i stays for as many days as
            // there are profile entries exceeding i.
            let k = profile.iter().filter(|&&p| p > i).count() as u32;
            let Some((prefix, owner)) = sample_unused_prefix(plan, day, &mut used, &mut rng) else {
                continue;
            };
            let origins = draw_origins(
                Cause::MassFault2001,
                Shape::Distinct,
                owner,
                day,
                topo,
                &mut r,
            );
            push(
                Conflict {
                    id: 0,
                    prefix,
                    owner,
                    origins,
                    cause: Cause::MassFault2001,
                    shape: Shape::Distinct,
                    active: ActivePattern::contiguous(idx, k.max(1)),
                    aggregate: None,
                },
                &mut conflicts,
            );
        }
    }

    // Assign stable ids.
    for (i, c) in conflicts.iter_mut().enumerate() {
        c.id = i as u32;
    }

    // ---- AS-set routes (excluded from MOAS analysis) ------------------
    let mut as_set_routes = Vec::new();
    {
        let mut rng = root.substream("as-sets");
        let day = window.day_at(0);
        for _ in 0..cal.as_set_routes {
            let Some((prefix, owner)) = sample_unused_prefix(plan, day, &mut used, &mut rng) else {
                break;
            };
            let other = random_alive_as(topo, day, &[owner], &mut rng).unwrap_or(Asn::new(9));
            let via = random_transit(topo, day, &[owner, other], &mut rng).unwrap_or(Asn::new(10));
            let mut set = vec![owner, other];
            set.sort_unstable();
            set.dedup();
            as_set_routes.push(AsSetRoute { prefix, set, via });
        }
    }

    Schedule {
        conflicts,
        as_set_routes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moas_topology::graph::GrowthParams;
    use moas_topology::prefixes::PlanParams;

    fn small_schedule() -> (SimParams, StudyWindow, Schedule) {
        let params = SimParams::test(0.01);
        let window = params.window();
        let rng = DetRng::new(params.seed);
        let topo = Topology::grow(GrowthParams::tiny(), &rng);
        let plan = PrefixPlan::generate(&topo, &PlanParams::default(), &rng);
        let schedule = generate(&params, &window, &topo, &plan);
        (params, window, schedule)
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, _, a) = small_schedule();
        let (_, _, b) = small_schedule();
        assert_eq!(a.conflicts.len(), b.conflicts.len());
        for (x, y) in a.conflicts.iter().zip(&b.conflicts) {
            assert_eq!(x.prefix, y.prefix);
            assert_eq!(x.active, y.active);
            assert_eq!(x.origins, y.origins);
        }
        assert_eq!(a.as_set_routes, b.as_set_routes);
    }

    #[test]
    fn conflict_count_tracks_calibration() {
        let (params, _, s) = small_schedule();
        let target = params.calibration.grand_total();
        let got = s.conflicts.len();
        // Prefix exhaustion may drop a few in a tiny world.
        assert!(
            got as f64 > target as f64 * 0.9,
            "generated {got} of {target}"
        );
    }

    #[test]
    fn prefixes_are_unique_across_conflicts() {
        let (_, _, s) = small_schedule();
        let mut seen = HashSet::new();
        for c in &s.conflicts {
            assert!(seen.insert(c.prefix), "duplicate {}", c.prefix);
        }
        for r in &s.as_set_routes {
            assert!(seen.insert(r.prefix), "AS-set overlaps conflict");
        }
    }

    #[test]
    fn origins_are_distinct_and_at_least_two() {
        let (_, _, s) = small_schedule();
        for c in &s.conflicts {
            assert!(
                c.origins.len() >= 2,
                "conflict {} has {:?}",
                c.id,
                c.origins
            );
            let mut d = c.origins.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), c.origins.len(), "dup origins in {}", c.id);
        }
    }

    #[test]
    fn patterns_stay_in_window() {
        let (_, window, s) = small_schedule();
        let total_last = (window.total_len() - 1) as u32;
        for c in &s.conflicts {
            assert!(c.active.last() <= total_last, "conflict {} overruns", c.id);
        }
    }

    #[test]
    fn incident_days_spike() {
        let (params, window, s) = small_schedule();
        let idx98 = window
            .snapshot_index(incidents::fault_1998().day_index())
            .unwrap() as u32;
        let active98 = s
            .conflicts
            .iter()
            .filter(|c| c.active.is_active(idx98))
            .count();
        let cal = &params.calibration;
        assert!(
            active98 >= cal.incident_1998_count,
            "active on 1998-04-07: {active98} < {}",
            cal.incident_1998_count
        );
        // The incident conflicts are one-day only.
        for c in &s.conflicts {
            if c.cause == Cause::MassFault1998 {
                assert_eq!(c.active.total_days(), 1);
                assert!(c.origins.contains(&well_known::FAULT_1998));
            }
        }
    }

    #[test]
    fn incident_2001_is_nested() {
        let (_, window, s) = small_schedule();
        let start = window
            .snapshot_index(incidents::fault_2001_start().day_index())
            .unwrap() as u32;
        let fault_conflicts: Vec<&Conflict> = s
            .conflicts
            .iter()
            .filter(|c| c.cause == Cause::MassFault2001)
            .collect();
        assert!(!fault_conflicts.is_empty());
        for c in &fault_conflicts {
            assert_eq!(c.active.first(), start, "all start on Apr 6");
            assert!(c.active.total_days() <= 5);
            assert!(c.origins.contains(&well_known::FAULT_2001));
        }
        // Day counts are non-increasing over the 5 offsets.
        let day_count = |off: u32| {
            fault_conflicts
                .iter()
                .filter(|c| c.active.is_active(start + off))
                .count()
        };
        for off in 1..5 {
            assert!(day_count(off) <= day_count(off - 1));
        }
    }

    #[test]
    fn exchange_points_are_long_lived_and_ongoing() {
        let (params, window, s) = small_schedule();
        let xps: Vec<&Conflict> = s
            .conflicts
            .iter()
            .filter(|c| c.cause == Cause::ExchangePoint)
            .collect();
        assert_eq!(xps.len(), params.calibration.exchange_points);
        for c in &xps {
            let dur = c.observed_duration(window.core_len());
            assert!(
                dur as usize > window.core_len() * 3 / 4,
                "XP {} lasted only {dur}",
                c.prefix
            );
            assert!(c.ongoing_at(window.core_len()));
        }
        // The pinned longest duration exists.
        let max_dur = xps
            .iter()
            .map(|c| c.observed_duration(window.core_len()))
            .max()
            .unwrap();
        assert_eq!(max_dur, params.calibration.longest_days);
    }

    #[test]
    fn censored_conflicts_are_ongoing() {
        let (_, window, s) = small_schedule();
        let ongoing = s
            .conflicts
            .iter()
            .filter(|c| c.ongoing_at(window.core_len()))
            .count();
        assert!(ongoing > 0, "no ongoing conflicts generated");
    }

    #[test]
    fn shapes_follow_causes() {
        let (_, _, s) = small_schedule();
        for c in &s.conflicts {
            match c.cause {
                Cause::Misconfig | Cause::MassFault1998 | Cause::MassFault2001 => {
                    assert_eq!(c.shape, Shape::Distinct)
                }
                Cause::TrafficEngineering => {
                    assert_ne!(c.shape, Shape::Distinct)
                }
                _ => {}
            }
        }
        // Some split-view and orig-tran conflicts must exist.
        assert!(s.conflicts.iter().any(|c| c.shape == Shape::SplitView));
        assert!(s.conflicts.iter().any(|c| c.shape == Shape::OrigTran));
    }

    #[test]
    fn as_set_routes_generated() {
        let (params, _, s) = small_schedule();
        assert_eq!(s.as_set_routes.len(), params.calibration.as_set_routes);
        for r in &s.as_set_routes {
            assert!(r.set.len() >= 2);
        }
    }

    #[test]
    fn duration_draw_respects_bounds_and_mean() {
        let c = Cohort {
            name: "t",
            count: 0,
            min_days: 10,
            max_days: 29,
            mean_days: 19.0,
            censored_frac: 0.0,
            intermittent_frac: 0.0,
        };
        let mut rng = DetRng::new(3);
        let n = 20_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let k = draw_duration(&c, &mut rng);
            assert!((10..=29).contains(&k));
            sum += k as u64;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 19.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn spread_pattern_has_exact_active_days() {
        let mut rng = DetRng::new(5);
        let p = spread_pattern(0, 99, 80, &mut rng);
        assert_eq!(p.total_days(), 80);
        assert_eq!(p.first(), 0);
        assert_eq!(p.last(), 99);
        let q = spread_pattern(10, 19, 10, &mut rng);
        assert_eq!(q.total_days(), 10);
        assert_eq!(q.runs().len(), 1);
    }

    #[test]
    fn intermittent_pattern_preserves_days() {
        let mut rng = DetRng::new(8);
        for _ in 0..100 {
            let days = 5 + rng.below(50) as u32;
            let p = intermittent_pattern(100, days, 1.5, 2_000, &mut rng);
            assert_eq!(p.total_days(), days);
            assert_eq!(p.first(), 100);
        }
    }
}
