//! The study window: snapshot days, archive gaps, incident dates.
//!
//! The paper's window is stated as 1997-11-08 → 2001-07-18, which spans
//! 1349 calendar days, yet the paper counts **1279 days** of data and a
//! maximum possible duration of 1279 — real archives have gaps. We
//! model a deterministic 70-day gap set so both facts hold at once.
//! Section V's Figure 6 uses data through 2001-08-15; the window
//! carries that extension separately so duration statistics still stop
//! at the paper's cutoff.

use moas_net::rng::DetRng;
use moas_net::{Date, DayIndex};

/// Dates the gap generator must never remove (incidents and endpoints).
fn protected(day: DayIndex) -> bool {
    let protected_dates = [
        Date::ymd(1997, 11, 8),
        Date::ymd(1998, 4, 6),
        Date::ymd(1998, 4, 7),
        Date::ymd(1998, 4, 8),
        Date::ymd(2001, 7, 18),
    ];
    if protected_dates.iter().any(|d| d.day_index() == day) {
        return true;
    }
    // Keep everything from 2001-03-15 on intact: the April incident
    // ramp and the Figure 6 classification window need daily data.
    day >= Date::ymd(2001, 3, 15).day_index()
}

/// The observation window of the study.
#[derive(Debug, Clone)]
pub struct StudyWindow {
    start: Date,
    end: Date,
    extended_end: Date,
    /// Snapshot days in order (calendar days minus gaps, plus the
    /// extension days).
    days: Vec<DayIndex>,
    /// Number of snapshot days at or before `end` (the paper's 1279).
    core_len: usize,
}

impl StudyWindow {
    /// The paper's window with the canonical gap count (70), yielding
    /// 1279 core snapshot days.
    pub fn paper(rng: &DetRng) -> Self {
        Self::new(
            Date::ymd(1997, 11, 8),
            Date::ymd(2001, 7, 18),
            Date::ymd(2001, 8, 15),
            70,
            rng,
        )
    }

    /// A short window for unit tests (90 core days, no extension gap).
    pub fn test_window(rng: &DetRng) -> Self {
        Self::new(
            Date::ymd(2001, 1, 1),
            Date::ymd(2001, 3, 31),
            Date::ymd(2001, 4, 10),
            0,
            rng,
        )
    }

    /// Builds a window with `gap_count` missing days drawn
    /// deterministically from the un-protected part of the core range.
    pub fn new(start: Date, end: Date, extended_end: Date, gap_count: usize, rng: &DetRng) -> Self {
        assert!(start <= end && end <= extended_end);
        let mut rng = rng.substream("window-gaps");
        let s = start.day_index();
        let e = end.day_index();
        let xe = extended_end.day_index();

        let candidates: Vec<DayIndex> = (s.0..=e.0)
            .map(DayIndex)
            .filter(|d| !protected(*d))
            .collect();
        let picked = rng.sample_indices(candidates.len(), gap_count);
        let mut gaps: Vec<i64> = picked.iter().map(|&i| candidates[i].0).collect();
        gaps.sort_unstable();

        let mut days = Vec::with_capacity((xe.0 - s.0 + 1) as usize);
        let mut core_len = 0usize;
        for d in s.0..=xe.0 {
            if gaps.binary_search(&d).is_ok() {
                continue;
            }
            days.push(DayIndex(d));
            if d <= e.0 {
                core_len += 1;
            }
        }
        StudyWindow {
            start,
            end,
            extended_end,
            days,
            core_len,
        }
    }

    /// First day of the window.
    pub fn start(&self) -> Date {
        self.start
    }

    /// The paper's cutoff date (duration statistics stop here).
    pub fn end(&self) -> Date {
        self.end
    }

    /// The end of the Figure 6 extension.
    pub fn extended_end(&self) -> Date {
        self.extended_end
    }

    /// All snapshot days including the extension.
    pub fn all_days(&self) -> &[DayIndex] {
        &self.days
    }

    /// The core snapshot days (≤ `end`) — the paper's 1279 days.
    pub fn core_days(&self) -> &[DayIndex] {
        &self.days[..self.core_len]
    }

    /// Number of core snapshot days.
    pub fn core_len(&self) -> usize {
        self.core_len
    }

    /// Total number of snapshot days including the extension.
    pub fn total_len(&self) -> usize {
        self.days.len()
    }

    /// Whether `day` is a snapshot day (core or extension).
    pub fn has_snapshot(&self, day: DayIndex) -> bool {
        self.days.binary_search(&day).is_ok()
    }

    /// The position of `day` in the snapshot sequence, if present.
    pub fn snapshot_index(&self, day: DayIndex) -> Option<usize> {
        self.days.binary_search(&day).ok()
    }

    /// The snapshot day at sequence position `idx`.
    pub fn day_at(&self, idx: usize) -> DayIndex {
        self.days[idx]
    }

    /// Snapshot positions of a calendar year's days within the core
    /// window (used for yearly medians).
    pub fn core_positions_in_year(&self, year: i32) -> Vec<usize> {
        self.core_days()
            .iter()
            .enumerate()
            .filter(|(_, d)| d.date().year() == year)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Incident dates from §VI-E.
pub mod incidents {
    use moas_net::Date;

    /// AS 8584 falsely originates ~11k prefixes.
    pub fn fault_1998() -> Date {
        Date::ymd(1998, 4, 7)
    }

    /// First day of the AS 15412 leak (paper: "on April 6th, AS 15412
    /// suddenly originated thousands of prefixes").
    pub fn fault_2001_start() -> Date {
        Date::ymd(2001, 4, 6)
    }

    /// Last day of the leak's large footprint (5532 conflicts with
    /// (3561, 15412) out of 6627 that day).
    pub fn fault_2001_end() -> Date {
        Date::ymd(2001, 4, 10)
    }

    /// The 1997 AS 7007 incident (predates the window; referenced as
    /// prior art).
    pub fn fault_1997() -> Date {
        Date::ymd(1997, 4, 25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_window() -> StudyWindow {
        StudyWindow::paper(&DetRng::new(2001))
    }

    #[test]
    fn paper_window_has_1279_core_days() {
        let w = paper_window();
        assert_eq!(w.core_len(), 1279);
        // 1349 calendar days − 70 gaps = 1279.
        assert_eq!(w.start().days_until(&w.end()) + 1, 1349);
    }

    #[test]
    fn extension_days_present() {
        let w = paper_window();
        let ext = w.total_len() - w.core_len();
        // 2001-07-19 .. 2001-08-15 = 28 days, all protected from gaps.
        assert_eq!(ext, 28);
    }

    #[test]
    fn gaps_are_deterministic_per_seed() {
        let a = StudyWindow::paper(&DetRng::new(5));
        let b = StudyWindow::paper(&DetRng::new(5));
        assert_eq!(a.all_days(), b.all_days());
        let c = StudyWindow::paper(&DetRng::new(6));
        assert_ne!(a.all_days(), c.all_days());
    }

    #[test]
    fn incident_days_are_snapshot_days() {
        let w = paper_window();
        assert!(w.has_snapshot(incidents::fault_1998().day_index()));
        for d in incidents::fault_2001_start().iter_to(incidents::fault_2001_end()) {
            assert!(w.has_snapshot(d.day_index()), "missing {d}");
        }
        assert!(w.has_snapshot(w.start().day_index()));
        assert!(w.has_snapshot(w.end().day_index()));
    }

    #[test]
    fn snapshot_index_roundtrip() {
        let w = paper_window();
        for idx in [0usize, 1, 100, 1278, w.total_len() - 1] {
            let d = w.day_at(idx);
            assert_eq!(w.snapshot_index(d), Some(idx));
        }
    }

    #[test]
    fn non_snapshot_day_is_reported() {
        let w = paper_window();
        // Find a gap: a calendar day in the core range missing from
        // the snapshot list.
        let s = w.start().day_index().0;
        let e = w.end().day_index().0;
        let gap = (s..=e).map(DayIndex).find(|d| !w.has_snapshot(*d));
        let gap = gap.expect("70 gaps must exist");
        assert_eq!(w.snapshot_index(gap), None);
    }

    #[test]
    fn days_are_strictly_increasing() {
        let w = paper_window();
        for pair in w.all_days().windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn year_positions_partition_core() {
        let w = paper_window();
        let total: usize = [1997, 1998, 1999, 2000, 2001]
            .iter()
            .map(|&y| w.core_positions_in_year(y).len())
            .sum();
        assert_eq!(total, w.core_len());
        // 1998 has at most 365 snapshot days.
        assert!(w.core_positions_in_year(1998).len() <= 365);
        assert!(w.core_positions_in_year(1996).is_empty());
    }

    #[test]
    fn test_window_shape() {
        let w = StudyWindow::test_window(&DetRng::new(1));
        assert_eq!(w.core_len(), 90);
        assert_eq!(w.total_len(), 100);
    }
}
