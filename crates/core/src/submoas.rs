//! SubMOAS analysis: conflicts hidden from exact-prefix detection.
//!
//! The paper identifies conflicts **by prefix only** (§III) and notes
//! faulty aggregation (§VI-E) as a cause it cannot fully see: an AS
//! announcing an *aggregate* that covers space originated elsewhere
//! never collides with the victims' exact prefixes, so the exact-match
//! detector stays silent. This module is the natural extension (the
//! basis of later sub-prefix-hijack detection systems): find pairs
//! where a covering prefix and a covered prefix are originated by
//! completely disjoint AS sets.
//!
//! This is the one analysis in the workspace that genuinely needs the
//! radix trie — exact-match hash maps cannot answer covering queries
//! (see the `exact_lookup` vs `relational_queries` ablation bench).

use crate::detect::TableSource;
use moas_net::trie::RadixTrie;
use moas_net::{Asn, Ipv4Prefix, Origin};
use serde::Serialize;

/// A covering/covered origin disagreement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SubMoasPair {
    /// The more-specific prefix.
    pub specific: Ipv4Prefix,
    /// Its origins (sorted).
    pub specific_origins: Vec<Asn>,
    /// The nearest covering prefix announced with disjoint origins.
    pub covering: Ipv4Prefix,
    /// The covering prefix's origins (sorted).
    pub covering_origins: Vec<Asn>,
}

/// Summary counters for one day's subMOAS scan.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SubMoasReport {
    /// Pairs with disjoint origin sets (the suspicious class).
    pub pairs: Vec<SubMoasPair>,
    /// Covered prefixes whose covering prefix shares ≥1 origin — the
    /// benign aggregation pattern (provider aggregates own space).
    pub consistent_covers: usize,
    /// Distinct prefixes scanned.
    pub prefixes: usize,
}

/// Scans a table for subMOAS pairs.
///
/// For every announced v4 prefix, the *nearest* strictly-covering
/// announced prefix is examined: if the two origin sets are disjoint,
/// the pair is reported. Only the nearest cover is considered — a /24
/// inside a /20 inside a /16 yields at most one pair for the /24,
/// against the /20 (chains would double-count the same event).
pub fn detect_submoas(source: &impl TableSource) -> SubMoasReport {
    // Origins per prefix (v4 only — the study's address family).
    let mut trie: RadixTrie<Ipv4Prefix, Vec<Asn>> = RadixTrie::new();
    source.for_each_route(&mut |prefix, _session, path| {
        let moas_net::Prefix::V4(p4) = prefix else {
            return;
        };
        if let Origin::Single(origin) = path.origin() {
            let slot = trie.get_or_insert_with(p4, Vec::new);
            if !slot.contains(&origin) {
                slot.push(origin);
            }
        }
    });

    let mut report = SubMoasReport {
        prefixes: trie.len(),
        ..SubMoasReport::default()
    };
    let entries: Vec<(Ipv4Prefix, Vec<Asn>)> = trie.iter().map(|(p, o)| (p, o.clone())).collect();
    for (specific, mut specific_origins) in entries {
        // Nearest strict cover: the longest match on the parent.
        let Some(parent) = specific.supernet() else {
            continue;
        };
        let Some((covering, cover_origins)) = trie.longest_match(&parent) else {
            continue;
        };
        // longest_match(parent) can still return `specific`'s own
        // supernet chain only; it can never return `specific` itself
        // because parent is strictly shorter.
        debug_assert!(covering.len() < specific.len());
        let mut covering_origins = cover_origins.clone();
        let disjoint = !specific_origins
            .iter()
            .any(|o| covering_origins.contains(o));
        if disjoint {
            specific_origins.sort_unstable();
            covering_origins.sort_unstable();
            report.pairs.push(SubMoasPair {
                specific,
                specific_origins,
                covering,
                covering_origins,
            });
        } else {
            report.consistent_covers += 1;
        }
    }
    report.pairs.sort_by_key(|p| (p.specific, p.covering));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use moas_bgp::{PeerInfo, TableSnapshot};
    use moas_net::{Date, Prefix};
    use std::net::Ipv4Addr;

    fn snap(routes: &[(&str, &str)]) -> TableSnapshot {
        let mut t = TableSnapshot::new(Date::ymd(2001, 1, 1));
        let p0 = t.add_peer(PeerInfo::v4(Ipv4Addr::new(10, 0, 0, 1), Asn::new(100)));
        for (prefix, path) in routes {
            t.push_path(p0, prefix.parse().unwrap(), path.parse().unwrap());
        }
        t
    }

    #[test]
    fn disjoint_cover_is_flagged() {
        let report = detect_submoas(&snap(&[
            ("10.1.2.0/24", "100 7"),
            ("10.1.0.0/18", "100 666"), // different origin covers it
        ]));
        assert_eq!(report.pairs.len(), 1);
        let p = &report.pairs[0];
        assert_eq!(p.specific.to_string(), "10.1.2.0/24");
        assert_eq!(p.covering.to_string(), "10.1.0.0/18");
        assert_eq!(p.specific_origins, vec![Asn::new(7)]);
        assert_eq!(p.covering_origins, vec![Asn::new(666)]);
        assert_eq!(report.consistent_covers, 0);
    }

    #[test]
    fn shared_origin_cover_is_benign() {
        let report = detect_submoas(&snap(&[
            ("10.1.2.0/24", "100 7"),
            ("10.1.0.0/18", "100 9 7"), // same origin: provider aggregate
        ]));
        assert!(report.pairs.is_empty());
        assert_eq!(report.consistent_covers, 1);
    }

    #[test]
    fn unrelated_prefixes_no_pairs() {
        let report = detect_submoas(&snap(&[
            ("10.1.2.0/24", "100 7"),
            ("192.0.2.0/24", "100 9"),
        ]));
        assert!(report.pairs.is_empty());
        assert_eq!(report.prefixes, 2);
    }

    #[test]
    fn only_nearest_cover_counts() {
        let report = detect_submoas(&snap(&[
            ("10.1.2.0/24", "100 7"),
            ("10.1.0.0/20", "100 8"), // nearest cover (disjoint)
            ("10.0.0.0/8", "100 9"),  // outer cover (also disjoint, must not duplicate)
        ]));
        // /24 vs /20, and /20 vs /8 — each specific pairs with its
        // nearest cover only.
        assert_eq!(report.pairs.len(), 2);
        assert_eq!(report.pairs[0].covering.to_string(), "10.0.0.0/8");
        assert_eq!(report.pairs[0].specific.to_string(), "10.1.0.0/20");
        assert_eq!(report.pairs[1].covering.to_string(), "10.1.0.0/20");
        assert_eq!(report.pairs[1].specific.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn multi_origin_prefixes_use_origin_sets() {
        // The covering prefix is itself a MOAS conflict; overlap with
        // ANY origin of the specific is benign.
        let report = detect_submoas(&snap(&[
            ("10.1.2.0/24", "100 7"),
            ("10.1.2.0/24", "100 12"), // (same session in test — fine)
            ("10.1.0.0/18", "100 12"),
        ]));
        assert!(report.pairs.is_empty());
        assert_eq!(report.consistent_covers, 1);
    }

    #[test]
    fn v6_routes_are_ignored() {
        let mut t = snap(&[("10.1.2.0/24", "100 7")]);
        t.push_path(
            0,
            "2001:db8::/32".parse::<Prefix>().unwrap(),
            "100 9".parse().unwrap(),
        );
        let report = detect_submoas(&t);
        assert_eq!(report.prefixes, 1);
    }

    #[test]
    fn empty_table() {
        let report = detect_submoas(&snap(&[]));
        assert!(report.pairs.is_empty());
        assert_eq!(report.prefixes, 0);
    }
}
