//! Invalid-conflict identification — the paper's §VII future work.
//!
//! Two mechanisms, both descendants of what later shipped in systems
//! like PHAS, ARTEMIS and BGPalerter:
//!
//! * [`OriginProfiler`] — learns how many prefixes each AS normally
//!   originates (exponentially weighted) and raises an
//!   [`Anomaly::OriginSurge`] when an AS suddenly originates far more
//!   (the AS 8584 and AS 15412 signatures: "AS 15412 normally
//!   originates only 5 prefixes; on April 6th it suddenly originated
//!   thousands").
//! * [`MoasMonitor`] — tracks the stable origin set per prefix and
//!   raises [`Anomaly::NewOrigin`] when a previously unseen origin
//!   appears, unless allow-listed (operator-confirmed multi-homing).
//!
//! The detector sees only routing data; ground truth is used solely by
//! the evaluation harness to score it.

use crate::detect::DayObservation;
use moas_net::{Asn, Date, Prefix};
use serde::Serialize;
use std::collections::{HashMap, HashSet};

/// An alarm raised by the detector.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Anomaly {
    /// An AS originated far more conflicted prefixes than its profile.
    OriginSurge {
        /// The surging AS.
        asn: Asn,
        /// Conflicted prefixes it originated today.
        today: u32,
        /// Its smoothed historical involvement.
        baseline: f64,
        /// The day.
        date: Date,
    },
    /// A prefix gained an origin never seen before.
    NewOrigin {
        /// The prefix.
        prefix: Prefix,
        /// The new origin.
        origin: Asn,
        /// The day.
        date: Date,
    },
}

/// Configuration for the origin profiler.
#[derive(Debug, Clone, Copy)]
pub struct ProfilerConfig {
    /// EWMA smoothing factor for the per-AS baseline.
    pub alpha: f64,
    /// Multiplicative surge threshold over the baseline.
    pub surge_factor: f64,
    /// Absolute minimum involvement to consider a surge (suppresses
    /// noise from tiny counts).
    pub min_count: u32,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            alpha: 0.1,
            surge_factor: 10.0,
            min_count: 20,
        }
    }
}

/// One EWMA smoothing step: `(1 - alpha) * baseline + alpha * value`.
/// The update shared by the per-AS profiler and [`EwmaSurge`].
pub fn ewma_step(baseline: f64, alpha: f64, value: f64) -> f64 {
    (1.0 - alpha) * baseline + alpha * value
}

/// The §VII surge test shared by the per-AS profiler and
/// [`EwmaSurge`]: `value` breaches when it exceeds
/// `max(baseline, 1) * surge_factor`. The `max(…, 1)` floor keeps a
/// near-zero baseline from flagging every small uptick.
pub fn surge_breach(baseline: f64, value: f64, surge_factor: f64) -> bool {
    value > baseline.max(1.0) * surge_factor
}

/// Configuration for a scalar [`EwmaSurge`] detector.
#[derive(Debug, Clone, Copy)]
pub struct SurgeConfig {
    /// EWMA smoothing factor for the baseline.
    pub alpha: f64,
    /// Multiplicative surge threshold over the baseline.
    pub surge_factor: f64,
    /// Absolute minimum value to consider a surge (suppresses noise
    /// from tiny values — the scalar analogue of
    /// [`ProfilerConfig::min_count`]).
    pub min_value: f64,
}

impl Default for SurgeConfig {
    fn default() -> Self {
        SurgeConfig {
            alpha: 0.1,
            surge_factor: 10.0,
            min_value: 20.0,
        }
    }
}

/// The paper's §VII EWMA surge detector over a single scalar series —
/// exactly the [`OriginProfiler`] machinery (test-before-update
/// against `max(baseline, 1) * surge_factor`, first observation
/// priming the baseline at `alpha * value`) with the per-AS map
/// replaced by one baseline. This is what the operational alerting
/// layer runs over its own metrics: a feed-lag spike or ingest-rate
/// collapse is the same statistical object as an origin surge.
#[derive(Debug, Clone)]
pub struct EwmaSurge {
    config: SurgeConfig,
    baseline: Option<f64>,
}

impl EwmaSurge {
    /// A detector with no baseline yet (first observation primes it).
    pub fn new(config: SurgeConfig) -> Self {
        EwmaSurge {
            config,
            baseline: None,
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &SurgeConfig {
        &self.config
    }

    /// The smoothed baseline (0 until primed).
    pub fn baseline(&self) -> f64 {
        self.baseline.unwrap_or(0.0)
    }

    /// Whether `value` breaches right now, *without* advancing the
    /// baseline — the hysteresis hook: an alert engine freezes the
    /// baseline while a rule is pending/firing so an ongoing anomaly
    /// cannot absorb itself into normality.
    pub fn breach(&self, value: f64) -> bool {
        value >= self.config.min_value
            && surge_breach(self.baseline(), value, self.config.surge_factor)
    }

    /// Advances the baseline one EWMA step (priming it on the first
    /// call, mirroring the profiler's `or_insert(alpha * count)`).
    pub fn advance(&mut self, value: f64) {
        self.baseline = Some(match self.baseline {
            Some(b) => ewma_step(b, self.config.alpha, value),
            None => self.config.alpha * value,
        });
    }

    /// Tests then advances — the profiler's test-before-update order,
    /// so a surge does not immediately absorb itself.
    pub fn observe(&mut self, value: f64) -> bool {
        let breach = self.breach(value);
        self.advance(value);
        breach
    }
}

/// Learns per-AS conflict-involvement baselines and flags surges.
#[derive(Debug, Clone)]
pub struct OriginProfiler {
    config: ProfilerConfig,
    baseline: HashMap<Asn, f64>,
}

impl OriginProfiler {
    /// Creates a profiler.
    pub fn new(config: ProfilerConfig) -> Self {
        OriginProfiler {
            config,
            baseline: HashMap::new(),
        }
    }

    /// Feeds one day's observation; returns any surge anomalies.
    /// The baseline is updated *after* testing, so a surge does not
    /// immediately absorb itself.
    pub fn observe(&mut self, obs: &DayObservation) -> Vec<Anomaly> {
        let date = obs.date.unwrap_or(Date::ymd(1970, 1, 1));
        let today = crate::causes::involvement_by_origin(obs);
        self.observe_counts(date, &today)
    }

    /// Feeds one day's per-AS involvement counts directly — the entry
    /// point for sharded pipelines that merge per-shard involvement
    /// (integer sums, so cross-shard aggregation is exact) before the
    /// profiler sees the day. [`OriginProfiler::observe`] is this with
    /// the counts derived from a full [`DayObservation`].
    pub fn observe_counts(&mut self, date: Date, today: &HashMap<Asn, u32>) -> Vec<Anomaly> {
        let mut anomalies = Vec::new();
        for (&asn, &count) in today {
            let base = self.baseline.get(&asn).copied().unwrap_or(0.0);
            if count >= self.config.min_count
                && surge_breach(base, count as f64, self.config.surge_factor)
            {
                anomalies.push(Anomaly::OriginSurge {
                    asn,
                    today: count,
                    baseline: base,
                    date,
                });
            }
        }
        // EWMA update (ASes absent today decay toward zero).
        let alpha = self.config.alpha;
        for (asn, base) in self.baseline.iter_mut() {
            let today_count = today.get(asn).copied().unwrap_or(0) as f64;
            *base = ewma_step(*base, alpha, today_count);
        }
        for (&asn, &count) in today {
            self.baseline.entry(asn).or_insert(alpha * count as f64);
        }
        anomalies.sort_by_key(|a| match a {
            Anomaly::OriginSurge { today, asn, .. } => (std::cmp::Reverse(*today), asn.value()),
            _ => (std::cmp::Reverse(0), 0),
        });
        anomalies
    }

    /// Current baseline for an AS.
    pub fn baseline_of(&self, asn: Asn) -> f64 {
        self.baseline.get(&asn).copied().unwrap_or(0.0)
    }
}

/// Tracks stable origin sets per prefix and flags new origins.
#[derive(Debug, Clone, Default)]
pub struct MoasMonitor {
    /// Known (accepted) origins per prefix.
    known: HashMap<Prefix, HashSet<Asn>>,
    /// Operator allowlist: (prefix, origin) pairs never alarmed.
    allowlist: HashSet<(Prefix, Asn)>,
    /// Days a prefix must keep an origin before it is auto-accepted.
    accept_after: u32,
    /// Pending origins: (prefix, origin) → consecutive days seen.
    pending: HashMap<(Prefix, Asn), u32>,
}

impl MoasMonitor {
    /// Creates a monitor that auto-accepts an origin after it persists
    /// `accept_after` days (0 = first sighting is immediately known —
    /// alarms still fire on that first day).
    pub fn new(accept_after: u32) -> Self {
        MoasMonitor {
            accept_after,
            ..MoasMonitor::default()
        }
    }

    /// Adds an allowlist entry (operator-confirmed multi-homing).
    pub fn allow(&mut self, prefix: Prefix, origin: Asn) {
        self.allowlist.insert((prefix, origin));
    }

    /// Feeds one day's observation; returns new-origin alarms.
    pub fn observe(&mut self, obs: &DayObservation) -> Vec<Anomaly> {
        let date = obs.date.unwrap_or(Date::ymd(1970, 1, 1));
        let mut alarms = Vec::new();
        for c in &obs.conflicts {
            let known = self.known.entry(c.prefix).or_default();
            for &origin in &c.origins {
                if known.contains(&origin) || self.allowlist.contains(&(c.prefix, origin)) {
                    continue;
                }
                let days = self.pending.entry((c.prefix, origin)).or_insert(0);
                if *days == 0 {
                    alarms.push(Anomaly::NewOrigin {
                        prefix: c.prefix,
                        origin,
                        date,
                    });
                }
                *days += 1;
                if *days > self.accept_after {
                    known.insert(origin);
                    self.pending.remove(&(c.prefix, origin));
                }
            }
        }
        alarms
    }

    /// Number of (prefix, origin) pairs accepted as stable.
    pub fn known_pairs(&self) -> usize {
        self.known.values().map(HashSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::PrefixConflict;
    use moas_net::AsPath;

    fn obs(date: Date, conflicts: &[(&str, &[u32])]) -> DayObservation {
        let conflicts = conflicts
            .iter()
            .map(|(p, origins)| {
                let paths: Vec<(u16, AsPath)> = origins
                    .iter()
                    .enumerate()
                    .map(|(i, o)| (i as u16, format!("{} {o}", 100 + i).parse().unwrap()))
                    .collect();
                PrefixConflict {
                    prefix: p.parse().unwrap(),
                    origins: origins.iter().map(|&o| Asn::new(o)).collect(),
                    paths,
                }
            })
            .collect();
        DayObservation {
            date: Some(date),
            conflicts,
            as_set_prefixes: vec![],
            total_prefixes: 0,
            empty_path_routes: 0,
            total_routes: 0,
        }
    }

    fn mass_fault_day(date: Date, faulty: u32, n: usize) -> DayObservation {
        let conflicts: Vec<(String, Vec<u32>)> = (0..n)
            .map(|i| {
                (
                    format!("10.{}.{}.0/24", i / 256, i % 256),
                    vec![faulty, 1000 + i as u32],
                )
            })
            .collect();
        let borrowed: Vec<(&str, &[u32])> = conflicts
            .iter()
            .map(|(p, o)| (p.as_str(), o.as_slice()))
            .collect();
        obs(date, &borrowed)
    }

    #[test]
    fn profiler_flags_mass_fault() {
        let mut prof = OriginProfiler::new(ProfilerConfig::default());
        // Quiet days: AS 8584 involved in 2 conflicts.
        for day in 0..10 {
            let o = obs(
                Date::ymd(1998, 3, 1).plus_days(day),
                &[("10.0.0.0/24", &[8584, 7]), ("10.0.1.0/24", &[8584, 9])],
            );
            let alarms = prof.observe(&o);
            assert!(alarms.is_empty(), "quiet day {day} alarmed: {alarms:?}");
        }
        // The spike: 500 conflicts involving 8584.
        let spike = mass_fault_day(Date::ymd(1998, 4, 7), 8584, 500);
        let alarms = prof.observe(&spike);
        assert!(alarms.iter().any(|a| matches!(
            a,
            Anomaly::OriginSurge { asn, .. } if *asn == Asn::new(8584)
        )));
        // The victim origins (each involved once) must NOT alarm.
        assert!(alarms.iter().all(|a| match a {
            Anomaly::OriginSurge { asn, .. } => *asn == Asn::new(8584),
            _ => true,
        }));
    }

    #[test]
    fn profiler_ignores_cold_start_small_counts() {
        let mut prof = OriginProfiler::new(ProfilerConfig::default());
        let o = obs(Date::ymd(1998, 1, 1), &[("10.0.0.0/24", &[5, 7])]);
        assert!(prof.observe(&o).is_empty(), "min_count must suppress");
    }

    #[test]
    fn profiler_baseline_learns_and_decays() {
        let mut prof = OriginProfiler::new(ProfilerConfig {
            alpha: 0.5,
            ..ProfilerConfig::default()
        });
        let o = obs(Date::ymd(1998, 1, 1), &[("10.0.0.0/24", &[5, 7])]);
        prof.observe(&o);
        let b1 = prof.baseline_of(Asn::new(5));
        assert!(b1 > 0.0);
        // A day without AS 5 decays its baseline.
        let quiet = obs(Date::ymd(1998, 1, 2), &[("10.0.1.0/24", &[8, 9])]);
        prof.observe(&quiet);
        assert!(prof.baseline_of(Asn::new(5)) < b1);
    }

    #[test]
    fn repeated_surge_absorbs_into_baseline() {
        // A persistent high level stops alarming once learned.
        let mut prof = OriginProfiler::new(ProfilerConfig {
            alpha: 0.5,
            surge_factor: 5.0,
            min_count: 10,
        });
        let mut alarm_days = 0;
        for day in 0..10 {
            let spike = mass_fault_day(Date::ymd(1998, 1, 1).plus_days(day), 8584, 100);
            if !prof.observe(&spike).is_empty() {
                alarm_days += 1;
            }
        }
        assert!(alarm_days <= 3, "alarmed {alarm_days} days; should absorb");
    }

    #[test]
    fn monitor_alarms_once_per_new_origin() {
        let mut mon = MoasMonitor::new(2);
        let day1 = obs(Date::ymd(2001, 4, 6), &[("192.0.2.0/24", &[7, 15412])]);
        let alarms1 = mon.observe(&day1);
        assert_eq!(alarms1.len(), 2, "both origins are new on day 1");
        let day2 = obs(Date::ymd(2001, 4, 7), &[("192.0.2.0/24", &[7, 15412])]);
        assert!(mon.observe(&day2).is_empty(), "no repeat alarms");
    }

    #[test]
    fn monitor_accepts_persistent_origins() {
        let mut mon = MoasMonitor::new(2);
        for day in 0..4 {
            let o = obs(
                Date::ymd(2001, 1, 1).plus_days(day),
                &[("192.0.2.0/24", &[7, 9])],
            );
            mon.observe(&o);
        }
        assert_eq!(mon.known_pairs(), 2);
        // Re-appearance after acceptance: silent.
        let again = obs(Date::ymd(2001, 2, 1), &[("192.0.2.0/24", &[7, 9])]);
        assert!(mon.observe(&again).is_empty());
    }

    /// The scalar detector must be the profiler's machinery exactly:
    /// feeding one AS's counts through both yields identical breach
    /// decisions and baselines.
    #[test]
    fn ewma_surge_matches_profiler_on_one_series() {
        let cfg = ProfilerConfig::default();
        let mut profiler = OriginProfiler::new(cfg);
        let mut scalar = EwmaSurge::new(SurgeConfig {
            alpha: cfg.alpha,
            surge_factor: cfg.surge_factor,
            min_value: cfg.min_count as f64,
        });
        let asn = Asn::new(42);
        for (day, count) in [5u32, 6, 5, 400, 7, 5].iter().enumerate() {
            let mut today = HashMap::new();
            today.insert(asn, *count);
            let date = Date::ymd(2001, 1, 1).plus_days(day as i64);
            let profiler_alarm = !profiler.observe_counts(date, &today).is_empty();
            let scalar_alarm = scalar.observe(*count as f64);
            assert_eq!(
                profiler_alarm, scalar_alarm,
                "day {day} count {count}: breach decisions must agree"
            );
            let diff = (profiler.baseline_of(asn) - scalar.baseline()).abs();
            assert!(diff < 1e-12, "baselines must track exactly, diff {diff}");
        }
    }

    /// Frozen-baseline hysteresis: `breach` alone never advances, so a
    /// sustained anomaly cannot absorb itself (unlike `observe`, which
    /// keeps the profiler's absorb-into-baseline behavior).
    #[test]
    fn ewma_surge_breach_does_not_advance() {
        let mut s = EwmaSurge::new(SurgeConfig::default());
        for _ in 0..5 {
            s.observe(5.0);
        }
        let base = s.baseline();
        for _ in 0..50 {
            assert!(s.breach(400.0), "frozen baseline keeps breaching");
        }
        assert_eq!(s.baseline(), base, "breach() must not move the baseline");
        // observe() absorbs, eventually un-breaching — the profiler's
        // repeated_surge_absorbs_into_baseline behavior.
        let mut absorbed = s.clone();
        for _ in 0..50 {
            absorbed.observe(400.0);
        }
        assert!(!absorbed.breach(400.0), "observe() absorbs the surge");
    }

    #[test]
    fn monitor_respects_allowlist() {
        let mut mon = MoasMonitor::new(5);
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        mon.allow(p, Asn::new(9));
        let o = obs(Date::ymd(2001, 1, 1), &[("192.0.2.0/24", &[7, 9])]);
        let alarms = mon.observe(&o);
        assert_eq!(alarms.len(), 1);
        assert!(matches!(
            &alarms[0],
            Anomaly::NewOrigin { origin, .. } if *origin == Asn::new(7)
        ));
    }
}
