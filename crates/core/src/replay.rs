//! Update-stream replay: reconstruct table state from BGP4MP records.
//!
//! A table dump shows one day; the update stream shows every moment in
//! between. [`StreamReplayer`] maintains one Adj-RIB-In per peer
//! session, applies announcements and withdrawals as they arrive, and
//! can materialize the current table for MOAS detection at any point —
//! which is how a *continuous* monitor (Huston's bi-hourly counts in
//! §II, or a modern ARTEMIS-style alarm pipeline) would consume this
//! library, as opposed to the paper's daily-snapshot methodology.

use crate::detect::{detect, DayObservation};
use moas_bgp::message::BgpMessage;
use moas_bgp::rib::AdjRibIn;
use moas_bgp::{PeerInfo, TableSnapshot};
use moas_mrt::record::{MrtBody, MrtRecord};
use moas_net::{Asn, Date, Prefix};
use std::collections::BTreeMap;
use std::net::{IpAddr, Ipv4Addr};

/// Counters over a replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// UPDATE messages applied.
    pub updates: u64,
    /// Prefix announcements applied.
    pub announcements: u64,
    /// Prefix withdrawals applied.
    pub withdrawals: u64,
    /// Withdrawals for prefixes the session never announced.
    pub spurious_withdrawals: u64,
    /// Non-UPDATE BGP4MP records (state changes, keepalives) seen.
    pub other_records: u64,
}

/// One route-level instruction a BGP4MP UPDATE record encodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteInstruction {
    /// Announce (or implicitly replace) the session's route.
    Announce {
        /// The announced prefix.
        prefix: Prefix,
        /// The route the record's attributes describe for it.
        route: moas_bgp::Route,
    },
    /// Withdraw the session's route for a prefix.
    Withdraw {
        /// The withdrawn prefix.
        prefix: Prefix,
    },
}

/// Extracts what one MRT record does at the route level: the peer
/// session it belongs to, and its withdrawals (first, matching RFC
/// 4271 UPDATE processing) then announcements. Returns `None` for
/// anything that is not a BGP4MP UPDATE.
///
/// This is the single definition of "what a record changes" shared by
/// the batch [`StreamReplayer`] and the streaming `moas-monitor`
/// engine — keeping session keying, ordering and path defaulting from
/// drifting apart between the two pipelines.
pub fn record_instructions(record: &MrtRecord) -> Option<((IpAddr, Asn), Vec<RouteInstruction>)> {
    let MrtBody::Bgp4mpMessage(m) = &record.body else {
        return None;
    };
    let BgpMessage::Update(u) = &m.message else {
        return None;
    };
    let session = (m.header.peer_addr, m.header.peer_as);
    let mut instructions = Vec::new();
    for prefix in u.all_withdrawn() {
        instructions.push(RouteInstruction::Withdraw { prefix });
    }
    for prefix in u.all_announced() {
        instructions.push(RouteInstruction::Announce {
            prefix,
            route: u.attrs.to_route(prefix),
        });
    }
    Some((session, instructions))
}

/// One route-level state change produced by applying an update — the
/// incremental per-prefix delta a streaming consumer (such as
/// `moas-monitor`) keys its bookkeeping on, exposed here so batch and
/// streaming share one definition of "what changed".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteDelta {
    /// The session the change happened on.
    pub session: (IpAddr, Asn),
    /// The prefix whose route changed.
    pub prefix: Prefix,
    /// What happened to the route.
    pub kind: DeltaKind,
}

/// The kind of change a [`RouteDelta`] describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaKind {
    /// The session announced a route for a prefix it had none for.
    Announced,
    /// The session replaced its route (implicit withdraw + announce).
    /// Carries whether the origin AS changed — the only replacement
    /// MOAS detection can observe.
    Replaced {
        /// True iff the new path's origin differs from the old one's.
        origin_changed: bool,
    },
    /// The session withdrew its route.
    Withdrawn,
}

/// Reconstructs per-session RIBs from snapshots and update streams.
#[derive(Debug, Default)]
pub struct StreamReplayer {
    ribs: BTreeMap<(IpAddr, Asn), AdjRibIn>,
    stats: ReplayStats,
}

impl StreamReplayer {
    /// An empty replayer (no sessions).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replay counters so far.
    pub fn stats(&self) -> &ReplayStats {
        &self.stats
    }

    /// Number of sessions with state.
    pub fn session_count(&self) -> usize {
        self.ribs.len()
    }

    /// Total routes currently held across sessions.
    pub fn route_count(&self) -> usize {
        self.ribs.values().map(AdjRibIn::len).sum()
    }

    /// Seeds state from a full table snapshot (a day's dump).
    pub fn seed(&mut self, snap: &TableSnapshot) {
        self.ribs.clear();
        for e in &snap.entries {
            let peer = &snap.peers[e.peer_idx as usize];
            self.ribs
                .entry((peer.addr, peer.asn))
                .or_default()
                .announce(e.route.clone());
        }
        // Register peers that announced nothing.
        for p in &snap.peers {
            self.ribs.entry((p.addr, p.asn)).or_default();
        }
    }

    /// Applies one MRT record (BGP4MP updates mutate state; everything
    /// else is counted and ignored).
    pub fn apply(&mut self, record: &MrtRecord) {
        self.apply_with_deltas(record);
    }

    /// Applies one MRT record and reports the route-level deltas it
    /// caused (spurious withdrawals produce no delta).
    pub fn apply_with_deltas(&mut self, record: &MrtRecord) -> Vec<RouteDelta> {
        let Some((session, instructions)) = record_instructions(record) else {
            self.stats.other_records += 1;
            return Vec::new();
        };
        self.stats.updates += 1;
        let rib = self.ribs.entry(session).or_default();
        let mut deltas = Vec::new();
        for instruction in instructions {
            match instruction {
                RouteInstruction::Withdraw { prefix } => {
                    if rib.withdraw(&prefix).is_some() {
                        self.stats.withdrawals += 1;
                        deltas.push(RouteDelta {
                            session,
                            prefix,
                            kind: DeltaKind::Withdrawn,
                        });
                    } else {
                        self.stats.spurious_withdrawals += 1;
                    }
                }
                RouteInstruction::Announce { prefix, route } => {
                    let new_origin = route.path.origin();
                    let kind = match rib.announce(route) {
                        Some(old) => DeltaKind::Replaced {
                            origin_changed: old.path.origin() != new_origin,
                        },
                        None => DeltaKind::Announced,
                    };
                    deltas.push(RouteDelta {
                        session,
                        prefix,
                        kind,
                    });
                    self.stats.announcements += 1;
                }
            }
        }
        deltas
    }

    /// Applies a whole stream in order.
    pub fn apply_all<'a, I: IntoIterator<Item = &'a MrtRecord>>(&mut self, records: I) {
        for r in records {
            self.apply(r);
        }
    }

    /// Materializes the current table as a snapshot dated `date`.
    pub fn table(&self, date: Date) -> TableSnapshot {
        let mut snap = TableSnapshot::new(date);
        for ((addr, asn), rib) in &self.ribs {
            let bgp_id = match addr {
                IpAddr::V4(a) => *a,
                IpAddr::V6(_) => Ipv4Addr::UNSPECIFIED,
            };
            let idx = snap.add_peer(PeerInfo {
                addr: *addr,
                bgp_id,
                asn: *asn,
            });
            for route in rib.iter() {
                snap.push(idx, route.clone());
            }
        }
        snap
    }

    /// Detects MOAS conflicts in the *current* state — the continuous-
    /// monitoring primitive.
    pub fn detect_now(&self, date: Date) -> DayObservation {
        detect(&self.table(date))
    }

    /// The route one session currently holds for a prefix.
    pub fn route_of(&self, addr: IpAddr, asn: Asn, prefix: &Prefix) -> Option<&moas_bgp::Route> {
        self.ribs.get(&(addr, asn))?.get(prefix)
    }
}

#[cfg(test)]
mod delta_tests {
    use super::tests::update_record;
    use super::*;
    use std::net::Ipv4Addr;

    const P1: (Ipv4Addr, u32) = (Ipv4Addr::new(10, 0, 0, 1), 701);

    #[test]
    fn announce_replace_withdraw_deltas() {
        let mut r = StreamReplayer::new();
        let d = r.apply_with_deltas(&update_record(P1, &[("192.0.2.0/24", "701 7")], &[]));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, DeltaKind::Announced);

        let d = r.apply_with_deltas(&update_record(P1, &[("192.0.2.0/24", "701 9 7")], &[]));
        assert_eq!(
            d[0].kind,
            DeltaKind::Replaced {
                origin_changed: false
            }
        );

        let d = r.apply_with_deltas(&update_record(P1, &[("192.0.2.0/24", "701 9")], &[]));
        assert_eq!(
            d[0].kind,
            DeltaKind::Replaced {
                origin_changed: true
            }
        );

        let d = r.apply_with_deltas(&update_record(P1, &[], &["192.0.2.0/24"]));
        assert_eq!(d[0].kind, DeltaKind::Withdrawn);

        // Spurious withdrawal: counted, no delta.
        let d = r.apply_with_deltas(&update_record(P1, &[], &["192.0.2.0/24"]));
        assert!(d.is_empty());
        assert_eq!(r.stats().spurious_withdrawals, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moas_bgp::attrs::Attrs;
    use moas_bgp::message::UpdateMsg;
    use moas_mrt::bgp4mp::{Bgp4mpMessage, PeeringHeader};

    pub(super) fn update_record(
        peer: (Ipv4Addr, u32),
        announced: &[(&str, &str)],
        withdrawn: &[&str],
    ) -> MrtRecord {
        let header = PeeringHeader {
            peer_as: Asn::new(peer.1),
            local_as: Asn::new(6447),
            if_index: 0,
            peer_addr: IpAddr::V4(peer.0),
            local_addr: IpAddr::V4(Ipv4Addr::new(198, 32, 162, 250)),
        };
        // One record per distinct path for simplicity in tests.
        assert!(announced.len() <= 1);
        let (attrs, announced_prefixes) = match announced.first() {
            Some((prefix, path)) => (
                Attrs::announcement(path.parse().unwrap(), peer.0),
                vec![prefix.parse().unwrap()],
            ),
            None => (Attrs::default(), vec![]),
        };
        MrtRecord {
            timestamp: 0,
            body: MrtBody::Bgp4mpMessage(Bgp4mpMessage {
                header,
                message: BgpMessage::Update(UpdateMsg {
                    withdrawn: withdrawn.iter().map(|p| p.parse().unwrap()).collect(),
                    attrs,
                    announced: announced_prefixes,
                }),
                as4: false,
            }),
        }
    }

    const P1: (Ipv4Addr, u32) = (Ipv4Addr::new(10, 0, 0, 1), 701);
    const P2: (Ipv4Addr, u32) = (Ipv4Addr::new(10, 0, 0, 2), 1239);

    #[test]
    fn announce_then_detect_conflict() {
        let mut r = StreamReplayer::new();
        r.apply(&update_record(P1, &[("192.0.2.0/24", "701 7")], &[]));
        let obs = r.detect_now(Date::ymd(2001, 1, 1));
        assert_eq!(obs.conflict_count(), 0);
        r.apply(&update_record(P2, &[("192.0.2.0/24", "1239 9")], &[]));
        let obs = r.detect_now(Date::ymd(2001, 1, 1));
        assert_eq!(obs.conflict_count(), 1);
        assert_eq!(r.route_count(), 2);
        assert_eq!(r.session_count(), 2);
    }

    #[test]
    fn withdrawal_resolves_conflict() {
        let mut r = StreamReplayer::new();
        r.apply(&update_record(P1, &[("192.0.2.0/24", "701 7")], &[]));
        r.apply(&update_record(P2, &[("192.0.2.0/24", "1239 9")], &[]));
        r.apply(&update_record(P2, &[], &["192.0.2.0/24"]));
        let obs = r.detect_now(Date::ymd(2001, 1, 1));
        assert_eq!(obs.conflict_count(), 0);
        assert_eq!(r.stats().withdrawals, 1);
    }

    #[test]
    fn implicit_replacement_updates_path() {
        let mut r = StreamReplayer::new();
        r.apply(&update_record(P1, &[("192.0.2.0/24", "701 7")], &[]));
        r.apply(&update_record(P1, &[("192.0.2.0/24", "701 9 7")], &[]));
        assert_eq!(r.route_count(), 1, "implicit withdraw of the old path");
        let route = r
            .route_of(
                IpAddr::V4(P1.0),
                Asn::new(P1.1),
                &"192.0.2.0/24".parse().unwrap(),
            )
            .unwrap();
        assert_eq!(route.path, "701 9 7".parse().unwrap());
    }

    #[test]
    fn spurious_withdrawals_counted() {
        let mut r = StreamReplayer::new();
        r.apply(&update_record(P1, &[], &["203.0.113.0/24"]));
        assert_eq!(r.stats().spurious_withdrawals, 1);
        assert_eq!(r.stats().withdrawals, 0);
    }

    #[test]
    fn seed_then_table_roundtrip() {
        let mut snap = TableSnapshot::new(Date::ymd(2001, 1, 1));
        let i1 = snap.add_peer(PeerInfo::v4(P1.0, Asn::new(P1.1)));
        let i2 = snap.add_peer(PeerInfo::v4(P2.0, Asn::new(P2.1)));
        snap.push_path(i1, "10.0.0.0/8".parse().unwrap(), "701 7".parse().unwrap());
        snap.push_path(i2, "10.0.0.0/8".parse().unwrap(), "1239 7".parse().unwrap());
        let mut r = StreamReplayer::new();
        r.seed(&snap);
        let out = r.table(snap.date);
        assert_eq!(out.len(), snap.len());
        assert_eq!(out.distinct_prefixes(), snap.distinct_prefixes());
        // Re-seeding replaces state, never accumulates.
        r.seed(&snap);
        assert_eq!(r.route_count(), 2);
    }

    #[test]
    fn non_update_records_are_counted() {
        use moas_mrt::bgp4mp::Bgp4mpStateChange;
        let mut r = StreamReplayer::new();
        r.apply(&MrtRecord {
            timestamp: 0,
            body: MrtBody::Bgp4mpStateChange(Bgp4mpStateChange {
                header: PeeringHeader {
                    peer_as: Asn::new(701),
                    local_as: Asn::new(6447),
                    if_index: 0,
                    peer_addr: IpAddr::V4(P1.0),
                    local_addr: IpAddr::V4(Ipv4Addr::new(198, 32, 162, 250)),
                },
                old_state: 5,
                new_state: 6,
                as4: false,
            }),
        });
        assert_eq!(r.stats().other_records, 1);
        assert_eq!(r.stats().updates, 0);
    }
}
