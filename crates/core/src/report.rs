//! Rendering: aligned text tables, CSV, JSON, and ASCII charts for the
//! figures harness and EXPERIMENTS.md artifacts.

use serde::Serialize;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders an aligned text table.
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+{:-<1$}", "", w + 2);
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, "| {h:<w$} ");
    }
    out.push_str("|\n");
    sep(&mut out);
    let empty = String::new();
    for row in rows {
        for (i, w) in widths.iter().enumerate().take(cols) {
            let cell = row.get(i).unwrap_or(&empty);
            let _ = write!(out, "| {cell:>w$} ");
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Renders CSV with minimal quoting (fields containing commas, quotes
/// or newlines are quoted; quotes doubled).
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    fn field(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| field(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Pretty-printed JSON for any serializable artifact.
pub fn json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
}

/// Writes an artifact file, creating parent directories.
pub fn write_artifact(path: &Path, content: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, content)
}

/// A crude ASCII chart of a series (down-sampled to `width` columns,
/// `height` rows; linear y scale). Good enough to eyeball Fig. 1's
/// shape in a terminal.
pub fn ascii_chart(values: &[f64], width: usize, height: usize) -> String {
    if values.is_empty() || width == 0 || height == 0 {
        return String::new();
    }
    // Down-sample by bucket max (spikes must stay visible).
    let bucket = values.len().div_ceil(width);
    let cols: Vec<f64> = values
        .chunks(bucket)
        .map(|c| c.iter().copied().fold(f64::MIN, f64::max))
        .collect();
    let max = cols.iter().copied().fold(f64::MIN, f64::max).max(1.0);
    let mut rows: Vec<String> = Vec::with_capacity(height);
    for r in 0..height {
        let threshold = max * (height - r) as f64 / height as f64;
        let mut line = String::with_capacity(cols.len());
        for &v in &cols {
            line.push(if v >= threshold { '█' } else { ' ' });
        }
        rows.push(format!("{:>10.0} |{}", threshold, line));
    }
    let mut out = rows.join("\n");
    let _ = write!(out, "\n{:>10} +{}", 0, "-".repeat(cols.len()));
    out
}

/// A log-scale ASCII scatter for the duration histogram (Fig. 3 uses a
/// log y axis).
pub fn ascii_log_hist(pairs: &[(u32, u32)], width: usize, height: usize) -> String {
    if pairs.is_empty() || width == 0 || height == 0 {
        return String::new();
    }
    let max_x = pairs.iter().map(|(x, _)| *x).max().unwrap_or(1).max(1);
    let max_y = pairs.iter().map(|(_, y)| *y).max().unwrap_or(1).max(1) as f64;
    let log_max = max_y.ln();
    let mut grid = vec![vec![' '; width]; height];
    for &(x, y) in pairs {
        let cx = ((x as f64 / max_x as f64) * (width - 1) as f64) as usize;
        let ly = (y as f64).ln().max(0.0);
        let cy = if log_max <= 0.0 {
            height - 1
        } else {
            height - 1 - ((ly / log_max) * (height - 1) as f64) as usize
        };
        grid[cy][cx] = '*';
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{max_y:>9.0}")
        } else if r == height - 1 {
            format!("{:>9}", 1)
        } else {
            " ".repeat(9)
        };
        let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
    }
    let _ = write!(out, "{:>9} +{}", "", "-".repeat(width));
    let _ = write!(
        out,
        "\n{:>9}  0{:>w$}",
        "",
        max_x,
        w = width.saturating_sub(1)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = text_table(
            &["year", "median"],
            &[
                vec!["1998".into(), "683".into()],
                vec!["1999".into(), "810.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        // Borders + header + 2 rows = 6 lines.
        assert_eq!(lines.len(), 6);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "ragged table:\n{t}");
        assert!(t.contains("| year "));
        assert!(t.contains("810.5"));
    }

    #[test]
    fn table_handles_short_rows() {
        let t = text_table(&["a", "b"], &[vec!["1".into()]]);
        assert!(t.contains("| 1 |"));
    }

    #[test]
    fn csv_quotes_when_needed() {
        let out = csv(
            &["name", "note"],
            &[vec!["a,b".into(), "say \"hi\"".into()]],
        );
        assert_eq!(out, "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn json_renders() {
        #[derive(Serialize)]
        struct S {
            x: u32,
        }
        assert!(json(&S { x: 5 }).contains("\"x\": 5"));
    }

    #[test]
    fn ascii_chart_shows_spike() {
        let mut values = vec![10.0; 100];
        values[50] = 1000.0;
        let chart = ascii_chart(&values, 50, 10);
        assert!(chart.contains('█'));
        // The top row contains exactly the spike column.
        let top = chart.lines().next().unwrap();
        assert_eq!(top.matches('█').count(), 1);
    }

    #[test]
    fn ascii_chart_empty_inputs() {
        assert_eq!(ascii_chart(&[], 10, 5), "");
        assert_eq!(ascii_chart(&[1.0], 0, 5), "");
    }

    #[test]
    fn log_hist_renders_points() {
        let h = ascii_log_hist(&[(1, 10_000), (100, 100), (1000, 1)], 60, 12);
        assert!(h.matches('*').count() >= 3);
    }

    #[test]
    fn artifacts_written() {
        let path = std::env::temp_dir().join("moas-report-test/x/table.txt");
        write_artifact(&path, "hello").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello");
        std::fs::remove_file(&path).ok();
    }
}
