//! Accumulation of daily observations across the study window.
//!
//! The timeline is the bridge from per-day detection to the paper's
//! longitudinal statistics: per-prefix observed-day counts (§IV-B
//! durations count days in existence, continuous or not, same ASes or
//! not), daily conflict counts (Fig. 1), and daily class/mask-length
//! histograms (Figs. 5 and 6).

use crate::classify::{classify, ConflictClass};
use crate::detect::DayObservation;
use moas_net::{Asn, Date, Prefix};
use serde::Serialize;
use std::collections::HashMap;

/// Per-day aggregates.
#[derive(Debug, Clone, Serialize)]
pub struct DailyStats {
    /// The snapshot date.
    pub date: Date,
    /// Number of MOAS conflicts observed.
    pub conflict_count: u32,
    /// Conflicts per §V class (indexed by [`ConflictClass::index`]).
    pub class_counts: [u32; 4],
    /// Conflicts per prefix length (index = mask length 0–32; IPv6
    /// lengths > 32 are clamped into the last bucket for this v4-era
    /// reproduction).
    pub masklen_counts: Vec<u32>,
    /// Prefixes excluded for AS-set origins.
    pub as_set_count: u32,
    /// Distinct prefixes in the table that day.
    pub total_prefixes: u32,
    /// Total routes scanned.
    pub total_routes: u64,
}

/// Longitudinal record for one conflicted prefix.
#[derive(Debug, Clone, Serialize)]
pub struct PrefixRecord {
    /// Days observed in conflict within the core window — the paper's
    /// duration.
    pub core_days: u32,
    /// Days observed including the extension window.
    pub total_days: u32,
    /// First snapshot index observed.
    pub first_idx: u32,
    /// Last snapshot index observed.
    pub last_idx: u32,
    /// Union of conflicting origins over the whole window.
    pub origins: Vec<Asn>,
    /// Prefix length.
    pub masklen: u8,
}

/// The accumulated analysis over a study window.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// The snapshot dates, by position.
    dates: Vec<Date>,
    /// Number of core (≤ cutoff) snapshot days.
    core_len: usize,
    /// Per-day stats, by position (`None` = not yet recorded).
    daily: Vec<Option<DailyStats>>,
    /// Per-prefix longitudinal records.
    prefixes: HashMap<Prefix, PrefixRecord>,
}

impl Timeline {
    /// Creates an empty timeline for a window described by its
    /// snapshot dates and core length.
    pub fn new(dates: Vec<Date>, core_len: usize) -> Self {
        assert!(core_len <= dates.len());
        Timeline {
            daily: vec![None; dates.len()],
            dates,
            core_len,
            prefixes: HashMap::new(),
        }
    }

    /// Number of core snapshot days.
    pub fn core_len(&self) -> usize {
        self.core_len
    }

    /// All snapshot dates.
    pub fn dates(&self) -> &[Date] {
        &self.dates
    }

    /// Records one day's observation at snapshot position `idx`.
    /// Recording the same position twice replaces the daily stats but
    /// would double-count durations — callers drive each day once.
    pub fn record(&mut self, idx: usize, obs: &DayObservation) {
        assert!(idx < self.dates.len(), "index {idx} out of window");
        let core = idx < self.core_len;
        let mut stats = DailyStats {
            date: self.dates[idx],
            conflict_count: obs.conflicts.len() as u32,
            class_counts: [0; 4],
            masklen_counts: vec![0; 33],
            as_set_count: obs.as_set_prefixes.len() as u32,
            total_prefixes: obs.total_prefixes as u32,
            total_routes: obs.total_routes as u64,
        };
        for c in &obs.conflicts {
            let class = classify(c);
            stats.class_counts[class.index()] += 1;
            stats.masklen_counts[c.prefix.len().min(32) as usize] += 1;

            let rec = self
                .prefixes
                .entry(c.prefix)
                .or_insert_with(|| PrefixRecord {
                    core_days: 0,
                    total_days: 0,
                    first_idx: idx as u32,
                    last_idx: idx as u32,
                    origins: Vec::new(),
                    masklen: c.prefix.len(),
                });
            rec.total_days += 1;
            if core {
                rec.core_days += 1;
            }
            rec.first_idx = rec.first_idx.min(idx as u32);
            rec.last_idx = rec.last_idx.max(idx as u32);
            for o in &c.origins {
                if !rec.origins.contains(o) {
                    rec.origins.push(*o);
                }
            }
        }
        self.daily[idx] = Some(stats);
    }

    /// Merges another timeline (built over disjoint day positions of
    /// the same window) into this one.
    pub fn merge(&mut self, other: Timeline) {
        assert_eq!(self.dates, other.dates, "windows differ");
        for (i, day) in other.daily.into_iter().enumerate() {
            if let Some(d) = day {
                assert!(self.daily[i].is_none(), "both shards recorded day {i}");
                self.daily[i] = Some(d);
            }
        }
        for (prefix, rec) in other.prefixes {
            match self.prefixes.get_mut(&prefix) {
                None => {
                    self.prefixes.insert(prefix, rec);
                }
                Some(mine) => {
                    mine.core_days += rec.core_days;
                    mine.total_days += rec.total_days;
                    mine.first_idx = mine.first_idx.min(rec.first_idx);
                    mine.last_idx = mine.last_idx.max(rec.last_idx);
                    for o in rec.origins {
                        if !mine.origins.contains(&o) {
                            mine.origins.push(o);
                        }
                    }
                }
            }
        }
    }

    /// Daily stats at a position (if recorded).
    pub fn day(&self, idx: usize) -> Option<&DailyStats> {
        self.daily.get(idx).and_then(|d| d.as_ref())
    }

    /// All recorded daily stats in day order.
    pub fn days(&self) -> impl Iterator<Item = &DailyStats> {
        self.daily.iter().flatten()
    }

    /// Recorded daily stats within the core window.
    pub fn core_days(&self) -> impl Iterator<Item = &DailyStats> {
        self.daily[..self.core_len].iter().flatten()
    }

    /// The per-prefix records.
    pub fn prefixes(&self) -> &HashMap<Prefix, PrefixRecord> {
        &self.prefixes
    }

    /// Total distinct conflicted prefixes (the paper's 38 225).
    pub fn total_conflicts(&self) -> usize {
        self.prefixes.values().filter(|r| r.core_days > 0).count()
    }

    /// Conflicts active on the final core day (the paper's "still
    /// ongoing" 1 326).
    pub fn ongoing_at_cutoff(&self) -> usize {
        if self.core_len == 0 {
            return 0;
        }
        let last = (self.core_len - 1) as u32;
        self.prefixes
            .values()
            .filter(|r| r.core_days > 0 && r.last_idx >= last && r.first_idx <= last)
            .filter(|r| {
                // Active on the exact last core day: last_idx == last
                // or it spans past it into the extension having been
                // seen that day. Since records only note first/last,
                // use last_idx == last as "seen on the last core day"
                // unless the record extends beyond — then check is
                // conservative. Extension days only exist for ongoing
                // conflicts, so last_idx ≥ last implies presence.
                r.last_idx >= last
            })
            .count()
    }

    /// Observed core-window durations of all conflicts.
    pub fn durations(&self) -> Vec<u32> {
        self.prefixes
            .values()
            .filter(|r| r.core_days > 0)
            .map(|r| r.core_days)
            .collect()
    }

    /// Total as-set-excluded prefixes ever seen (distinct count is not
    /// tracked per prefix; this reports the maximum daily count, which
    /// corresponds to the paper's "roughly 12 routes").
    pub fn max_daily_as_set(&self) -> u32 {
        self.days().map(|d| d.as_set_count).max().unwrap_or(0)
    }
}

/// Convenience: the class-count array of one conflict set.
pub fn class_histogram(obs: &DayObservation) -> [u32; 4] {
    let mut counts = [0u32; 4];
    for c in &obs.conflicts {
        counts[classify(c).index()] += 1;
    }
    counts
}

/// Convenience: which class a histogram bucket belongs to.
pub fn class_of_index(i: usize) -> ConflictClass {
    ConflictClass::ALL[i]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::PrefixConflict;
    use moas_net::AsPath;

    fn dates(n: usize) -> Vec<Date> {
        (0..n)
            .map(|i| Date::ymd(2001, 1, 1).plus_days(i as i64))
            .collect()
    }

    fn obs(prefixes: &[(&str, &[&str])]) -> DayObservation {
        let conflicts = prefixes
            .iter()
            .map(|(p, paths)| {
                let parsed: Vec<(u16, AsPath)> = paths
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (i as u16, s.parse().unwrap()))
                    .collect();
                let mut origins: Vec<Asn> = parsed
                    .iter()
                    .filter_map(|(_, p)| p.origin().as_single())
                    .collect();
                origins.sort_unstable();
                origins.dedup();
                PrefixConflict {
                    prefix: p.parse().unwrap(),
                    origins,
                    paths: parsed,
                }
            })
            .collect();
        DayObservation {
            date: None,
            conflicts,
            as_set_prefixes: vec![],
            total_prefixes: prefixes.len(),
            empty_path_routes: 0,
            total_routes: prefixes.len() * 2,
        }
    }

    #[test]
    fn durations_count_observed_days() {
        let mut tl = Timeline::new(dates(10), 10);
        let o = obs(&[("192.0.2.0/24", &["1 7", "2 9"])]);
        tl.record(0, &o);
        tl.record(1, &o);
        tl.record(5, &o); // intermittent: still counts
        let d = tl.durations();
        assert_eq!(d, vec![3]);
        assert_eq!(tl.total_conflicts(), 1);
    }

    #[test]
    fn extension_days_do_not_count_toward_core_duration() {
        let mut tl = Timeline::new(dates(10), 8); // core = first 8 days
        let o = obs(&[("192.0.2.0/24", &["1 7", "2 9"])]);
        tl.record(6, &o);
        tl.record(7, &o);
        tl.record(8, &o); // extension
        tl.record(9, &o); // extension
        assert_eq!(tl.durations(), vec![2]);
        let rec = &tl.prefixes()[&"192.0.2.0/24".parse().unwrap()];
        assert_eq!(rec.total_days, 4);
    }

    #[test]
    fn ongoing_requires_last_core_day() {
        let mut tl = Timeline::new(dates(5), 5);
        let o = obs(&[("192.0.2.0/24", &["1 7", "2 9"])]);
        tl.record(2, &o);
        assert_eq!(tl.ongoing_at_cutoff(), 0);
        tl.record(4, &o);
        assert_eq!(tl.ongoing_at_cutoff(), 1);
    }

    #[test]
    fn daily_class_and_masklen_histograms() {
        let mut tl = Timeline::new(dates(3), 3);
        let o = obs(&[
            ("192.0.2.0/24", &["1 7", "2 9"]),    // distinct
            ("10.0.0.0/8", &["1 5", "1 6 8"]),    // splitview
            ("198.51.0.0/16", &["1 2", "1 2 3"]), // origtran
        ]);
        tl.record(0, &o);
        let d = tl.day(0).unwrap();
        assert_eq!(d.conflict_count, 3);
        assert_eq!(d.class_counts[ConflictClass::OrigTranAS.index()], 1);
        assert_eq!(d.class_counts[ConflictClass::SplitView.index()], 1);
        assert_eq!(d.class_counts[ConflictClass::DistinctPaths.index()], 1);
        assert_eq!(d.masklen_counts[24], 1);
        assert_eq!(d.masklen_counts[8], 1);
        assert_eq!(d.masklen_counts[16], 1);
    }

    #[test]
    fn origins_accumulate_across_days() {
        let mut tl = Timeline::new(dates(4), 4);
        tl.record(0, &obs(&[("192.0.2.0/24", &["1 7", "2 9"])]));
        tl.record(1, &obs(&[("192.0.2.0/24", &["1 7", "2 11"])]));
        let rec = &tl.prefixes()[&"192.0.2.0/24".parse().unwrap()];
        let mut origins = rec.origins.clone();
        origins.sort_unstable();
        assert_eq!(origins, vec![Asn::new(7), Asn::new(9), Asn::new(11)]);
    }

    #[test]
    fn merge_combines_disjoint_shards() {
        let d = dates(6);
        let mut a = Timeline::new(d.clone(), 6);
        let mut b = Timeline::new(d, 6);
        let o = obs(&[("192.0.2.0/24", &["1 7", "2 9"])]);
        a.record(0, &o);
        a.record(1, &o);
        b.record(3, &o);
        b.record(5, &o);
        a.merge(b);
        assert_eq!(tlen(&a), 4);
        assert_eq!(a.durations(), vec![4]);
        assert_eq!(a.ongoing_at_cutoff(), 1);

        fn tlen(t: &Timeline) -> usize {
            t.days().count()
        }
    }

    #[test]
    #[should_panic(expected = "both shards recorded")]
    fn merge_rejects_overlap() {
        let d = dates(3);
        let mut a = Timeline::new(d.clone(), 3);
        let mut b = Timeline::new(d, 3);
        let o = obs(&[("192.0.2.0/24", &["1 7", "2 9"])]);
        a.record(0, &o);
        b.record(0, &o);
        a.merge(b);
    }

    #[test]
    fn as_set_daily_max() {
        let mut tl = Timeline::new(dates(2), 2);
        let mut o = obs(&[]);
        o.as_set_prefixes = vec![
            ("10.0.0.0/8".parse().unwrap(), vec![Asn::new(1)]),
            ("11.0.0.0/8".parse().unwrap(), vec![Asn::new(2)]),
        ];
        tl.record(0, &o);
        assert_eq!(tl.max_daily_as_set(), 2);
    }
}
