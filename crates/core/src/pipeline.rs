//! Drivers: run the detector over a whole study window.
//!
//! The analysis is embarrassingly parallel across days (each day's
//! table is scanned independently; the [`Timeline`] merge is
//! associative over disjoint day sets), so the sharded driver splits
//! the window into contiguous chunks and runs one worker per scoped
//! thread — CPU-bound batch work uses threads, not an async runtime.

use crate::detect::{detect, DayObservation, TableSource};
use crate::timeline::Timeline;
use moas_mrt::{snapshot::SnapshotBuilder, MrtReader};
use moas_net::Date;
use std::fs::File;
use std::io;
use std::path::Path;

/// Runs one worker over every day serially.
pub fn analyze_serial<W>(dates: Vec<Date>, core_len: usize, mut worker: W) -> Timeline
where
    W: FnMut(usize) -> DayObservation,
{
    let n = dates.len();
    let mut tl = Timeline::new(dates, core_len);
    for idx in 0..n {
        let obs = worker(idx);
        tl.record(idx, &obs);
    }
    tl
}

/// Runs workers over contiguous day shards, one per thread, and merges
/// the resulting timelines. `factory` is called once per thread to
/// build that thread's worker (letting each thread own caches).
pub fn analyze_sharded<F, W>(
    dates: Vec<Date>,
    core_len: usize,
    threads: usize,
    factory: F,
) -> Timeline
where
    F: Fn() -> W + Sync,
    W: FnMut(usize) -> DayObservation + Send,
{
    let n = dates.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        let worker = factory();
        return analyze_serial(dates, core_len, worker);
    }
    let chunk = n.div_ceil(threads);
    let mut shards: Vec<Timeline> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                continue;
            }
            let dates_ref = &dates;
            let factory_ref = &factory;
            handles.push(scope.spawn(move || {
                let mut worker = factory_ref();
                let mut tl = Timeline::new(dates_ref.clone(), core_len);
                for idx in lo..hi {
                    let obs = worker(idx);
                    tl.record(idx, &obs);
                }
                tl
            }));
        }
        for h in handles {
            shards.push(h.join().expect("analysis worker panicked"));
        }
    });

    let mut merged = Timeline::new(dates, core_len);
    for shard in shards {
        merged.merge(shard);
    }
    merged
}

/// Reads one MRT table-dump file and runs detection over it.
/// Returns the observation and the reader's fault counters.
///
/// Records stream straight from the reader into an incremental
/// [`SnapshotBuilder`] — each record is decoded, folded into the
/// table, and dropped, so memory is bounded by the table being built,
/// not by the file's record count.
pub fn analyze_mrt_file(
    path: &Path,
    date_hint: Option<Date>,
) -> io::Result<(DayObservation, moas_mrt::ReadStats)> {
    let file = File::open(path)?;
    let mut reader = MrtReader::new(file);
    let mut builder = SnapshotBuilder::new(date_hint, true);
    for record in reader.by_ref() {
        builder
            .push(&record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    }
    let mut stats = reader.stats().clone();
    let build = builder.finish();
    // Entries dropped for unknown peer indices are corruption too.
    stats.records_skipped += build.unknown_peer_entries;
    Ok((detect(&build.snapshot), stats))
}

/// Assigns day files round-robin across `threads` workers: worker `t`
/// gets `files[t]`, `files[t + threads]`, … so every worker's list
/// stays in ascending input order. This is the sharding both archive
/// drivers use — the batch analyzer below parallelizes day scans with
/// it, and the streaming driver
/// (`moas_history::pipeline::analyze_mrt_archive_streaming`) feeds its
/// reader pool from the same assignment so files decode concurrently
/// while the single-pass monitor consumes them in day order.
pub fn shard_archive_files<T: Clone>(files: &[T], threads: usize) -> Vec<Vec<T>> {
    let threads = threads.max(1).min(files.len().max(1));
    let mut shards: Vec<Vec<T>> = vec![Vec::new(); threads];
    for (i, f) in files.iter().enumerate() {
        shards[i % threads].push(f.clone());
    }
    shards
}

/// Restricts an archive window to the days from `start` on: the
/// retained dates, and the files re-positioned so day position 0 is
/// the first retained day. This is what "the batch timeline restricted
/// to the retained window" means when checking a retention-enabled
/// history service for exactness — run [`analyze_mrt_archive`] over
/// the restricted window and compare.
pub fn restrict_archive_window(
    dates: &[Date],
    files: &[(usize, std::path::PathBuf)],
    start: usize,
) -> (Vec<Date>, Vec<(usize, std::path::PathBuf)>) {
    let start = start.min(dates.len());
    let dates = dates[start..].to_vec();
    let files = files
        .iter()
        .filter(|(idx, _)| *idx >= start)
        .map(|(idx, path)| (idx - start, path.clone()))
        .collect();
    (dates, files)
}

/// Default worker count for archive scans: one per core, capped by the
/// number of files.
fn archive_threads(files: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(files.max(1))
}

/// Analyzes a full archive directory: `files[i] = (day position,
/// path)`. Missing or unreadable files become I/O errors; corrupt
/// records inside a file are skipped (and tallied) by the MRT reader.
///
/// Days are independent, so the files are sharded round-robin across
/// one worker per core (the old one-file-per-day serial loop is gone);
/// use [`analyze_mrt_archive_parallel`] to pick the worker count.
pub fn analyze_mrt_archive(
    dates: Vec<Date>,
    core_len: usize,
    files: &[(usize, std::path::PathBuf)],
) -> io::Result<(Timeline, u64)> {
    let threads = archive_threads(files.len());
    analyze_mrt_archive_parallel(dates, core_len, files, threads)
}

/// [`analyze_mrt_archive`] with an explicit worker count. Each worker
/// scans its round-robin share of the files into a private [`Timeline`]
/// (days are disjoint across workers, so the merge is exact); the first
/// I/O error in file order wins.
pub fn analyze_mrt_archive_parallel(
    dates: Vec<Date>,
    core_len: usize,
    files: &[(usize, std::path::PathBuf)],
    threads: usize,
) -> io::Result<(Timeline, u64)> {
    let n = dates.len();
    let mut seen = vec![false; n];
    for (idx, path) in files {
        assert!(*idx < n, "file day position {idx} outside window");
        assert!(
            !std::mem::replace(&mut seen[*idx], true),
            "two archive files for day position {idx} ({})",
            path.display()
        );
    }

    // Workers carry each file's position in `files` order so the
    // error that wins is the first in *file* order, not shard order.
    let indexed: Vec<(usize, usize, &std::path::PathBuf)> = files
        .iter()
        .enumerate()
        .map(|(pos, (idx, path))| (pos, *idx, path))
        .collect();
    let shards = shard_archive_files(&indexed, threads);
    let mut results: Vec<Result<(Timeline, u64), (usize, io::Error)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for shard in &shards {
            let dates_ref = &dates;
            handles.push(
                scope.spawn(move || -> Result<(Timeline, u64), (usize, io::Error)> {
                    let mut tl = Timeline::new(dates_ref.clone(), core_len);
                    let mut skipped = 0u64;
                    for (pos, idx, path) in shard {
                        let (obs, stats) = analyze_mrt_file(path, None).map_err(|e| (*pos, e))?;
                        skipped += stats.records_skipped;
                        tl.record(*idx, &obs);
                    }
                    Ok((tl, skipped))
                }),
            );
        }
        for h in handles {
            results.push(h.join().expect("archive worker panicked"));
        }
    });

    let mut merged = Timeline::new(dates, core_len);
    let mut skipped_total = 0u64;
    let mut first_err: Option<(usize, io::Error)> = None;
    for result in results {
        match result {
            Ok((tl, skipped)) => {
                merged.merge(tl);
                skipped_total += skipped;
            }
            Err((pos, e)) => {
                if first_err.as_ref().is_none_or(|(p, _)| pos < *p) {
                    first_err = Some((pos, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    Ok((merged, skipped_total))
}

/// Convenience: detect over any [`TableSource`] (re-exported next to
/// the drivers so callers need only this module).
pub fn analyze_one(source: &impl TableSource) -> DayObservation {
    detect(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::PrefixConflict;
    use moas_bgp::{PeerInfo, TableSnapshot};
    use moas_mrt::snapshot::{snapshot_to_records, DumpFormat};
    use moas_mrt::MrtWriter;
    use moas_net::Asn;
    use std::io::Write as _;
    use std::net::Ipv4Addr;

    fn dates(n: usize) -> Vec<Date> {
        (0..n)
            .map(|i| Date::ymd(2001, 1, 1).plus_days(i as i64))
            .collect()
    }

    fn day_obs(idx: usize) -> DayObservation {
        // Prefix A conflicts every day; prefix B only on even days.
        let mut conflicts = vec![PrefixConflict {
            prefix: "192.0.2.0/24".parse().unwrap(),
            origins: vec![Asn::new(7), Asn::new(9)],
            paths: vec![(0, "1 7".parse().unwrap()), (1, "2 9".parse().unwrap())],
        }];
        if idx.is_multiple_of(2) {
            conflicts.push(PrefixConflict {
                prefix: "198.51.100.0/24".parse().unwrap(),
                origins: vec![Asn::new(5), Asn::new(6)],
                paths: vec![(0, "1 5".parse().unwrap()), (1, "2 6".parse().unwrap())],
            });
        }
        DayObservation {
            date: None,
            conflicts,
            as_set_prefixes: vec![],
            total_prefixes: 2,
            empty_path_routes: 0,
            total_routes: 4,
        }
    }

    #[test]
    fn serial_and_sharded_agree() {
        let n = 37;
        let serial = analyze_serial(dates(n), n, day_obs);
        for threads in [2, 3, 8, 64] {
            let sharded = analyze_sharded(dates(n), n, threads, || day_obs);
            assert_eq!(serial.total_conflicts(), sharded.total_conflicts());
            assert_eq!(serial.durations().len(), sharded.durations().len());
            let mut a = serial.durations();
            let mut b = sharded.durations();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "threads={threads}");
            assert_eq!(
                serial.days().count(),
                sharded.days().count(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn sharded_single_thread_is_serial() {
        let n = 5;
        let a = analyze_serial(dates(n), n, day_obs);
        let b = analyze_sharded(dates(n), n, 1, || day_obs);
        assert_eq!(a.total_conflicts(), b.total_conflicts());
    }

    fn sample_snapshot(date: Date) -> TableSnapshot {
        let mut t = TableSnapshot::new(date);
        let p0 = t.add_peer(PeerInfo::v4(Ipv4Addr::new(10, 0, 0, 1), Asn::new(701)));
        let p1 = t.add_peer(PeerInfo::v4(Ipv4Addr::new(10, 0, 0, 2), Asn::new(1239)));
        t.push_path(
            p0,
            "192.0.2.0/24".parse().unwrap(),
            "701 8584".parse().unwrap(),
        );
        t.push_path(
            p1,
            "192.0.2.0/24".parse().unwrap(),
            "1239 7007".parse().unwrap(),
        );
        t.push_path(
            p1,
            "10.0.0.0/8".parse().unwrap(),
            "1239 3561".parse().unwrap(),
        );
        t
    }

    #[test]
    fn mrt_file_roundtrip_analysis() {
        let dir = std::env::temp_dir().join("moas-core-test");
        std::fs::create_dir_all(&dir).unwrap();
        let date = Date::ymd(2001, 3, 3);
        let snap = sample_snapshot(date);
        let records = snapshot_to_records(&snap, DumpFormat::V2);
        let path = dir.join("rib.20010303.mrt");
        let mut w = MrtWriter::new(File::create(&path).unwrap());
        w.write_all(&records).unwrap();
        w.finish().unwrap();

        let (obs, stats) = analyze_mrt_file(&path, None).unwrap();
        assert_eq!(obs.conflict_count(), 1);
        assert_eq!(obs.date, Some(date));
        assert_eq!(stats.records_skipped, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mrt_archive_analysis_counts_durations() {
        let dir = std::env::temp_dir().join("moas-core-archive-test");
        std::fs::create_dir_all(&dir).unwrap();
        let ds = dates(3);
        let mut files = Vec::new();
        for (i, d) in ds.iter().enumerate() {
            let snap = sample_snapshot(*d);
            let records = snapshot_to_records(&snap, DumpFormat::V1);
            let path = dir.join(format!("rib.{i}.mrt"));
            let mut w = MrtWriter::new(File::create(&path).unwrap());
            w.write_all(&records).unwrap();
            w.finish().unwrap();
            files.push((i, path));
        }
        let (tl, skipped) = analyze_mrt_archive(ds.clone(), 3, &files).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(tl.total_conflicts(), 1);
        assert_eq!(tl.durations(), vec![3]);
        // The sharded scan is exact at any worker count.
        for threads in [1, 2, 5] {
            let (par, s) = analyze_mrt_archive_parallel(ds.clone(), 3, &files, threads).unwrap();
            assert_eq!(s, 0);
            assert_eq!(par.total_conflicts(), tl.total_conflicts());
            assert_eq!(par.durations(), tl.durations(), "threads={threads}");
            assert_eq!(par.days().count(), tl.days().count());
        }
        for (_, p) in files {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn archive_file_shards_preserve_order() {
        let files: Vec<usize> = (0..10).collect();
        let shards = shard_archive_files(&files, 3);
        assert_eq!(shards.len(), 3);
        let mut all: Vec<usize> = shards.iter().flatten().copied().collect();
        for shard in &shards {
            assert!(shard.windows(2).all(|w| w[0] < w[1]), "order per worker");
        }
        all.sort_unstable();
        assert_eq!(all, files);
        // More workers than files: capped, no empty panic.
        assert_eq!(shard_archive_files(&files[..2], 8).len(), 2);
    }

    #[test]
    fn corrupt_mrt_file_degrades_gracefully() {
        let dir = std::env::temp_dir().join("moas-core-corrupt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let date = Date::ymd(2001, 3, 3);
        let snap = sample_snapshot(date);
        let records = snapshot_to_records(&snap, DumpFormat::V1);
        let path = dir.join("rib.corrupt.mrt");
        {
            let mut f = File::create(&path).unwrap();
            for (i, r) in records.iter().enumerate() {
                let mut enc = r.encode().to_vec();
                if i == 1 {
                    let last = enc.len() - 1;
                    enc[20] = 0xEE; // corrupt a body byte
                    enc[last] ^= 0xFF;
                }
                f.write_all(&enc).unwrap();
            }
        }
        let (obs, stats) = analyze_mrt_file(&path, Some(date)).unwrap();
        // The undamaged records still yield analysis output.
        assert!(obs.total_routes >= 2);
        assert!(stats.records_ok >= 2);
        std::fs::remove_file(&path).ok();
    }
}
