//! The §V classification of MOAS conflicts by AS-path relationship.
//!
//! Given a conflicted prefix's path set, every pair of paths with
//! *different* origins is examined:
//!
//! * **OrigTranAS** — one path's flattened AS list is a proper prefix
//!   of the other's: the shorter path's origin acts as a transit AS on
//!   the longer path (`X1 … Xi-1` vs `X1 … Xi-1 Xi`).
//! * **SplitView** — the two paths share their first AS but diverge:
//!   one AS announces different routes to different neighbors.
//! * **DistinctPaths** — the two paths share no AS at all: "two totally
//!   different routes".
//!
//! A conflict is labeled with the highest-precedence class any of its
//! pairs exhibits (OrigTranAS > SplitView > DistinctPaths), matching
//! the paper's reading where DistinctPaths is the dominant residual.
//! Pairs that overlap partially without matching any definition are
//! tracked as [`ConflictClass::Other`]; the paper folds these into its
//! three-way figure, so reports show them separately *and* folded.

use crate::detect::PrefixConflict;
use moas_net::AsPath;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The class of a conflict under §V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConflictClass {
    /// An AS announces itself both as origin and as transit.
    OrigTranAS,
    /// One AS announces different routes to different neighbors.
    SplitView,
    /// Two completely disjoint AS paths.
    DistinctPaths,
    /// Paths overlap partially without satisfying any definition
    /// (folded into DistinctPaths when reproducing Fig. 6).
    Other,
}

impl ConflictClass {
    /// Index for compact per-day histograms.
    pub fn index(self) -> usize {
        match self {
            ConflictClass::OrigTranAS => 0,
            ConflictClass::SplitView => 1,
            ConflictClass::DistinctPaths => 2,
            ConflictClass::Other => 3,
        }
    }

    /// All classes in index order.
    pub const ALL: [ConflictClass; 4] = [
        ConflictClass::OrigTranAS,
        ConflictClass::SplitView,
        ConflictClass::DistinctPaths,
        ConflictClass::Other,
    ];
}

impl fmt::Display for ConflictClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConflictClass::OrigTranAS => "OrigTranAS",
            ConflictClass::SplitView => "SplitView",
            ConflictClass::DistinctPaths => "DistinctPaths",
            ConflictClass::Other => "Other",
        };
        f.write_str(s)
    }
}

/// Classifies one pair of paths (assumed to have different origins).
pub fn classify_pair(a: &AsPath, b: &AsPath) -> ConflictClass {
    if a.is_proper_prefix_of(b) || b.is_proper_prefix_of(a) {
        return ConflictClass::OrigTranAS;
    }
    match (a.first_hop(), b.first_hop()) {
        (Some(x), Some(y)) if x == y => return ConflictClass::SplitView,
        _ => {}
    }
    if a.is_disjoint_from(b) {
        return ConflictClass::DistinctPaths;
    }
    ConflictClass::Other
}

/// Classifies a whole conflict by precedence over its differing-origin
/// path pairs.
pub fn classify(conflict: &PrefixConflict) -> ConflictClass {
    let mut best = ConflictClass::Other;
    let paths = &conflict.paths;
    for i in 0..paths.len() {
        for j in (i + 1)..paths.len() {
            let (pa, pb) = (&paths[i].1, &paths[j].1);
            if pa.origin() == pb.origin() {
                continue;
            }
            let class = classify_pair(pa, pb);
            best = match (best, class) {
                (_, ConflictClass::OrigTranAS) => return ConflictClass::OrigTranAS,
                (ConflictClass::SplitView, _) => ConflictClass::SplitView,
                (_, ConflictClass::SplitView) => ConflictClass::SplitView,
                (ConflictClass::DistinctPaths, _) => ConflictClass::DistinctPaths,
                (_, ConflictClass::DistinctPaths) => ConflictClass::DistinctPaths,
                (other, _) => other,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use moas_net::{Asn, Prefix};

    fn conflict(paths: &[&str]) -> PrefixConflict {
        let parsed: Vec<(u16, AsPath)> = paths
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u16, s.parse().unwrap()))
            .collect();
        let mut origins: Vec<Asn> = parsed
            .iter()
            .filter_map(|(_, p)| p.origin().as_single())
            .collect();
        origins.sort_unstable();
        origins.dedup();
        PrefixConflict {
            prefix: "192.0.2.0/24".parse::<Prefix>().unwrap(),
            origins,
            paths: parsed,
        }
    }

    #[test]
    fn origtran_pair() {
        assert_eq!(
            classify_pair(
                &"701 1239".parse().unwrap(),
                &"701 1239 7007".parse().unwrap()
            ),
            ConflictClass::OrigTranAS
        );
    }

    #[test]
    fn splitview_pair() {
        assert_eq!(
            classify_pair(
                &"701 3561 7007".parse().unwrap(),
                &"701 1239 8584".parse().unwrap()
            ),
            ConflictClass::SplitView
        );
    }

    #[test]
    fn distinct_pair() {
        assert_eq!(
            classify_pair(
                &"701 1239 7007".parse().unwrap(),
                &"3561 15412".parse().unwrap()
            ),
            ConflictClass::DistinctPaths
        );
    }

    #[test]
    fn partial_overlap_is_other() {
        // Shared transit (1239), different first hop, not prefix.
        assert_eq!(
            classify_pair(
                &"701 1239 7007".parse().unwrap(),
                &"209 1239 8584".parse().unwrap()
            ),
            ConflictClass::Other
        );
    }

    #[test]
    fn origtran_beats_splitview() {
        // The prefix pair is also same-first-hop; OrigTranAS wins.
        let c = conflict(&["701 1239", "701 1239 7007"]);
        assert_eq!(classify(&c), ConflictClass::OrigTranAS);
    }

    #[test]
    fn splitview_beats_distinct() {
        let c = conflict(&[
            "701 3561 7007", // V=701 → origin 7007
            "701 1239 8584", // V=701 → origin 8584 (SplitView pair)
            "209 2914 7007", // also yields a Distinct pair vs path 2
        ]);
        assert_eq!(classify(&c), ConflictClass::SplitView);
    }

    #[test]
    fn distinct_conflict() {
        let c = conflict(&["701 1239 7007", "3561 15412"]);
        assert_eq!(classify(&c), ConflictClass::DistinctPaths);
    }

    #[test]
    fn same_origin_pairs_are_ignored() {
        // Both paths end at 7007 → no differing-origin pair except with
        // the third; the third pair is disjoint.
        let c = conflict(&["701 7007", "209 7007", "3561 15412"]);
        assert_eq!(classify(&c), ConflictClass::DistinctPaths);
    }

    #[test]
    fn all_pairs_partial_overlap_is_other() {
        let c = conflict(&["701 1239 7007", "209 1239 8584"]);
        assert_eq!(classify(&c), ConflictClass::Other);
    }

    #[test]
    fn class_indices_are_dense() {
        for (i, c) in ConflictClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
