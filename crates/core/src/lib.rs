//! # moas-core — MOAS conflict detection and analysis
//!
//! The reproduction of the paper's contribution. Everything here
//! implements the *measurement methodology* of §III–§VI:
//!
//! * [`mod@detect`] — scans one day's routing table, extracts per-prefix
//!   origin sets by the paper's rule (last AS of the path; routes
//!   ending in AS sets are excluded and counted separately), and
//!   reports the day's MOAS conflicts.
//! * [`classify`] — the §V three-way classification of a conflict's
//!   path set: `OrigTranAS` (one path a proper prefix of another),
//!   `SplitView` (same first-hop AS, different origins), and
//!   `DistinctPaths` (disjoint paths), with an explicit residual class
//!   for partially overlapping path pairs the paper folds into
//!   DistinctPaths.
//! * [`timeline`] — accumulates daily observations across the window:
//!   per-prefix observed-day counts (duration, "regardless of whether
//!   the conflict was continuous", §IV-B), daily conflict counts, daily
//!   class and mask-length histograms.
//! * [`stats`] — regenerates the paper's tables and figures from a
//!   timeline: Fig. 1 daily counts, Fig. 2 yearly medians, Fig. 3
//!   duration histogram, Fig. 4 expectation ladder, Fig. 5 prefix-length
//!   distribution, Fig. 6 class mix.
//! * [`causes`] — §VI analyses: per-AS involvement on incident days,
//!   exchange-point subset behavior, and the duration heuristic for
//!   valid-vs-invalid conflicts.
//! * [`detector`] — the paper's future work (§VII: "identifying
//!   invalid conflicts with a high degree of certainty"): an
//!   origin-profile anomaly detector that flags ASes suddenly
//!   originating far more prefixes than their history, plus a MOAS
//!   alarm stream with an allowlist.
//! * [`pipeline`] — drives a whole study window through the analysis,
//!   serially or sharded across scoped threads, from in-memory
//!   snapshots or from MRT archives on disk.
//! * [`report`] — text tables, CSV and JSON artifacts for
//!   EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causes;
pub mod classify;
pub mod detect;
pub mod detector;
pub mod pipeline;
pub mod replay;
pub mod report;
pub mod stats;
pub mod submoas;
pub mod timeline;

pub use classify::ConflictClass;
pub use detect::{detect, DayObservation, PrefixConflict, TableSource};
pub use timeline::{DailyStats, Timeline};
