//! §VI cause analyses: incident involvement, exchange-point subsets,
//! and the duration heuristic.

use crate::detect::DayObservation;
use crate::timeline::Timeline;
use moas_net::{Asn, Prefix};
use serde::Serialize;
use std::collections::HashMap;

/// Per-AS involvement on one day: in how many of the day's conflicts
/// an AS appears among the conflicting origins. This is the §VI-E
/// measurement ("AS 8584 was involved in 11 357 out of 11 842
/// conflicts that occurred during that day").
pub fn involvement_by_origin(obs: &DayObservation) -> HashMap<Asn, u32> {
    let mut counts: HashMap<Asn, u32> = HashMap::new();
    for c in &obs.conflicts {
        for o in &c.origins {
            *counts.entry(*o).or_default() += 1;
        }
    }
    counts
}

/// The most-involved AS of the day, if any conflict exists.
pub fn top_involved(obs: &DayObservation) -> Option<(Asn, u32)> {
    involvement_by_origin(obs)
        .into_iter()
        .max_by_key(|(asn, count)| (*count, std::cmp::Reverse(asn.value())))
}

/// Per (transit, origin) tail-pair involvement: in how many conflicts
/// some path ends with the sequence `… transit origin`. This is the
/// paper's "(AS 3561, AS 15412) was involved in 5 532 out of 6 627"
/// measurement.
pub fn involvement_by_tail_pair(obs: &DayObservation) -> HashMap<(Asn, Asn), u32> {
    let mut counts: HashMap<(Asn, Asn), u32> = HashMap::new();
    for c in &obs.conflicts {
        let mut seen: Vec<(Asn, Asn)> = Vec::new();
        for (_, path) in &c.paths {
            let flat = path.flatten();
            if flat.len() >= 2 {
                let pair = (flat[flat.len() - 2], flat[flat.len() - 1]);
                if !seen.contains(&pair) {
                    seen.push(pair);
                }
            }
        }
        for pair in seen {
            *counts.entry(pair).or_default() += 1;
        }
    }
    counts
}

/// Report row for the exchange-point analysis (§VI-A): given the set
/// of prefixes known (from a registry, in our case the world's ground
/// truth) to be exchange-point prefixes, how long did their conflicts
/// last relative to the window?
#[derive(Debug, Clone, Serialize)]
pub struct ExchangePointReport {
    /// Exchange-point prefixes that appeared in conflict at all.
    pub conflicted: usize,
    /// Of those, how many lasted at least 3/4 of the window.
    pub long_lived: usize,
    /// Minimum observed duration among them.
    pub min_duration: u32,
    /// Maximum observed duration among them.
    pub max_duration: u32,
}

/// Evaluates exchange-point prefixes against the timeline.
pub fn exchange_point_report(tl: &Timeline, xp_prefixes: &[Prefix]) -> ExchangePointReport {
    let mut durations: Vec<u32> = Vec::new();
    for p in xp_prefixes {
        if let Some(rec) = tl.prefixes().get(p) {
            if rec.core_days > 0 {
                durations.push(rec.core_days);
            }
        }
    }
    let window = tl.core_len() as u32;
    ExchangePointReport {
        conflicted: durations.len(),
        long_lived: durations.iter().filter(|&&d| d >= window * 3 / 4).count(),
        min_duration: durations.iter().copied().min().unwrap_or(0),
        max_duration: durations.iter().copied().max().unwrap_or(0),
    }
}

/// The §VI-F duration heuristic: conflicts longer than a threshold are
/// presumed valid operational practice; shorter ones presumed faults.
/// The paper's conclusion is that this heuristic is *useful but not
/// sufficient* — the scoring function below quantifies exactly that.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct HeuristicScore {
    /// Duration threshold used (days).
    pub threshold: u32,
    /// Valid conflicts correctly kept (duration > threshold).
    pub true_valid: usize,
    /// Invalid conflicts correctly flagged (duration ≤ threshold).
    pub true_invalid: usize,
    /// Valid conflicts wrongly flagged.
    pub false_invalid: usize,
    /// Invalid conflicts wrongly kept.
    pub false_valid: usize,
}

impl HeuristicScore {
    /// Fraction of all conflicts classified correctly.
    pub fn accuracy(&self) -> f64 {
        let correct = self.true_valid + self.true_invalid;
        let total = correct + self.false_invalid + self.false_valid;
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Precision of the "invalid" flag.
    pub fn invalid_precision(&self) -> f64 {
        let flagged = self.true_invalid + self.false_invalid;
        if flagged == 0 {
            0.0
        } else {
            self.true_invalid as f64 / flagged as f64
        }
    }
}

/// Scores the duration heuristic against ground truth: `is_valid(p)`
/// says whether the conflict on prefix `p` was valid practice.
pub fn score_duration_heuristic(
    tl: &Timeline,
    threshold: u32,
    is_valid: impl Fn(&Prefix) -> Option<bool>,
) -> HeuristicScore {
    let mut score = HeuristicScore {
        threshold,
        true_valid: 0,
        true_invalid: 0,
        false_invalid: 0,
        false_valid: 0,
    };
    for (prefix, rec) in tl.prefixes() {
        if rec.core_days == 0 {
            continue;
        }
        let Some(valid) = is_valid(prefix) else {
            continue;
        };
        let kept = rec.core_days > threshold;
        match (valid, kept) {
            (true, true) => score.true_valid += 1,
            (true, false) => score.false_invalid += 1,
            (false, false) => score.true_invalid += 1,
            (false, true) => score.false_valid += 1,
        }
    }
    score
}

#[cfg(test)]
mod tests {
    #![allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]
    use super::*;
    use crate::detect::PrefixConflict;
    use moas_net::{AsPath, Date};

    fn obs_with(paths_per_conflict: &[&[&str]]) -> DayObservation {
        let conflicts = paths_per_conflict
            .iter()
            .enumerate()
            .map(|(i, paths)| {
                let parsed: Vec<(u16, AsPath)> = paths
                    .iter()
                    .enumerate()
                    .map(|(j, s)| (j as u16, s.parse().unwrap()))
                    .collect();
                let mut origins: Vec<Asn> = parsed
                    .iter()
                    .filter_map(|(_, p)| p.origin().as_single())
                    .collect();
                origins.sort_unstable();
                origins.dedup();
                PrefixConflict {
                    prefix: format!("10.0.{i}.0/24").parse().unwrap(),
                    origins,
                    paths: parsed,
                }
            })
            .collect();
        DayObservation {
            date: Some(Date::ymd(1998, 4, 7)),
            conflicts,
            as_set_prefixes: vec![],
            total_prefixes: paths_per_conflict.len(),
            empty_path_routes: 0,
            total_routes: 0,
        }
    }

    #[test]
    fn involvement_counts_origin_membership() {
        let obs = obs_with(&[&["1 8584", "2 7"], &["1 8584", "3 9"], &["4 5", "6 11"]]);
        let inv = involvement_by_origin(&obs);
        assert_eq!(inv[&Asn::new(8584)], 2);
        assert_eq!(inv[&Asn::new(7)], 1);
        let (top, n) = top_involved(&obs).unwrap();
        assert_eq!(top, Asn::new(8584));
        assert_eq!(n, 2);
    }

    #[test]
    fn tail_pair_involvement() {
        let obs = obs_with(&[
            &["1 3561 15412", "2 7"],
            &["9 3561 15412", "2 8"],
            &["4 5", "6 11"],
        ]);
        let pairs = involvement_by_tail_pair(&obs);
        assert_eq!(pairs[&(Asn::new(3561), Asn::new(15412))], 2);
    }

    #[test]
    fn tail_pair_deduplicates_within_conflict() {
        let obs = obs_with(&[&["1 3561 15412", "9 3561 15412", "2 7"]]);
        let pairs = involvement_by_tail_pair(&obs);
        assert_eq!(pairs[&(Asn::new(3561), Asn::new(15412))], 1);
    }

    #[test]
    fn top_involved_none_on_empty() {
        let obs = obs_with(&[]);
        assert!(top_involved(&obs).is_none());
    }

    fn timeline_with_durations(durations: &[(Prefix, u32)]) -> Timeline {
        let n = 100usize;
        let dates: Vec<Date> = (0..n)
            .map(|i| Date::ymd(2000, 1, 1).plus_days(i as i64))
            .collect();
        let mut tl = Timeline::new(dates.clone(), n);
        for idx in 0..n {
            let conflicts: Vec<PrefixConflict> = durations
                .iter()
                .filter(|(_, d)| (idx as u32) < *d)
                .map(|(p, _)| PrefixConflict {
                    prefix: *p,
                    origins: vec![Asn::new(1), Asn::new(2)],
                    paths: vec![(0, "1 7".parse().unwrap()), (1, "2 9".parse().unwrap())],
                })
                .collect();
            let obs = DayObservation {
                date: Some(dates[idx]),
                total_prefixes: conflicts.len(),
                total_routes: conflicts.len() * 2,
                conflicts,
                as_set_prefixes: vec![],
                empty_path_routes: 0,
            };
            tl.record(idx, &obs);
        }
        tl
    }

    #[test]
    fn exchange_point_report_measures_durations() {
        let xp: Prefix = "206.0.0.0/24".parse().unwrap();
        let other: Prefix = "10.0.0.0/24".parse().unwrap();
        let tl = timeline_with_durations(&[(xp, 90), (other, 2)]);
        let report = exchange_point_report(&tl, &[xp]);
        assert_eq!(report.conflicted, 1);
        assert_eq!(report.long_lived, 1);
        assert_eq!(report.max_duration, 90);
        // Unknown XP prefix: not counted.
        let report2 = exchange_point_report(&tl, &["99.0.0.0/24".parse().unwrap()]);
        assert_eq!(report2.conflicted, 0);
    }

    #[test]
    fn duration_heuristic_scoring() {
        let valid: Prefix = "10.0.0.0/24".parse().unwrap(); // 90 days
        let invalid: Prefix = "10.0.1.0/24".parse().unwrap(); // 2 days
        let tl = timeline_with_durations(&[(valid, 90), (invalid, 2)]);
        let score = score_duration_heuristic(&tl, 9, |p| Some(*p == valid));
        assert_eq!(score.true_valid, 1);
        assert_eq!(score.true_invalid, 1);
        assert_eq!(score.accuracy(), 1.0);
        assert_eq!(score.invalid_precision(), 1.0);

        // A long-lived *invalid* conflict defeats the heuristic —
        // exactly the paper's caveat.
        let tl2 = timeline_with_durations(&[(valid, 90), (invalid, 80)]);
        let score2 = score_duration_heuristic(&tl2, 9, |p| Some(*p == valid));
        assert_eq!(score2.false_valid, 1);
        assert!(score2.accuracy() < 1.0);
    }

    #[test]
    fn heuristic_skips_unknown_ground_truth() {
        let a: Prefix = "10.0.0.0/24".parse().unwrap();
        let tl = timeline_with_durations(&[(a, 5)]);
        let score = score_duration_heuristic(&tl, 9, |_| None);
        assert_eq!(
            score.true_valid + score.true_invalid + score.false_valid + score.false_invalid,
            0
        );
    }
}
