//! Regeneration of the paper's tables and figures from a [`Timeline`].

use crate::timeline::Timeline;
use moas_net::Date;
use serde::Serialize;
use std::collections::BTreeMap;

/// Median of a slice (average of middle two for even lengths).
/// Returns `None` for empty input.
pub fn median_u32(values: &mut [u32]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_unstable();
    let n = values.len();
    Some(if n % 2 == 1 {
        values[n / 2] as f64
    } else {
        (values[n / 2 - 1] as f64 + values[n / 2] as f64) / 2.0
    })
}

/// One point of the Fig. 1 series.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig1Point {
    /// Snapshot date.
    pub date: Date,
    /// Conflicts that day.
    pub conflicts: u32,
}

/// Fig. 1: the daily conflict count over the core window.
pub fn fig1_daily_counts(tl: &Timeline) -> Vec<Fig1Point> {
    tl.core_days()
        .map(|d| Fig1Point {
            date: d.date,
            conflicts: d.conflict_count,
        })
        .collect()
}

/// The `k` largest daily counts (the paper's footnote peaks).
pub fn fig1_peaks(tl: &Timeline, k: usize) -> Vec<Fig1Point> {
    let mut points = fig1_daily_counts(tl);
    points.sort_by_key(|p| std::cmp::Reverse(p.conflicts));
    points.truncate(k);
    points
}

/// One row of the Fig. 2 table.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct YearlyMedian {
    /// Calendar year.
    pub year: i32,
    /// Median of the daily conflict counts in that year.
    pub median: f64,
    /// Increase over the previous listed year, in percent.
    pub growth_pct: Option<f64>,
}

/// Fig. 2: yearly medians of the daily conflict count with growth
/// rates, for the years the paper tabulates (1998–2001).
pub fn fig2_yearly_medians(tl: &Timeline, years: &[i32]) -> Vec<YearlyMedian> {
    let mut per_year: BTreeMap<i32, Vec<u32>> = BTreeMap::new();
    for d in tl.core_days() {
        per_year
            .entry(d.date.year())
            .or_default()
            .push(d.conflict_count);
    }
    let mut out = Vec::new();
    let mut prev: Option<f64> = None;
    for &year in years {
        let Some(mut counts) = per_year.remove(&year) else {
            continue;
        };
        let median = median_u32(&mut counts).unwrap_or(0.0);
        let growth_pct = prev.map(|p| (median - p) / p * 100.0);
        out.push(YearlyMedian {
            year,
            median,
            growth_pct,
        });
        prev = Some(median);
    }
    out
}

/// Fig. 3: the duration histogram — for each observed duration (in
/// snapshot days), how many conflicts had exactly that duration.
pub fn fig3_duration_histogram(tl: &Timeline) -> Vec<(u32, u32)> {
    let mut hist: BTreeMap<u32, u32> = BTreeMap::new();
    for d in tl.durations() {
        *hist.entry(d).or_default() += 1;
    }
    hist.into_iter().collect()
}

/// One row of the Fig. 4 expectation table.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ExpectationRow {
    /// Strict lower bound on duration (days): the "longer than N days"
    /// filter.
    pub longer_than: u32,
    /// Conflicts passing the filter.
    pub count: usize,
    /// Mean duration of those conflicts.
    pub expectation: f64,
}

/// Fig. 4: expectation of duration over filtered data sets. Filters
/// are strict (`duration > longer_than`), matching the paper's rows
/// (see DESIGN.md §2 for the consistency argument).
pub fn fig4_expectations(tl: &Timeline, thresholds: &[u32]) -> Vec<ExpectationRow> {
    let durations = tl.durations();
    thresholds
        .iter()
        .map(|&t| {
            let passing: Vec<u32> = durations.iter().copied().filter(|&d| d > t).collect();
            let count = passing.len();
            let expectation = if count == 0 {
                0.0
            } else {
                passing.iter().map(|&d| d as u64).sum::<u64>() as f64 / count as f64
            };
            ExpectationRow {
                longer_than: t,
                count,
                expectation,
            }
        })
        .collect()
}

/// Headline duration facts beyond the table.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DurationSummary {
    /// Total conflicts (distinct prefixes).
    pub total: usize,
    /// One-time conflicts (observed exactly one day).
    pub one_timers: usize,
    /// Conflicts longer than 300 days.
    pub over_300: usize,
    /// The longest observed duration.
    pub longest: u32,
    /// Conflicts still active on the final core day.
    pub ongoing: usize,
}

/// Computes the headline duration summary.
pub fn duration_summary(tl: &Timeline) -> DurationSummary {
    let durations = tl.durations();
    DurationSummary {
        total: durations.len(),
        one_timers: durations.iter().filter(|&&d| d == 1).count(),
        over_300: durations.iter().filter(|&&d| d > 300).count(),
        longest: durations.iter().copied().max().unwrap_or(0),
        ongoing: tl.ongoing_at_cutoff(),
    }
}

/// Fig. 5: per-year median daily conflict count by prefix length.
/// Returns `year → [median per mask length 0..=32]`.
pub fn fig5_masklen_by_year(tl: &Timeline, years: &[i32]) -> BTreeMap<i32, Vec<f64>> {
    let mut out = BTreeMap::new();
    for &year in years {
        let mut per_len: Vec<Vec<u32>> = vec![Vec::new(); 33];
        for d in tl.core_days().filter(|d| d.date.year() == year) {
            for (len, &count) in d.masklen_counts.iter().enumerate() {
                per_len[len].push(count);
            }
        }
        let medians: Vec<f64> = per_len
            .iter_mut()
            .map(|v| median_u32(v).unwrap_or(0.0))
            .collect();
        if medians.iter().any(|&m| m > 0.0) {
            out.insert(year, medians);
        }
    }
    out
}

/// One point of the Fig. 6 series.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig6Point {
    /// Snapshot date.
    pub date: Date,
    /// OrigTranAS count.
    pub orig_tran: u32,
    /// SplitView count.
    pub split_view: u32,
    /// DistinctPaths count (paper's catch-all: includes the residual
    /// partial-overlap class).
    pub distinct: u32,
    /// The residual (also folded into `distinct`), reported for
    /// transparency.
    pub other: u32,
}

/// Fig. 6: daily class counts between two dates (inclusive), using
/// core and extension days.
pub fn fig6_class_series(tl: &Timeline, from: Date, to: Date) -> Vec<Fig6Point> {
    tl.days()
        .filter(|d| d.date >= from && d.date <= to)
        .map(|d| Fig6Point {
            date: d.date,
            orig_tran: d.class_counts[0],
            split_view: d.class_counts[1],
            distinct: d.class_counts[2] + d.class_counts[3],
            other: d.class_counts[3],
        })
        .collect()
}

/// Aggregate class shares over a date range (for EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ClassShares {
    /// Mean daily OrigTranAS count.
    pub orig_tran: f64,
    /// Mean daily SplitView count.
    pub split_view: f64,
    /// Mean daily DistinctPaths count (incl. residual).
    pub distinct: f64,
}

/// Mean daily class counts over a range.
pub fn fig6_shares(tl: &Timeline, from: Date, to: Date) -> ClassShares {
    let points = fig6_class_series(tl, from, to);
    let n = points.len().max(1) as f64;
    ClassShares {
        orig_tran: points.iter().map(|p| p.orig_tran as u64).sum::<u64>() as f64 / n,
        split_view: points.iter().map(|p| p.split_view as u64).sum::<u64>() as f64 / n,
        distinct: points.iter().map(|p| p.distinct as u64).sum::<u64>() as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]
    use super::*;
    use crate::detect::{DayObservation, PrefixConflict};
    use moas_net::AsPath;

    fn mk_timeline(daily_conflicts: &[(Date, usize)]) -> Timeline {
        let dates: Vec<Date> = daily_conflicts.iter().map(|(d, _)| *d).collect();
        let mut tl = Timeline::new(dates.clone(), dates.len());
        for (idx, (_, n)) in daily_conflicts.iter().enumerate() {
            let conflicts: Vec<PrefixConflict> = (0..*n)
                .map(|i| {
                    let paths: Vec<(u16, AsPath)> = vec![
                        (0, format!("1 {}", 100 + i).parse().unwrap()),
                        (1, format!("2 {}", 200 + i).parse().unwrap()),
                    ];
                    PrefixConflict {
                        prefix: format!("10.{}.{}.0/24", i / 256, i % 256).parse().unwrap(),
                        origins: paths
                            .iter()
                            .filter_map(|(_, p)| p.origin().as_single())
                            .collect(),
                        paths,
                    }
                })
                .collect();
            let obs = DayObservation {
                date: Some(dates[idx]),
                total_prefixes: *n,
                total_routes: n * 2,
                conflicts,
                as_set_prefixes: vec![],
                empty_path_routes: 0,
            };
            tl.record(idx, &obs);
        }
        tl
    }

    #[test]
    fn median_edges() {
        assert_eq!(median_u32(&mut []), None);
        assert_eq!(median_u32(&mut [5]), Some(5.0));
        assert_eq!(median_u32(&mut [1, 2]), Some(1.5));
        assert_eq!(median_u32(&mut [3, 1, 2]), Some(2.0));
    }

    #[test]
    fn fig1_series_and_peaks() {
        let tl = mk_timeline(&[
            (Date::ymd(1998, 1, 1), 3),
            (Date::ymd(1998, 1, 2), 10),
            (Date::ymd(1998, 1, 3), 5),
        ]);
        let series = fig1_daily_counts(&tl);
        assert_eq!(series.len(), 3);
        assert_eq!(series[1].conflicts, 10);
        let peaks = fig1_peaks(&tl, 1);
        assert_eq!(peaks[0].date, Date::ymd(1998, 1, 2));
    }

    #[test]
    fn fig2_medians_and_growth() {
        let mut days = Vec::new();
        for i in 0..5 {
            days.push((Date::ymd(1998, 3, 1).plus_days(i), 10));
        }
        for i in 0..5 {
            days.push((Date::ymd(1999, 3, 1).plus_days(i), 12));
        }
        let tl = mk_timeline(&days);
        let rows = fig2_yearly_medians(&tl, &[1998, 1999]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].median, 10.0);
        assert!(rows[0].growth_pct.is_none());
        assert_eq!(rows[1].median, 12.0);
        let g = rows[1].growth_pct.unwrap();
        assert!((g - 20.0).abs() < 1e-9);
    }

    #[test]
    fn fig2_skips_missing_years() {
        let tl = mk_timeline(&[(Date::ymd(1998, 1, 1), 1)]);
        let rows = fig2_yearly_medians(&tl, &[1998, 1999, 2000]);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn fig3_histogram_counts_durations() {
        // One prefix observed on all 3 days, the rest only on their day.
        let dates: Vec<Date> = (0..3).map(|i| Date::ymd(2001, 1, 1).plus_days(i)).collect();
        let mut tl = Timeline::new(dates.clone(), 3);
        let persistent = PrefixConflict {
            prefix: "192.0.2.0/24".parse().unwrap(),
            origins: vec![],
            paths: vec![(0, "1 7".parse().unwrap()), (1, "2 9".parse().unwrap())],
        };
        for idx in 0..3 {
            let mut conflicts = vec![persistent.clone()];
            conflicts.push(PrefixConflict {
                prefix: format!("10.0.{idx}.0/24").parse().unwrap(),
                origins: vec![],
                paths: vec![(0, "1 7".parse().unwrap()), (1, "2 9".parse().unwrap())],
            });
            let obs = DayObservation {
                date: Some(dates[idx]),
                conflicts,
                as_set_prefixes: vec![],
                total_prefixes: 2,
                empty_path_routes: 0,
                total_routes: 4,
            };
            tl.record(idx, &obs);
        }
        let hist = fig3_duration_histogram(&tl);
        assert_eq!(hist, vec![(1, 3), (3, 1)]);
    }

    #[test]
    fn fig4_strict_filters() {
        let dates: Vec<Date> = (0..5).map(|i| Date::ymd(2001, 1, 1).plus_days(i)).collect();
        let mut tl = Timeline::new(dates.clone(), 5);
        // Prefix A on days 0..5 (dur 5), B on day 0 (dur 1).
        for idx in 0..5 {
            let mut conflicts = vec![PrefixConflict {
                prefix: "192.0.2.0/24".parse().unwrap(),
                origins: vec![],
                paths: vec![(0, "1 7".parse().unwrap()), (1, "2 9".parse().unwrap())],
            }];
            if idx == 0 {
                conflicts.push(PrefixConflict {
                    prefix: "10.0.0.0/24".parse().unwrap(),
                    origins: vec![],
                    paths: vec![(0, "1 7".parse().unwrap()), (1, "2 9".parse().unwrap())],
                });
            }
            let obs = DayObservation {
                date: Some(dates[idx]),
                conflicts,
                as_set_prefixes: vec![],
                total_prefixes: 2,
                empty_path_routes: 0,
                total_routes: 4,
            };
            tl.record(idx, &obs);
        }
        let rows = fig4_expectations(&tl, &[0, 1, 4]);
        // >0: both (mean 3), >1: only A (mean 5), >4: A (mean 5).
        assert_eq!(rows[0].count, 2);
        assert!((rows[0].expectation - 3.0).abs() < 1e-9);
        assert_eq!(rows[1].count, 1);
        assert!((rows[1].expectation - 5.0).abs() < 1e-9);
        assert_eq!(rows[2].count, 1);

        let summary = duration_summary(&tl);
        assert_eq!(summary.total, 2);
        assert_eq!(summary.one_timers, 1);
        assert_eq!(summary.longest, 5);
        assert_eq!(summary.ongoing, 1);
    }

    #[test]
    fn fig5_medians_by_year() {
        let tl = mk_timeline(&[(Date::ymd(1998, 1, 1), 4), (Date::ymd(1998, 1, 2), 4)]);
        let by_year = fig5_masklen_by_year(&tl, &[1998, 1999]);
        assert!(by_year.contains_key(&1998));
        assert!(!by_year.contains_key(&1999));
        // All test conflicts are /24.
        assert_eq!(by_year[&1998][24], 4.0);
        assert_eq!(by_year[&1998][16], 0.0);
    }

    #[test]
    fn fig6_series_folds_other_into_distinct() {
        let dates = vec![Date::ymd(2001, 5, 20)];
        let mut tl = Timeline::new(dates.clone(), 1);
        let obs = DayObservation {
            date: Some(dates[0]),
            conflicts: vec![
                // Partial overlap → Other, folded into distinct.
                PrefixConflict {
                    prefix: "10.0.0.0/24".parse().unwrap(),
                    origins: vec![],
                    paths: vec![
                        (0, "701 1239 7007".parse().unwrap()),
                        (1, "209 1239 8584".parse().unwrap()),
                    ],
                },
                // True distinct.
                PrefixConflict {
                    prefix: "10.0.1.0/24".parse().unwrap(),
                    origins: vec![],
                    paths: vec![(0, "1 7".parse().unwrap()), (1, "2 9".parse().unwrap())],
                },
            ],
            as_set_prefixes: vec![],
            total_prefixes: 2,
            empty_path_routes: 0,
            total_routes: 4,
        };
        tl.record(0, &obs);
        let series = fig6_class_series(&tl, Date::ymd(2001, 5, 15), Date::ymd(2001, 8, 15));
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].distinct, 2);
        assert_eq!(series[0].other, 1);
        let shares = fig6_shares(&tl, Date::ymd(2001, 5, 15), Date::ymd(2001, 8, 15));
        assert_eq!(shares.distinct, 2.0);
    }
}
