//! MOAS detection over one day's routing table.
//!
//! §III: *"We examined the AS paths that led to the same prefix but
//! ended in different origin ASes"*, identifying conflicts **by prefix
//! only**, and excluding the ~12 routes that ended in AS sets.

use moas_bgp::TableSnapshot;
use moas_net::{AsPath, Asn, Date, Origin, Prefix};
use std::collections::HashMap;

/// Anything that can enumerate one day's routes.
///
/// Implemented for [`TableSnapshot`] (in-memory or parsed from MRT).
/// The callback receives `(prefix, session index, path)`.
pub trait TableSource {
    /// The snapshot date.
    fn date(&self) -> Date;
    /// Calls `f` for every route in the table.
    fn for_each_route(&self, f: &mut dyn FnMut(Prefix, u16, &AsPath));
}

impl TableSource for TableSnapshot {
    fn date(&self) -> Date {
        self.date
    }

    fn for_each_route(&self, f: &mut dyn FnMut(Prefix, u16, &AsPath)) {
        for e in &self.entries {
            f(e.route.prefix, e.peer_idx, &e.route.path);
        }
    }
}

/// One conflicted prefix on one day.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixConflict {
    /// The conflicted prefix.
    pub prefix: Prefix,
    /// Distinct origin ASes observed (sorted; ≥ 2).
    pub origins: Vec<Asn>,
    /// The distinct AS paths observed, with one representative session
    /// each (identical paths from many sessions are deduplicated —
    /// classification depends on path shapes, not multiplicity).
    pub paths: Vec<(u16, AsPath)>,
}

/// The result of scanning one day's table.
#[derive(Debug, Clone, Default)]
pub struct DayObservation {
    /// Snapshot date.
    pub date: Option<Date>,
    /// MOAS conflicts found (prefix order).
    pub conflicts: Vec<PrefixConflict>,
    /// Prefixes excluded because some route ended in an AS set, with
    /// the union of set members seen.
    pub as_set_prefixes: Vec<(Prefix, Vec<Asn>)>,
    /// Distinct prefixes seen in the table.
    pub total_prefixes: usize,
    /// Routes with no extractable origin (empty AS path) — skipped.
    pub empty_path_routes: usize,
    /// Total routes scanned.
    pub total_routes: usize,
}

impl DayObservation {
    /// Number of conflicts (the Fig. 1 quantity for this day).
    pub fn conflict_count(&self) -> usize {
        self.conflicts.len()
    }
}

/// Per-prefix accumulation state during a scan.
#[derive(Debug, Default)]
struct PrefixAcc {
    origins: Vec<Asn>,
    paths: Vec<(u16, AsPath)>,
    set_members: Vec<Asn>,
    has_set_route: bool,
}

/// Scans a table and reports the day's MOAS conflicts.
///
/// The origin of each route is the last element of its AS path
/// ([`AsPath::origin`]); a prefix with ≥ 2 distinct single origins is a
/// conflict. A prefix carrying any AS-set-terminated route is excluded
/// from conflict accounting (§III) and reported separately.
pub fn detect(source: &impl TableSource) -> DayObservation {
    let mut acc: HashMap<Prefix, PrefixAcc> = HashMap::new();
    let mut empty_path_routes = 0usize;
    let mut total_routes = 0usize;

    source.for_each_route(&mut |prefix, session, path| {
        total_routes += 1;
        let slot = acc.entry(prefix).or_default();
        match path.origin() {
            Origin::Single(origin) => {
                if !slot.origins.contains(&origin) {
                    slot.origins.push(origin);
                }
                // Deduplicate identical paths (many sessions of the
                // same AS export the same route).
                if !slot.paths.iter().any(|(_, p)| p == path) {
                    slot.paths.push((session, path.clone()));
                }
            }
            Origin::Set(members) => {
                slot.has_set_route = true;
                for m in members {
                    if !slot.set_members.contains(&m) {
                        slot.set_members.push(m);
                    }
                }
            }
            Origin::None => {
                empty_path_routes += 1;
            }
        }
    });

    let total_prefixes = acc.len();
    let mut conflicts = Vec::new();
    let mut as_set_prefixes = Vec::new();
    for (prefix, mut slot) in acc {
        if slot.has_set_route {
            slot.set_members.sort_unstable();
            as_set_prefixes.push((prefix, slot.set_members));
            continue;
        }
        if slot.origins.len() >= 2 {
            slot.origins.sort_unstable();
            conflicts.push(PrefixConflict {
                prefix,
                origins: slot.origins,
                paths: slot.paths,
            });
        }
    }
    conflicts.sort_by_key(|c| c.prefix);
    as_set_prefixes.sort_by_key(|(p, _)| *p);

    DayObservation {
        date: Some(source.date()),
        conflicts,
        as_set_prefixes,
        total_prefixes,
        empty_path_routes,
        total_routes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moas_bgp::PeerInfo;
    use moas_net::PathSegment;
    use std::net::Ipv4Addr;

    fn snap() -> TableSnapshot {
        let mut t = TableSnapshot::new(Date::ymd(2001, 4, 10));
        for i in 0..4u8 {
            t.add_peer(PeerInfo::v4(
                Ipv4Addr::new(10, 0, 0, i + 1),
                Asn::new(100 + i as u32),
            ));
        }
        t
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn path(s: &str) -> AsPath {
        s.parse().unwrap()
    }

    #[test]
    fn no_conflict_on_agreeing_origins() {
        let mut t = snap();
        t.push_path(0, p("10.0.0.0/8"), path("100 7"));
        t.push_path(1, p("10.0.0.0/8"), path("101 200 7"));
        let obs = detect(&t);
        assert_eq!(obs.conflict_count(), 0);
        assert_eq!(obs.total_prefixes, 1);
        assert_eq!(obs.total_routes, 2);
    }

    #[test]
    fn conflict_on_differing_origins() {
        let mut t = snap();
        t.push_path(0, p("192.0.2.0/24"), path("100 8584"));
        t.push_path(1, p("192.0.2.0/24"), path("101 200 7"));
        t.push_path(2, p("198.51.100.0/24"), path("102 300"));
        let obs = detect(&t);
        assert_eq!(obs.conflict_count(), 1);
        let c = &obs.conflicts[0];
        assert_eq!(c.prefix, p("192.0.2.0/24"));
        assert_eq!(c.origins, vec![Asn::new(7), Asn::new(8584)]);
        assert_eq!(c.paths.len(), 2);
    }

    #[test]
    fn conflicts_identified_by_prefix_not_masklen_merge() {
        // 10.0.0.0/8 and 10.0.0.0/16 are DIFFERENT prefixes: distinct
        // origins across them are not a conflict.
        let mut t = snap();
        t.push_path(0, p("10.0.0.0/8"), path("100 7"));
        t.push_path(1, p("10.0.0.0/16"), path("101 9"));
        let obs = detect(&t);
        assert_eq!(obs.conflict_count(), 0);
        assert_eq!(obs.total_prefixes, 2);
    }

    #[test]
    fn as_set_routes_excluded_even_when_conflicting() {
        let mut t = snap();
        // A normal conflicting pair…
        t.push_path(0, p("192.0.2.0/24"), path("100 7"));
        t.push_path(1, p("192.0.2.0/24"), path("101 9"));
        // …but a third route for the same prefix ends in an AS set:
        // the whole prefix is excluded (§III).
        t.push_path(2, p("192.0.2.0/24"), path("102 {7,9}"));
        let obs = detect(&t);
        assert_eq!(obs.conflict_count(), 0);
        assert_eq!(obs.as_set_prefixes.len(), 1);
        assert_eq!(obs.as_set_prefixes[0].1, vec![Asn::new(7), Asn::new(9)]);
    }

    #[test]
    fn empty_paths_are_counted_not_crashed() {
        let mut t = snap();
        t.push_path(0, p("10.0.0.0/8"), AsPath::empty());
        t.push_path(1, p("10.0.0.0/8"), path("101 7"));
        let obs = detect(&t);
        assert_eq!(obs.empty_path_routes, 1);
        assert_eq!(obs.conflict_count(), 0);
    }

    #[test]
    fn identical_paths_deduplicated() {
        let mut t = snap();
        t.push_path(0, p("192.0.2.0/24"), path("100 7"));
        t.push_path(1, p("192.0.2.0/24"), path("100 7")); // same path, other session
        t.push_path(2, p("192.0.2.0/24"), path("102 9"));
        let obs = detect(&t);
        assert_eq!(obs.conflict_count(), 1);
        assert_eq!(obs.conflicts[0].paths.len(), 2, "dup path not folded");
    }

    #[test]
    fn prepending_does_not_create_conflict() {
        let mut t = snap();
        t.push_path(0, p("10.0.0.0/8"), path("100 7 7 7"));
        t.push_path(1, p("10.0.0.0/8"), path("101 7"));
        let obs = detect(&t);
        assert_eq!(obs.conflict_count(), 0);
    }

    #[test]
    fn three_way_conflict_collects_all_origins() {
        let mut t = snap();
        t.push_path(0, p("203.0.113.0/24"), path("100 1"));
        t.push_path(1, p("203.0.113.0/24"), path("101 2"));
        t.push_path(2, p("203.0.113.0/24"), path("102 3"));
        let obs = detect(&t);
        assert_eq!(obs.conflicts[0].origins.len(), 3);
    }

    #[test]
    fn mid_path_set_does_not_exclude() {
        // Only a *trailing* set means "origin is a set". A set in the
        // middle with a sequence after it has a single origin.
        let mut t = snap();
        let mixed = AsPath::from_segments([
            PathSegment::Sequence(vec![Asn::new(100)]),
            PathSegment::Set(vec![Asn::new(5), Asn::new(6)]),
            PathSegment::Sequence(vec![Asn::new(7)]),
        ]);
        t.push_path(0, p("192.0.2.0/24"), mixed);
        t.push_path(1, p("192.0.2.0/24"), path("101 9"));
        let obs = detect(&t);
        assert_eq!(obs.conflict_count(), 1);
        assert_eq!(obs.conflicts[0].origins, vec![Asn::new(7), Asn::new(9)]);
    }

    #[test]
    fn empty_table_is_empty_observation() {
        let t = snap();
        let obs = detect(&t);
        assert_eq!(obs.conflict_count(), 0);
        assert_eq!(obs.total_prefixes, 0);
        assert_eq!(obs.total_routes, 0);
        assert_eq!(obs.date, Some(Date::ymd(2001, 4, 10)));
    }

    #[test]
    fn v6_prefixes_participate() {
        let mut t = snap();
        t.push_path(0, p("2001:db8::/32"), path("100 7"));
        t.push_path(1, p("2001:db8::/32"), path("101 9"));
        let obs = detect(&t);
        assert_eq!(obs.conflict_count(), 1);
        assert_eq!(obs.conflicts[0].prefix, p("2001:db8::/32"));
    }
}
