//! The AS graph: nodes, relationships, preferential-attachment growth.

use moas_bgp::policy::Rel;
use moas_net::rng::DetRng;
use moas_net::{Asn, Date, DayIndex};
use std::collections::HashMap;

/// Role of an AS in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Default-free core (tier 1): mutually peered, no providers.
    Core,
    /// Transit provider: has providers and customers.
    Transit,
    /// Edge/stub AS: customers only of others.
    Edge,
}

/// One autonomous system.
#[derive(Debug, Clone)]
pub struct AsNode {
    /// The AS number.
    pub asn: Asn,
    /// Hierarchy role.
    pub tier: Tier,
    /// The day the AS first appears in the routing system.
    pub born: DayIndex,
}

/// Parameters of the growth model.
#[derive(Debug, Clone)]
pub struct GrowthParams {
    /// Number of tier-1 core ASes (fully meshed peers).
    pub core_count: usize,
    /// Number of transit ASes at the end of the window.
    pub transit_count: usize,
    /// Number of edge ASes at the end of the window.
    pub edge_count: usize,
    /// First day of the world (ASes born before are "old").
    pub start: Date,
    /// Last day of the world.
    pub end: Date,
    /// Fraction of ASes already present at `start`.
    pub initial_fraction: f64,
    /// Probability that a transit AS gets a peer link to another
    /// transit AS (per node).
    pub transit_peering_prob: f64,
    /// Maximum providers for a multi-homed AS.
    pub max_providers: usize,
    /// Probability an edge AS is multi-homed (≥2 providers).
    pub edge_multihome_prob: f64,
}

impl Default for GrowthParams {
    fn default() -> Self {
        GrowthParams {
            core_count: 12,
            transit_count: 1_400,
            edge_count: 10_100,
            start: Date::ymd(1997, 11, 8),
            end: Date::ymd(2001, 8, 15),
            initial_fraction: 0.27,
            transit_peering_prob: 0.35,
            max_providers: 3,
            edge_multihome_prob: 0.30,
        }
    }
}

impl GrowthParams {
    /// A miniature world for unit tests and examples (~200 ASes).
    pub fn tiny() -> Self {
        GrowthParams {
            core_count: 5,
            transit_count: 40,
            edge_count: 160,
            ..GrowthParams::default()
        }
    }

    /// A world shrunk by `scale` but keeping enough structure for the
    /// analyses to behave: the core (and hence the region diversity
    /// the visibility model rests on) never drops below 10 ASes, and
    /// the transit/edge layers never shrink past the tiny world.
    pub fn scaled(scale: f64) -> Self {
        let d = GrowthParams::default();
        GrowthParams {
            core_count: d
                .core_count
                .min(10.max((d.core_count as f64 * scale) as usize)),
            transit_count: ((d.transit_count as f64 * scale) as usize).max(40),
            edge_count: ((d.edge_count as f64 * scale) as usize).max(160),
            ..d
        }
    }
}

/// Well-known ASNs given fixed roles so the scripted incidents read
/// like the paper (§VI-E): AS 8584 (1998-04-07 fault), AS 3561 /
/// AS 15412 (2001-04 fault), AS 7007 (1997 incident), and a few large
/// providers for flavor. The collector AS is 6447 (route-views).
pub mod well_known {
    use moas_net::Asn;

    /// Route Views collector AS.
    pub const COLLECTOR: Asn = Asn(6447);
    /// Large core providers of the era.
    pub const CORE: [u32; 12] = [
        701, 1239, 3561, 209, 3356, 7018, 2914, 174, 1299, 6453, 3549, 6461,
    ];
    /// AS that falsely originated ~11k prefixes on 1998-04-07.
    pub const FAULT_1998: Asn = Asn(8584);
    /// AS that falsely originated thousands of prefixes in April 2001.
    pub const FAULT_2001: Asn = Asn(15412);
    /// The transit AS through which the 2001 leak propagated.
    pub const FAULT_2001_TRANSIT: Asn = Asn(3561);
    /// The 1997 "AS 7007 incident" AS (prior art in §VI-E).
    pub const FAULT_1997: Asn = Asn(7007);
}

/// The AS-level topology.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<AsNode>,
    index: HashMap<Asn, usize>,
    /// Adjacency: for node `i`, `(neighbor index, relationship of the
    /// neighbor from i's perspective)`.
    adj: Vec<Vec<(u32, Rel)>>,
    params: GrowthParams,
}

impl Topology {
    /// Grows a topology deterministically from a seed.
    pub fn grow(params: GrowthParams, rng: &DetRng) -> Topology {
        let mut rng = rng.substream("topology");
        let mut topo = Topology {
            nodes: Vec::new(),
            index: HashMap::new(),
            adj: Vec::new(),
            params: params.clone(),
        };

        let window_days = params.start.days_until(&params.end).max(1);
        let total = params.core_count + params.transit_count + params.edge_count;
        let initial = ((total as f64) * params.initial_fraction) as usize;

        // ASN allocator: well-known ASNs get their reserved roles; the
        // rest are sequential, skipping reserved values.
        let mut reserved: Vec<u32> = well_known::CORE.to_vec();
        reserved.extend([
            well_known::COLLECTOR.value(),
            well_known::FAULT_1998.value(),
            well_known::FAULT_2001.value(),
            well_known::FAULT_1997.value(),
        ]);
        let mut next_asn = 2u32;
        let mut alloc_asn = move |fixed: Option<u32>| -> Asn {
            if let Some(v) = fixed {
                return Asn::new(v);
            }
            while reserved.contains(&next_asn) {
                next_asn += 1;
            }
            let a = Asn::new(next_asn);
            next_asn += 1;
            a
        };

        // Birth day for the i-th node overall: the first `initial`
        // nodes exist at start; the rest are spread over the window
        // (uniform with jitter — Internet growth was roughly linear in
        // AS count over 1998–2001).
        let birth = |i: usize, rng: &mut DetRng| -> DayIndex {
            if i < initial {
                params.start.day_index() - rng.range_inclusive(0, 600) as i64
            } else {
                let frac = (i - initial) as f64 / (total - initial).max(1) as f64;
                params.start.day_index() + (frac * window_days as f64) as i64
            }
        };

        // --- Core: fully meshed peers, all present from the start.
        for (k, &asn) in well_known::CORE.iter().take(params.core_count).enumerate() {
            let _ = k;
            topo.push_node(AsNode {
                asn: alloc_asn(Some(asn)),
                tier: Tier::Core,
                born: params.start.day_index() - 1000,
            });
        }
        for extra in well_known::CORE.len()..params.core_count {
            let _ = extra;
            topo.push_node(AsNode {
                asn: alloc_asn(None),
                tier: Tier::Core,
                born: params.start.day_index() - 1000,
            });
        }
        for a in 0..params.core_count {
            for b in (a + 1)..params.core_count {
                topo.link(a, b, Rel::Peer);
            }
        }

        // --- Transit ASes: preferential attachment to core + existing
        // transit; some transit-transit peering. Well-known fault ASes
        // FAULT_2001 (15412) is an edge customer of 3561 per the
        // incident write-up; FAULT_1998 / FAULT_1997 are edge too.
        let mut order = 0usize;
        for t in 0..params.transit_count {
            let i = topo.nodes.len();
            topo.push_node(AsNode {
                asn: alloc_asn(None),
                tier: Tier::Transit,
                born: birth(params.core_count + order, &mut rng),
            });
            order += 1;
            // 1–2 providers, preferentially high-degree, born earlier.
            let prov_count = 1 + rng.below(2) as usize;
            topo.attach_providers(i, prov_count, &mut rng);
            // Optional peering with another transit.
            if t > 4 && rng.chance(params.transit_peering_prob) {
                let peer = topo.pick_existing(Tier::Transit, i, &mut rng);
                if let Some(p) = peer {
                    if topo.rel_by_index(i, p).is_none() {
                        topo.link(i, p, Rel::Peer);
                    }
                }
            }
        }

        // --- Edge ASes (incident ASes first so they exist early).
        let fault_specs = [
            (well_known::FAULT_1997, Tier::Edge),
            (well_known::FAULT_1998, Tier::Edge),
            (well_known::FAULT_2001, Tier::Edge),
        ];
        for (asn, tier) in fault_specs {
            let i = topo.nodes.len();
            topo.push_node(AsNode {
                asn,
                tier,
                born: params.start.day_index() - 200,
            });
            if asn == well_known::FAULT_2001 {
                // The 2001 leak propagated via AS 3561: make 3561 its
                // provider explicitly.
                let p = topo.index[&well_known::FAULT_2001_TRANSIT];
                topo.link(i, p, Rel::Provider);
            } else {
                topo.attach_providers(i, 1, &mut rng);
            }
        }

        for _ in fault_specs.len()..params.edge_count {
            let i = topo.nodes.len();
            topo.push_node(AsNode {
                asn: alloc_asn(None),
                tier: Tier::Edge,
                born: birth(params.core_count + order, &mut rng),
            });
            order += 1;
            let prov_count = if rng.chance(params.edge_multihome_prob) {
                2 + rng.below(params.max_providers as u64 - 1) as usize
            } else {
                1
            };
            topo.attach_providers(i, prov_count, &mut rng);
        }

        topo
    }

    fn push_node(&mut self, node: AsNode) {
        let idx = self.nodes.len();
        self.index.insert(node.asn, idx);
        self.nodes.push(node);
        self.adj.push(Vec::new());
    }

    /// Adds a bidirectional edge; `rel` is the relationship of `b`
    /// from `a`'s perspective.
    fn link(&mut self, a: usize, b: usize, rel: Rel) {
        self.adj[a].push((b as u32, rel));
        self.adj[b].push((a as u32, rel.invert()));
    }

    /// Attaches `count` providers to node `i`, drawn preferentially by
    /// degree among core + transit nodes born before `i`.
    fn attach_providers(&mut self, i: usize, count: usize, rng: &mut DetRng) {
        let candidates: Vec<usize> = (0..i)
            .filter(|&j| matches!(self.nodes[j].tier, Tier::Core | Tier::Transit) && j != i)
            .collect();
        if candidates.is_empty() {
            return;
        }
        let weights: Vec<f64> = candidates
            .iter()
            .map(|&j| (self.adj[j].len() as f64 + 1.0).powf(1.05))
            .collect();
        let mut chosen: Vec<usize> = Vec::new();
        let mut guard = 0;
        while chosen.len() < count && guard < 50 {
            guard += 1;
            if let Some(k) = rng.choose_weighted(&weights) {
                let j = candidates[k];
                if !chosen.contains(&j) {
                    chosen.push(j);
                }
            }
        }
        for j in chosen {
            self.link(i, j, Rel::Provider);
        }
    }

    /// Picks an existing node of a tier other than `not`, uniformly.
    fn pick_existing(&self, tier: Tier, not: usize, rng: &mut DetRng) -> Option<usize> {
        let candidates: Vec<usize> = (0..self.nodes.len())
            .filter(|&j| self.nodes[j].tier == tier && j != not)
            .collect();
        rng.choose(&candidates).copied()
    }

    // ------------------------------------------------------------ views

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the topology is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The growth parameters used.
    pub fn params(&self) -> &GrowthParams {
        &self.params
    }

    /// All nodes.
    pub fn nodes(&self) -> &[AsNode] {
        &self.nodes
    }

    /// Node lookup by ASN.
    pub fn node(&self, asn: Asn) -> Option<&AsNode> {
        self.index.get(&asn).map(|&i| &self.nodes[i])
    }

    /// Whether an AS exists (ever).
    pub fn contains(&self, asn: Asn) -> bool {
        self.index.contains_key(&asn)
    }

    /// Whether an AS has appeared by `day`.
    pub fn alive_at(&self, asn: Asn, day: DayIndex) -> bool {
        self.node(asn).is_some_and(|n| n.born <= day)
    }

    /// The relationship of `b` from `a`'s perspective, if adjacent.
    pub fn rel(&self, a: Asn, b: Asn) -> Option<Rel> {
        let ia = *self.index.get(&a)?;
        let ib = *self.index.get(&b)?;
        self.rel_by_index(ia, ib)
    }

    fn rel_by_index(&self, ia: usize, ib: usize) -> Option<Rel> {
        self.adj[ia]
            .iter()
            .find(|(j, _)| *j as usize == ib)
            .map(|(_, r)| *r)
    }

    /// Neighbors of `asn` with the given relationship (from `asn`'s
    /// perspective): `Rel::Provider` yields the AS's providers.
    pub fn neighbors_with(&self, asn: Asn, rel: Rel) -> Vec<Asn> {
        let Some(&i) = self.index.get(&asn) else {
            return Vec::new();
        };
        self.adj[i]
            .iter()
            .filter(|(_, r)| *r == rel)
            .map(|(j, _)| self.nodes[*j as usize].asn)
            .collect()
    }

    /// All neighbors of `asn` with relationships.
    pub fn neighbors(&self, asn: Asn) -> Vec<(Asn, Rel)> {
        let Some(&i) = self.index.get(&asn) else {
            return Vec::new();
        };
        self.adj[i]
            .iter()
            .map(|(j, r)| (self.nodes[*j as usize].asn, *r))
            .collect()
    }

    /// ASes alive at `day`, optionally filtered by tier.
    pub fn alive_asns(&self, day: DayIndex, tier: Option<Tier>) -> Vec<Asn> {
        self.nodes
            .iter()
            .filter(|n| n.born <= day && tier.is_none_or(|t| n.tier == t))
            .map(|n| n.asn)
            .collect()
    }

    /// Degree of an AS (total adjacency count).
    pub fn degree(&self, asn: Asn) -> usize {
        self.index
            .get(&asn)
            .map(|&i| self.adj[i].len())
            .unwrap_or(0)
    }

    /// Summary statistics used by tests and DESIGN.md validation.
    pub fn stats(&self) -> TopologyStats {
        let mut stats = TopologyStats {
            as_count: self.nodes.len(),
            ..TopologyStats::default()
        };
        for n in &self.nodes {
            match n.tier {
                Tier::Core => stats.core_count += 1,
                Tier::Transit => stats.transit_count += 1,
                Tier::Edge => stats.edge_count += 1,
            }
        }
        let mut edge_pairs = 0usize;
        let mut max_degree = 0usize;
        for a in &self.adj {
            edge_pairs += a.len();
            max_degree = max_degree.max(a.len());
        }
        stats.edge_count_links = edge_pairs / 2;
        stats.max_degree = max_degree;
        stats
    }
}

/// Aggregate shape of a topology.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopologyStats {
    /// Total ASes.
    pub as_count: usize,
    /// Core (tier-1) ASes.
    pub core_count: usize,
    /// Transit ASes.
    pub transit_count: usize,
    /// Edge ASes.
    pub edge_count: usize,
    /// Undirected link count.
    pub edge_count_links: usize,
    /// Largest node degree.
    pub max_degree: usize,
}

#[cfg(test)]
mod tests {
    #![allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]
    use super::*;

    fn tiny() -> Topology {
        Topology::grow(GrowthParams::tiny(), &DetRng::new(7))
    }

    #[test]
    fn growth_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.len(), b.len());
        for (na, nb) in a.nodes().iter().zip(b.nodes()) {
            assert_eq!(na.asn, nb.asn);
            assert_eq!(na.born, nb.born);
        }
        let probe = a.nodes()[20].asn;
        assert_eq!(a.neighbors(probe), b.neighbors(probe));
    }

    #[test]
    fn different_seeds_differ() {
        let a = Topology::grow(GrowthParams::tiny(), &DetRng::new(1));
        let b = Topology::grow(GrowthParams::tiny(), &DetRng::new(2));
        let same = a
            .nodes()
            .iter()
            .zip(b.nodes())
            .filter(|(x, y)| x.born == y.born)
            .count();
        assert!(same < a.len(), "all birth days identical across seeds");
    }

    #[test]
    fn expected_node_counts() {
        let t = tiny();
        let s = t.stats();
        assert_eq!(s.core_count, 5);
        assert_eq!(s.transit_count, 40);
        assert_eq!(s.edge_count, 160);
        assert_eq!(s.as_count, 205);
    }

    #[test]
    fn core_is_fully_meshed_peers() {
        let t = tiny();
        let core: Vec<Asn> = t
            .nodes()
            .iter()
            .filter(|n| n.tier == Tier::Core)
            .map(|n| n.asn)
            .collect();
        for &a in &core {
            for &b in &core {
                if a != b {
                    assert_eq!(t.rel(a, b), Some(Rel::Peer));
                }
            }
        }
    }

    #[test]
    fn relationships_are_symmetric_inverses() {
        let t = tiny();
        for n in t.nodes() {
            for (nbr, rel) in t.neighbors(n.asn) {
                assert_eq!(t.rel(nbr, n.asn), Some(rel.invert()));
            }
        }
    }

    #[test]
    fn every_non_core_as_has_a_provider() {
        let t = tiny();
        for n in t.nodes() {
            if n.tier != Tier::Core {
                assert!(
                    !t.neighbors_with(n.asn, Rel::Provider).is_empty(),
                    "AS {} has no provider",
                    n.asn
                );
            }
        }
    }

    #[test]
    fn core_has_no_providers() {
        let t = tiny();
        for n in t.nodes() {
            if n.tier == Tier::Core {
                assert!(t.neighbors_with(n.asn, Rel::Provider).is_empty());
            }
        }
    }

    #[test]
    fn well_known_asns_present_with_roles() {
        let t = Topology::grow(GrowthParams::default(), &DetRng::new(2001));
        assert!(t.contains(well_known::FAULT_1998));
        assert!(t.contains(well_known::FAULT_2001));
        assert!(t.contains(well_known::FAULT_1997));
        // AS 15412's provider is AS 3561, as in the 2001 incident.
        assert_eq!(
            t.rel(well_known::FAULT_2001, well_known::FAULT_2001_TRANSIT),
            Some(Rel::Provider)
        );
        assert_eq!(t.node(Asn::new(701)).unwrap().tier, Tier::Core);
    }

    #[test]
    fn birth_days_cover_the_window() {
        let t = Topology::grow(GrowthParams::default(), &DetRng::new(2001));
        let start = t.params().start.day_index();
        let end = t.params().end.day_index();
        let alive_at_start = t.alive_asns(start, None).len();
        let alive_at_end = t.alive_asns(end, None).len();
        assert!(alive_at_start > 2_000, "got {alive_at_start}");
        assert!(alive_at_end > 11_000, "got {alive_at_end}");
        assert!(alive_at_start < alive_at_end);
        // Growth is monotone.
        let mid = start + (end - start) / 2;
        let alive_mid = t.alive_asns(mid, None).len();
        assert!(alive_at_start <= alive_mid && alive_mid <= alive_at_end);
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let t = Topology::grow(GrowthParams::default(), &DetRng::new(2001));
        let s = t.stats();
        // Preferential attachment: the max degree should far exceed
        // the mean degree.
        let mean = 2.0 * s.edge_count_links as f64 / s.as_count as f64;
        assert!(
            s.max_degree as f64 > mean * 10.0,
            "max {} vs mean {mean:.1}",
            s.max_degree
        );
    }

    #[test]
    fn unknown_asn_queries_are_safe() {
        let t = tiny();
        let ghost = Asn::new(999_999);
        assert!(!t.contains(ghost));
        assert!(t.neighbors(ghost).is_empty());
        assert_eq!(t.degree(ghost), 0);
        assert_eq!(t.rel(ghost, ghost), None);
        assert!(!t.alive_at(ghost, DayIndex(0)));
    }
}
