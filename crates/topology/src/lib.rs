//! # moas-topology — a synthetic AS-level Internet, 1997–2001
//!
//! The paper measures the real Internet; this crate provides the
//! substitute world the reproduction measures instead (see DESIGN.md §2
//! for the substitution argument). It models what the analysis actually
//! depends on:
//!
//! * an AS graph with **power-law degree structure** grown by
//!   preferential attachment ([`graph`]), annotated with Gao-Rexford
//!   **customer/provider/peer/sibling** relationships, growing from
//!   ~3 000 ASes (late 1997) to ~11 500 (mid 2001) with per-AS birth
//!   days;
//! * **prefix allocation** with the study era's mask-length mix —
//!   the bulk of the table at /24, the rest spread over /8–/23
//!   ([`prefixes`]), which drives Figure 5;
//! * **valley-free path synthesis** ([`paths`]): fast provider-chain
//!   join paths for bulk generation, plus a reference Gao-Rexford BFS
//!   (customer > peer > provider preference) used to validate the fast
//!   generator and for the routing ablation bench.
//!
//! Everything is seeded and deterministic (`moas_net::rng::DetRng`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod paths;
pub mod prefixes;

pub use graph::{AsNode, GrowthParams, Tier, Topology};
pub use paths::PathSynth;
pub use prefixes::{PrefixAllocator, PrefixPlan};
