//! Prefix allocation: who originates what, with the study era's
//! mask-length mix.
//!
//! Figure 5 of the paper ("/24 attracts most of the conflicts … since
//! /24 prefixes make up the bulk of the BGP routing table") is driven
//! by the mask-length distribution implemented here. The allocator
//! hands out globally unique prefixes from disjoint per-length pools
//! (mimicking registry carve-outs), and [`PrefixPlan`] assigns them to
//! ASes with per-tier origination counts and birth days so the table
//! grows from ~50 k routes (late 1997) to ~100 k (mid 2001).

use crate::graph::{Tier, Topology};
use moas_net::rng::DetRng;
use moas_net::{Asn, DayIndex, Ipv4Prefix};

/// Per-length /8 pool carve-out: `(mask length, first /8, number of
/// /8 blocks)`. Pools are disjoint, so two allocations never collide
/// regardless of length.
const POOLS: &[(u8, u32, u32)] = &[
    (8, 16, 48),
    (9, 64, 2),
    (10, 66, 2),
    (11, 68, 2),
    (12, 70, 2),
    (13, 72, 3),
    (14, 75, 5),
    (15, 80, 8),
    (16, 128, 56),
    (17, 88, 8),
    (18, 96, 8),
    (19, 104, 8),
    (20, 112, 4),
    (21, 116, 4),
    (22, 120, 4),
    (23, 124, 4),
    (24, 192, 14),
    (25, 208, 2),
    (26, 210, 2),
    (27, 212, 2),
    (28, 214, 2),
    (29, 216, 2),
    (30, 218, 2),
    (31, 220, 1),
    (32, 221, 1),
];

/// The dedicated exchange-point pool (modeled on real IXP space like
/// 198.32.0.0/16): /24s carved from the /8 block 206, kept out of the
/// general pools above.
const XP_POOL_BLOCK: u32 = 206;

/// Era mask-length weights for a *routing-table* draw. Dominated by
/// /24 with a secondary /16 mode — the classic pre-CIDR legacy plus
/// swamp-space shape of 1997–2001 tables.
pub const MASKLEN_WEIGHTS: &[(u8, f64)] = &[
    (8, 0.0003),
    (9, 0.00005),
    (10, 0.0001),
    (11, 0.0002),
    (12, 0.0006),
    (13, 0.0012),
    (14, 0.0030),
    (15, 0.0045),
    (16, 0.105),
    (17, 0.014),
    (18, 0.024),
    (19, 0.042),
    (20, 0.038),
    (21, 0.032),
    (22, 0.040),
    (23, 0.047),
    (24, 0.625),
    (25, 0.005),
    (26, 0.005),
    (27, 0.004),
    (28, 0.003),
    (29, 0.003),
    (30, 0.0025),
    (31, 0.0003),
    (32, 0.0016),
];

/// Draws a mask length from the era distribution.
pub fn sample_masklen(rng: &mut DetRng) -> u8 {
    let weights: Vec<f64> = MASKLEN_WEIGHTS.iter().map(|(_, w)| *w).collect();
    let i = rng.choose_weighted(&weights).unwrap_or(16);
    MASKLEN_WEIGHTS[i].0
}

/// A deterministic, collision-free prefix allocator.
#[derive(Debug, Clone)]
pub struct PrefixAllocator {
    cursors: [u64; 33],
    xp_cursor: u64,
}

impl Default for PrefixAllocator {
    fn default() -> Self {
        PrefixAllocator {
            cursors: [0; 33],
            xp_cursor: 0,
        }
    }
}

impl PrefixAllocator {
    /// Creates a fresh allocator (all pools empty).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pool capacity for a mask length.
    pub fn capacity(len: u8) -> u64 {
        POOLS
            .iter()
            .find(|(l, _, _)| *l == len)
            .map(|(l, _, blocks)| (*blocks as u64) << (l - 8))
            .unwrap_or(0)
    }

    /// Allocates the next unique prefix of the given length, or `None`
    /// when the pool is exhausted or the length has no pool (<8).
    pub fn alloc(&mut self, len: u8) -> Option<Ipv4Prefix> {
        let (l, first_block, blocks) = *POOLS.iter().find(|(l, _, _)| *l == len)?;
        let idx = self.cursors[len as usize];
        let cap = (blocks as u64) << (l - 8);
        if idx >= cap {
            return None;
        }
        self.cursors[len as usize] += 1;
        let base = first_block << 24;
        let bits = base + ((idx as u32) << (32 - l));
        Some(Ipv4Prefix::from_bits(bits, l))
    }

    /// Allocates an exchange-point /24 from the dedicated pool.
    pub fn alloc_exchange_point(&mut self) -> Option<Ipv4Prefix> {
        if self.xp_cursor >= 1 << 16 {
            return None;
        }
        let idx = self.xp_cursor as u32;
        self.xp_cursor += 1;
        Some(Ipv4Prefix::from_bits(
            (XP_POOL_BLOCK << 24) + (idx << 8),
            24,
        ))
    }

    /// Total prefixes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.cursors.iter().sum::<u64>() + self.xp_cursor
    }
}

/// One prefix-to-AS assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixAssignment {
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// The legitimate origin AS.
    pub owner: Asn,
    /// The day the prefix first appears in the table.
    pub born: DayIndex,
}

/// Parameters of the prefix plan.
#[derive(Debug, Clone)]
pub struct PlanParams {
    /// Mean prefixes originated per core AS.
    pub per_core: f64,
    /// Mean prefixes per transit AS.
    pub per_transit: f64,
    /// Mean prefixes per edge AS.
    pub per_edge: f64,
    /// Multiplier on the mean for ASes born before the window — legacy
    /// holders owned disproportionately many (often swamp-space /24s),
    /// which is what puts ~50 k routes in the table on day one.
    pub pre_window_boost: f64,
    /// For a pre-window AS, the fraction of its extra prefixes already
    /// announced before the window starts.
    pub pre_window_announced: f64,
}

impl Default for PlanParams {
    fn default() -> Self {
        PlanParams {
            per_core: 75.0,
            per_transit: 17.5,
            per_edge: 3.5,
            pre_window_boost: 2.4,
            pre_window_announced: 0.72,
        }
    }
}

/// The global origination plan: every legitimately announced prefix,
/// its owner, and its birth day.
#[derive(Debug, Clone)]
pub struct PrefixPlan {
    assignments: Vec<PrefixAssignment>,
}

impl PrefixPlan {
    /// Generates the plan for a topology. Deterministic per seed.
    pub fn generate(topo: &Topology, params: &PlanParams, rng: &DetRng) -> PrefixPlan {
        let mut rng = rng.substream("prefix-plan");
        let mut alloc = PrefixAllocator::new();
        let window_start = topo.params().start.day_index();
        let window_end = topo.params().end.day_index();
        let window = (window_end - window_start).max(1);
        let mut assignments = Vec::new();

        for node in topo.nodes() {
            let base = match node.tier {
                Tier::Core => params.per_core,
                Tier::Transit => params.per_transit,
                Tier::Edge => params.per_edge,
            };
            let pre_window = node.born < window_start;
            let mean = if pre_window {
                base * params.pre_window_boost
            } else {
                base
            };
            // Per-AS count: Poisson around the mean, ≥1.
            let count = (rng.poisson(mean).max(1)) as usize;
            for k in 0..count {
                let len = sample_masklen(&mut rng);
                let Some(prefix) = alloc.alloc(len) else {
                    continue; // pool exhausted: realistic tables never hit this
                };
                // First prefix appears when the AS does. For legacy
                // (pre-window) holders most extras are already in the
                // table at the start; everything else arrives spread
                // over the window (tables grow).
                let born = if k == 0 {
                    node.born
                } else if pre_window && rng.chance(params.pre_window_announced) {
                    window_start - rng.range_inclusive(0, 600) as i64
                } else {
                    let lo = node.born.max(window_start);
                    let span = (window_end - lo).max(1);
                    lo + rng.range_inclusive(0, span as u64) as i64
                };
                assignments.push(PrefixAssignment {
                    prefix,
                    owner: node.asn,
                    born,
                });
            }
        }
        let _ = window;
        // Sort by birth day so alive-prefix scans are a prefix of the
        // vector (ties broken by prefix for determinism).
        assignments.sort_by_key(|a| (a.born.0, a.prefix));
        PrefixPlan { assignments }
    }

    /// All assignments, sorted by birth day.
    pub fn assignments(&self) -> &[PrefixAssignment] {
        &self.assignments
    }

    /// Total number of planned prefixes.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Number of prefixes alive at `day` (binary search on birth).
    pub fn alive_count(&self, day: DayIndex) -> usize {
        self.assignments.partition_point(|a| a.born.0 <= day.0)
    }

    /// The assignments alive at `day`.
    pub fn alive_at(&self, day: DayIndex) -> &[PrefixAssignment] {
        &self.assignments[..self.alive_count(day)]
    }

    /// Samples one assignment alive at `day`.
    pub fn sample_alive(&self, day: DayIndex, rng: &mut DetRng) -> Option<&PrefixAssignment> {
        let n = self.alive_count(day);
        if n == 0 {
            return None;
        }
        Some(&self.assignments[rng.below(n as u64) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GrowthParams;
    use std::collections::HashSet;

    #[test]
    fn allocator_never_repeats_or_overlaps_within_length() {
        let mut alloc = PrefixAllocator::new();
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let p = alloc.alloc(24).unwrap();
            assert!(seen.insert(p), "duplicate {p}");
            assert_eq!(p.len(), 24);
        }
    }

    #[test]
    fn pools_are_disjoint_across_lengths() {
        let mut alloc = PrefixAllocator::new();
        let mut all: Vec<Ipv4Prefix> = Vec::new();
        for (len, _, _) in POOLS {
            for _ in 0..20 {
                if let Some(p) = alloc.alloc(*len) {
                    all.push(p);
                }
            }
        }
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert!(!all[i].overlaps(&all[j]), "{} overlaps {}", all[i], all[j]);
            }
        }
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let mut alloc = PrefixAllocator::new();
        let cap = PrefixAllocator::capacity(9);
        assert!(cap > 0 && cap < 10_000, "test assumes small /9 pool");
        for _ in 0..cap {
            assert!(alloc.alloc(9).is_some());
        }
        assert!(alloc.alloc(9).is_none());
    }

    #[test]
    fn no_pool_for_short_lengths() {
        let mut alloc = PrefixAllocator::new();
        assert!(alloc.alloc(0).is_none());
        assert!(alloc.alloc(7).is_none());
        assert!(alloc.alloc(33).is_none());
    }

    #[test]
    fn exchange_point_pool_is_disjoint_and_slash24() {
        let mut alloc = PrefixAllocator::new();
        let xp = alloc.alloc_exchange_point().unwrap();
        assert_eq!(xp.len(), 24);
        let mut seen = HashSet::new();
        seen.insert(xp);
        for _ in 0..50 {
            let p = alloc.alloc_exchange_point().unwrap();
            assert!(seen.insert(p));
            for (len, _, _) in POOLS {
                for _ in 0..4 {
                    if let Some(q) = alloc.alloc(*len) {
                        assert!(!p.overlaps(&q));
                    }
                }
            }
        }
    }

    #[test]
    fn masklen_distribution_is_slash24_heavy() {
        let mut rng = DetRng::new(9);
        let mut counts = [0usize; 33];
        let n = 50_000;
        for _ in 0..n {
            counts[sample_masklen(&mut rng) as usize] += 1;
        }
        let frac24 = counts[24] as f64 / n as f64;
        let frac16 = counts[16] as f64 / n as f64;
        assert!(
            (0.55..0.70).contains(&frac24),
            "/24 fraction {frac24} out of band"
        );
        assert!(
            (0.07..0.14).contains(&frac16),
            "/16 fraction {frac16} out of band"
        );
        // /24 must dominate every other length.
        for (l, &c) in counts.iter().enumerate() {
            if l != 24 {
                assert!(c < counts[24], "/{l} ({c}) >= /24 ({})", counts[24]);
            }
        }
    }

    fn plan() -> (Topology, PrefixPlan) {
        let rng = DetRng::new(11);
        let topo = Topology::grow(GrowthParams::tiny(), &rng);
        let plan = PrefixPlan::generate(&topo, &PlanParams::default(), &rng);
        (topo, plan)
    }

    #[test]
    fn plan_is_deterministic() {
        let (_, a) = plan();
        let (_, b) = plan();
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn plan_prefixes_unique_and_owned_by_real_ases() {
        let (topo, plan) = plan();
        let mut seen = HashSet::new();
        for a in plan.assignments() {
            assert!(seen.insert(a.prefix), "duplicate {}", a.prefix);
            assert!(topo.contains(a.owner));
        }
    }

    #[test]
    fn table_grows_over_the_window() {
        let (topo, plan) = plan();
        let start = topo.params().start.day_index();
        let end = topo.params().end.day_index();
        let at_start = plan.alive_count(start);
        let at_end = plan.alive_count(end);
        assert!(at_start > 0);
        assert!(
            at_end as f64 > at_start as f64 * 1.3,
            "{at_start} -> {at_end}"
        );
        assert_eq!(at_end, plan.alive_at(end).len());
    }

    #[test]
    fn birth_is_not_before_owner() {
        let (topo, plan) = plan();
        for a in plan.assignments() {
            let node = topo.node(a.owner).unwrap();
            assert!(
                a.born >= node.born || a.born >= topo.params().start.day_index() - 600,
                "prefix {} born {} before owner {}",
                a.prefix,
                a.born.0,
                node.born.0
            );
        }
    }

    #[test]
    fn sample_alive_respects_day() {
        let (topo, plan) = plan();
        let day = topo.params().start.day_index();
        let mut rng = DetRng::new(3);
        for _ in 0..100 {
            let a = plan.sample_alive(day, &mut rng).unwrap();
            assert!(a.born <= day);
        }
        assert!(plan
            .sample_alive(DayIndex(day.0 - 100_000), &mut rng)
            .is_none());
    }
}
