//! Valley-free AS-path synthesis.
//!
//! Two generators share the topology:
//!
//! * [`PathSynth`] — the fast provider-chain join used for bulk path
//!   generation (millions of paths over the study window). It climbs
//!   from both endpoints toward the core and joins at the first shared
//!   AS (or across the peered core), which is valley-free by
//!   construction.
//! * [`gao_rexford_routes`] — a reference implementation of policy
//!   routing: lexicographic Dijkstra over (route class, path length,
//!   tie-break), with export filters applied per Gao-Rexford. Tests
//!   validate `PathSynth` against it; the routing ablation bench
//!   measures the cost gap.

use crate::graph::{Tier, Topology};
use moas_bgp::policy::{may_export, Rel, RouteSource};
use moas_net::rng::DetRng;
use moas_net::Asn;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// SplitMix64 finalizer: a stable per-AS hash for canonical provider
/// choice (value-stable across platforms and releases, like `DetRng`).
fn stable_hash(x: u32) -> u64 {
    let mut z = (x as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fast valley-free path synthesizer.
#[derive(Debug, Clone, Copy)]
pub struct PathSynth<'t> {
    topo: &'t Topology,
}

impl<'t> PathSynth<'t> {
    /// Wraps a topology.
    pub fn new(topo: &'t Topology) -> Self {
        PathSynth { topo }
    }

    /// The provider chain from `asn` to a core AS, inclusive on both
    /// ends: `[asn, provider, ..., core]`. Provider choice is weighted
    /// by degree via `rng` (or canonical max-degree when `None`).
    fn chain_to_core(&self, asn: Asn, rng: &mut Option<&mut DetRng>) -> Vec<Asn> {
        let mut chain = vec![asn];
        let mut cur = asn;
        // Bounded climb: hierarchy depth is small; 16 is paranoia.
        for _ in 0..16 {
            let node = match self.topo.node(cur) {
                Some(n) => n,
                None => break,
            };
            if node.tier == Tier::Core {
                break;
            }
            let providers = self.topo.neighbors_with(cur, Rel::Provider);
            if providers.is_empty() {
                break;
            }
            let next = match rng {
                Some(r) => {
                    let weights: Vec<f64> = providers
                        .iter()
                        .map(|p| self.topo.degree(*p) as f64 + 1.0)
                        .collect();
                    providers[r.choose_weighted(&weights).unwrap_or(0)]
                }
                None => {
                    // Canonical: deterministic per-AS choice, degree-
                    // weighted via a stable hash. (A pure max-degree
                    // rule funnels every chain into one giant core,
                    // collapsing the region structure the visibility
                    // model depends on.)
                    let weights: Vec<u64> = providers
                        .iter()
                        .map(|p| self.topo.degree(*p) as u64 + 1)
                        .collect();
                    let total: u64 = weights.iter().sum();
                    let mut target = stable_hash(cur.value()) % total.max(1);
                    let mut chosen = providers[0];
                    for (i, w) in weights.iter().enumerate() {
                        if target < *w {
                            chosen = providers[i];
                            break;
                        }
                        target -= w;
                    }
                    chosen
                }
            };
            if chain.contains(&next) {
                break;
            }
            chain.push(next);
            cur = next;
        }
        chain
    }

    /// The core AS this AS canonically homes under (the top of its
    /// max-degree provider chain). Sessions homed under the same core
    /// form one "region" — used by the visibility model to build
    /// topologically clustered ISP vantages.
    pub fn canonical_core(&self, asn: Asn) -> Option<Asn> {
        if !self.topo.contains(asn) {
            return None;
        }
        let mut no_rng: Option<&mut DetRng> = None;
        self.chain_to_core(asn, &mut no_rng).last().copied()
    }

    /// A valley-free AS path from `vantage` to `origin`, in AS_PATH
    /// order (`vantage` first, `origin` last). Returns `None` when
    /// either endpoint is unknown. Passing a `rng` diversifies provider
    /// choices; without one the canonical path is returned.
    pub fn path(
        &self,
        vantage: Asn,
        origin: Asn,
        mut rng: Option<&mut DetRng>,
    ) -> Option<Vec<Asn>> {
        if !self.topo.contains(vantage) || !self.topo.contains(origin) {
            return None;
        }
        if vantage == origin {
            return Some(vec![origin]);
        }
        // Direct adjacency: use it when the edge is policy-usable
        // (vantage can reach origin through any relationship: the
        // origin's announcement to vantage is allowed for
        // self-originated routes on every edge type).
        if self.topo.rel(vantage, origin).is_some() {
            return Some(vec![vantage, origin]);
        }
        let up_v = self.chain_to_core(vantage, &mut rng);
        let up_o = self.chain_to_core(origin, &mut rng);
        // Join at the first AS of the vantage chain that also appears
        // in the origin chain (minimizes the combined length greedily).
        let pos_in_o: HashMap<Asn, usize> = up_o.iter().enumerate().map(|(i, a)| (*a, i)).collect();
        let mut best: Option<(usize, usize)> = None;
        for (i, a) in up_v.iter().enumerate() {
            if let Some(&j) = pos_in_o.get(a) {
                if best.is_none_or(|(bi, bj)| i + j < bi + bj) {
                    best = Some((i, j));
                }
            }
        }
        let mut path: Vec<Asn> = Vec::new();
        match best {
            Some((i, j)) => {
                path.extend_from_slice(&up_v[..=i]);
                for k in (0..j).rev() {
                    path.push(up_o[k]);
                }
            }
            None => {
                // Distinct cores: the core is fully meshed, so join
                // across one core-core peer edge.
                let top_v = *up_v.last().expect("chain nonempty");
                let top_o = *up_o.last().expect("chain nonempty");
                if self.topo.rel(top_v, top_o) != Some(Rel::Peer) {
                    return None; // disconnected islands (not grown today)
                }
                path.extend_from_slice(&up_v);
                for k in (0..up_o.len()).rev() {
                    path.push(up_o[k]);
                }
            }
        }
        debug_assert!(
            path.first() == Some(&vantage) && path.last() == Some(&origin),
            "endpoints mismatch"
        );
        Some(path)
    }
}

/// Per-AS result of the reference route computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyRoute {
    /// Route preference class: 0 self, 1 customer, 2 peer, 3 provider.
    pub class: u8,
    /// Path in AS_PATH order (this AS first, origin last).
    pub path: Vec<Asn>,
}

/// Reference Gao-Rexford route computation from a single origin,
/// returning the selected route per AS that can reach it.
///
/// Selection is lexicographic: lowest class (customer > peer >
/// provider, mirroring LOCAL_PREF practice), then shortest path, then
/// lowest next-hop ASN — a deterministic stand-in for router-id
/// tie-breaks.
pub fn gao_rexford_routes(topo: &Topology, origin: Asn) -> HashMap<Asn, PolicyRoute> {
    let mut best: HashMap<Asn, (u8, usize, u32)> = HashMap::new();
    let mut paths: HashMap<Asn, Vec<Asn>> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(u8, usize, u32, Asn)>> = BinaryHeap::new();

    if !topo.contains(origin) {
        return HashMap::new();
    }
    best.insert(origin, (0, 0, 0));
    paths.insert(origin, vec![origin]);
    heap.push(Reverse((0, 0, 0, origin)));

    while let Some(Reverse((class, len, tie, u))) = heap.pop() {
        if best.get(&u) != Some(&(class, len, tie)) {
            continue; // stale entry
        }
        let source = if class == 0 {
            RouteSource::SelfOriginated
        } else {
            RouteSource::From(match class {
                1 => Rel::Customer,
                2 => Rel::Peer,
                _ => Rel::Provider,
            })
        };
        for (w, rel_from_u) in topo.neighbors(u) {
            // `rel_from_u` is w's relationship from u's perspective.
            if !may_export(source, rel_from_u) {
                continue;
            }
            // w's class for a route learned from u depends on u's
            // relationship from w's perspective.
            let rel_from_w = rel_from_u.invert();
            let new_class = match rel_from_w {
                Rel::Customer => 1,
                Rel::Peer => 2,
                Rel::Provider => 3,
                Rel::Sibling => class.max(1), // transparent, but not self
            };
            let key = (new_class, len + 1, u.value());
            let better = match best.get(&w) {
                None => true,
                Some(cur) => key < *cur,
            };
            if better {
                best.insert(w, key);
                let mut p = Vec::with_capacity(len + 2);
                p.push(w);
                p.extend_from_slice(&paths[&u]);
                paths.insert(w, p);
                heap.push(Reverse((new_class, len + 1, u.value(), w)));
            }
        }
    }

    best.into_iter()
        .map(|(asn, (class, _, _))| {
            let path = paths.remove(&asn).expect("path recorded with best");
            PolicyRoute { class, path }
        })
        .zip_check()
}

/// Helper to rebuild the map with ASN keys (zip of keys and routes).
trait ZipCheck {
    fn zip_check(self) -> HashMap<Asn, PolicyRoute>;
}

impl<I: Iterator<Item = PolicyRoute>> ZipCheck for I {
    fn zip_check(self) -> HashMap<Asn, PolicyRoute> {
        self.map(|r| (r.path[0], r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GrowthParams;
    use moas_bgp::policy::is_valley_free;

    fn topo() -> Topology {
        Topology::grow(GrowthParams::tiny(), &DetRng::new(42))
    }

    #[test]
    fn self_path_is_trivial() {
        let t = topo();
        let s = PathSynth::new(&t);
        let a = t.nodes()[10].asn;
        assert_eq!(s.path(a, a, None), Some(vec![a]));
    }

    #[test]
    fn unknown_endpoints_yield_none() {
        let t = topo();
        let s = PathSynth::new(&t);
        let a = t.nodes()[0].asn;
        assert_eq!(s.path(a, Asn::new(999_999), None), None);
        assert_eq!(s.path(Asn::new(999_999), a, None), None);
    }

    #[test]
    fn paths_connect_endpoints_and_are_loop_free() {
        let t = topo();
        let s = PathSynth::new(&t);
        let nodes = t.nodes();
        for i in (0..nodes.len()).step_by(13) {
            for j in (0..nodes.len()).step_by(17) {
                let (v, o) = (nodes[i].asn, nodes[j].asn);
                let p = s.path(v, o, None).expect("connected world");
                assert_eq!(*p.first().unwrap(), v);
                assert_eq!(*p.last().unwrap(), o);
                let mut d = p.clone();
                d.sort_unstable();
                d.dedup();
                assert_eq!(d.len(), p.len(), "loop in path {p:?}");
            }
        }
    }

    #[test]
    fn synthesized_paths_are_valley_free() {
        let t = topo();
        let s = PathSynth::new(&t);
        let nodes = t.nodes();
        let rel = |a: Asn, b: Asn| t.rel(a, b);
        for i in (0..nodes.len()).step_by(7) {
            for j in (0..nodes.len()).step_by(11) {
                let (v, o) = (nodes[i].asn, nodes[j].asn);
                if let Some(p) = s.path(v, o, None) {
                    // Announcement order = reverse of AS_PATH order.
                    let ann: Vec<Asn> = p.iter().rev().copied().collect();
                    assert!(is_valley_free(&ann, rel), "valley in {v}->{o}: {p:?}");
                }
            }
        }
    }

    #[test]
    fn rng_diversifies_but_stays_valid() {
        let t = topo();
        let s = PathSynth::new(&t);
        let nodes = t.nodes();
        let v = nodes[nodes.len() - 1].asn;
        let o = nodes[nodes.len() - 5].asn;
        let mut distinct = std::collections::HashSet::new();
        for k in 0..20 {
            let mut rng = DetRng::new(5).substream_idx("path", k);
            let p = s.path(v, o, Some(&mut rng)).unwrap();
            assert_eq!(*p.first().unwrap(), v);
            assert_eq!(*p.last().unwrap(), o);
            distinct.insert(p);
        }
        // Multi-homing must produce some diversity in a 200-AS world.
        assert!(distinct.len() > 1, "no path diversity");
    }

    #[test]
    fn reference_routes_reach_everyone_in_connected_world() {
        let t = topo();
        let origin = t.nodes()[50].asn;
        let routes = gao_rexford_routes(&t, origin);
        // Every AS should reach the origin (the growth model attaches
        // every AS beneath the meshed core).
        assert_eq!(routes.len(), t.len());
        for (asn, r) in &routes {
            assert_eq!(r.path[0], *asn);
            assert_eq!(*r.path.last().unwrap(), origin);
        }
        assert_eq!(routes[&origin].class, 0);
    }

    #[test]
    fn reference_routes_are_valley_free() {
        let t = topo();
        let origin = t.nodes()[3].asn; // a core AS
        let routes = gao_rexford_routes(&t, origin);
        let rel = |a: Asn, b: Asn| t.rel(a, b);
        for r in routes.values() {
            let ann: Vec<Asn> = r.path.iter().rev().copied().collect();
            assert!(is_valley_free(&ann, rel), "valley in {:?}", r.path);
        }
    }

    #[test]
    fn reference_prefers_customer_routes() {
        let t = topo();
        let origin = t.nodes()[60].asn;
        let routes = gao_rexford_routes(&t, origin);
        // The origin's direct provider must use a customer route of
        // length 2 — nothing can beat it.
        for p in t.neighbors_with(origin, Rel::Provider) {
            let r = &routes[&p];
            assert_eq!(r.class, 1, "provider of origin should use customer route");
            assert_eq!(r.path.len(), 2);
        }
    }

    #[test]
    fn fast_paths_not_much_longer_than_reference() {
        let t = topo();
        let s = PathSynth::new(&t);
        let origin = t.nodes()[100].asn;
        let routes = gao_rexford_routes(&t, origin);
        let mut total_fast = 0usize;
        let mut total_ref = 0usize;
        for i in (0..t.len()).step_by(5) {
            let v = t.nodes()[i].asn;
            let fast = s.path(v, origin, None).unwrap();
            let reference = &routes[&v].path;
            total_fast += fast.len();
            total_ref += reference.len();
        }
        // The join heuristic may be longer but not pathologically so.
        assert!(
            (total_fast as f64) < (total_ref as f64) * 1.6,
            "fast {total_fast} vs ref {total_ref}"
        );
    }
}
