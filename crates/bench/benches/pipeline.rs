//! Pipeline-stage benches: snapshot assembly, detection, and
//! classification throughput on realistic day tables.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use moas_bench::bench_study;
use moas_core::classify::classify;
use moas_core::detect::detect;
use moas_routeviews::{BackgroundMode, Collector};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let study = bench_study(0.05);
    let idx = 900usize; // a busy 2000 day
    let mut collector = Collector::new(&study.world, &study.peers);
    let snap_conflicts = collector.snapshot_at(idx, BackgroundMode::None);
    let snap_full = collector.snapshot_at(idx, BackgroundMode::Full);

    // Snapshot assembly (conflicts only; the realizer cache is warm —
    // this is the steady-state per-day cost of a window scan).
    let mut group = c.benchmark_group("snapshot");
    group.bench_function("assemble_conflict_overlay", |b| {
        b.iter(|| black_box(collector.snapshot_at(idx, BackgroundMode::None)))
    });
    group.bench_function("assemble_with_sampled_background", |b| {
        b.iter(|| black_box(collector.snapshot_at(idx, BackgroundMode::Sample(40))))
    });
    group.finish();

    // Detection throughput in routes/second.
    let mut group = c.benchmark_group("detect");
    group.throughput(Throughput::Elements(snap_full.len() as u64));
    group.bench_function("full_table", |b| b.iter(|| black_box(detect(&snap_full))));
    group.throughput(Throughput::Elements(snap_conflicts.len() as u64));
    group.bench_function("conflict_overlay", |b| {
        b.iter(|| black_box(detect(&snap_conflicts)))
    });
    group.finish();

    // Classification of a day's conflict set.
    let obs = detect(&snap_conflicts);
    c.bench_function("classify_day", |b| {
        b.iter(|| {
            let mut counts = [0u32; 4];
            for conflict in &obs.conflicts {
                counts[classify(conflict).index()] += 1;
            }
            black_box(counts)
        })
    });

    // Incident-day detection: the 1998-04-07 spike table is ~10× the
    // normal day; this is the worst-case day scan.
    let spike_idx = study
        .world
        .window
        .snapshot_index(moas_net::Date::ymd(1998, 4, 7).day_index())
        .unwrap();
    let spike = collector.snapshot_at(spike_idx, BackgroundMode::None);
    let mut group = c.benchmark_group("detect_spike_day");
    group.sample_size(20);
    group.throughput(Throughput::Elements(spike.len() as u64));
    group.bench_function("1998_04_07", |b| b.iter(|| black_box(detect(&spike))));
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
