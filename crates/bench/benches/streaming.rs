//! Streaming benches: update-stream synthesis, replay throughput, and
//! the subMOAS covering-prefix analysis.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use moas_bench::bench_study;
use moas_core::replay::StreamReplayer;
use moas_core::submoas::detect_submoas;
use moas_routeviews::updates::day_transition;
use moas_routeviews::{BackgroundMode, Collector};
use std::hint::black_box;

fn bench_streaming(c: &mut Criterion) {
    let study = bench_study(0.05);
    let mut collector = Collector::new(&study.world, &study.peers);

    // A quiet transition and the incident onset.
    let incident = study
        .world
        .window
        .snapshot_index(moas_net::Date::ymd(1998, 4, 7).day_index())
        .unwrap();

    let (prev_q, _, stream_q) =
        day_transition(&mut collector, 700, 701, BackgroundMode::Sample(40));
    let (prev_i, _, stream_i) =
        day_transition(&mut collector, incident - 1, incident, BackgroundMode::None);
    eprintln!(
        "streams: quiet day {} records, incident onset {} records",
        stream_q.len(),
        stream_i.len()
    );

    let mut group = c.benchmark_group("update_stream");
    group.bench_function("synthesize_quiet_transition", |b| {
        b.iter(|| {
            black_box(day_transition(
                &mut collector,
                700,
                701,
                BackgroundMode::Sample(40),
            ))
        })
    });
    group.throughput(Throughput::Elements(stream_q.len() as u64));
    group.bench_function("replay_quiet_transition", |b| {
        b.iter(|| {
            let mut r = StreamReplayer::new();
            r.seed(&prev_q);
            r.apply_all(&stream_q);
            black_box(r.route_count())
        })
    });
    group.throughput(Throughput::Elements(stream_i.len() as u64));
    group.bench_function("replay_incident_onset", |b| {
        b.iter(|| {
            let mut r = StreamReplayer::new();
            r.seed(&prev_i);
            r.apply_all(&stream_i);
            black_box(r.route_count())
        })
    });
    group.finish();

    // Detection on the replayer's live table (the per-check cost of a
    // continuous monitor).
    let mut replayer = StreamReplayer::new();
    replayer.seed(&prev_i);
    replayer.apply_all(&stream_i);
    c.bench_function("detect_on_live_table", |b| {
        b.iter(|| black_box(replayer.detect_now(moas_net::Date::ymd(1998, 4, 7))))
    });

    // subMOAS: trie build + covering queries over a full small table.
    let snap = collector.snapshot_at(900, BackgroundMode::Full);
    let mut group = c.benchmark_group("submoas");
    group.sample_size(20);
    group.throughput(Throughput::Elements(snap.distinct_prefixes() as u64));
    group.bench_function("full_table_scan", |b| {
        b.iter(|| black_box(detect_submoas(&snap)))
    });
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
