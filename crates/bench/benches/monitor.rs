//! Monitor engine benches: sustained route-updates/sec through the
//! sharded streaming engine on the synthetic incident-onset stream
//! (the 1998-04-07 mass-fault day — the heaviest update burst in the
//! study window), at 1, 2, 4 and 8 shards.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use moas_bench::bench_study;
use moas_bgp::message::BgpMessage;
use moas_monitor::{MonitorConfig, MonitorEngine};
use moas_mrt::record::{MrtBody, MrtRecord};
use moas_mrt::snapshot::midnight_timestamp;
use moas_routeviews::updates::day_transition;
use moas_routeviews::{BackgroundMode, Collector};
use std::hint::black_box;

/// Route-level updates (announced + withdrawn prefixes) in a stream.
fn update_count(records: &[MrtRecord]) -> u64 {
    records
        .iter()
        .map(|r| match &r.body {
            MrtBody::Bgp4mpMessage(m) => match &m.message {
                BgpMessage::Update(u) => (u.all_announced().len() + u.all_withdrawn().len()) as u64,
                _ => 0,
            },
            _ => 0,
        })
        .sum()
}

fn bench_monitor(c: &mut Criterion) {
    let study = bench_study(0.05);
    let mut collector = Collector::new(&study.world, &study.peers);
    let incident = study
        .world
        .window
        .snapshot_index(moas_net::Date::ymd(1998, 4, 7).day_index())
        .unwrap();

    let (prev, _, stream) =
        day_transition(&mut collector, incident - 1, incident, BackgroundMode::None);
    let updates = update_count(&stream);
    eprintln!(
        "incident-onset stream: {} records, {} route updates",
        stream.len(),
        updates
    );

    // Cold ingest: engine lifecycle + full stream, per shard count.
    let mut group = c.benchmark_group("monitor_ingest");
    group.throughput(Throughput::Elements(updates));
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("incident_onset_{shards}_shards"), |b| {
            b.iter(|| {
                let mut engine = MonitorEngine::new(MonitorConfig::with_shards(shards));
                engine.ingest_all(&stream);
                black_box(engine.finish().events.len())
            })
        });
    }
    group.finish();

    // Warm ingest: the incident burst on top of a seeded full table —
    // the production shape (state already hot when the fault hits).
    let seed_updates = prev.len() as u64 + updates;
    let mut group = c.benchmark_group("monitor_seeded");
    group.throughput(Throughput::Elements(seed_updates));
    group.bench_function("seed_plus_incident_4_shards", |b| {
        b.iter(|| {
            let mut engine = MonitorEngine::new(MonitorConfig::with_shards(4));
            engine.seed_snapshot(&prev, midnight_timestamp(prev.date));
            engine.ingest_all(&stream);
            black_box(engine.finish().events.len())
        })
    });
    group.finish();

    // The query path: epoch snapshot of a hot engine.
    let mut engine = MonitorEngine::new(MonitorConfig::with_shards(4));
    engine.seed_snapshot(&prev, midnight_timestamp(prev.date));
    engine.ingest_all(&stream);
    c.bench_function("monitor_epoch_snapshot", |b| {
        b.iter(|| black_box(engine.snapshot().open_count()))
    });
    drop(engine.finish());
}

criterion_group!(benches, bench_monitor);
criterion_main!(benches);
