//! One bench per table/figure: the cost of regenerating each of the
//! paper's artifacts from an analyzed timeline, plus the end-to-end
//! analysis they depend on.
//!
//! The *data* behind each figure is validated elsewhere (tests and the
//! `figures` binary); these benches measure the regeneration cost so
//! regressions in the statistics layer show up.

use criterion::{criterion_group, criterion_main, Criterion};
use moas_bench::bench_study;
use moas_core::stats;
use moas_core::timeline::Timeline;
use moas_net::Date;
use std::hint::black_box;

/// Shared setup: a scaled study analyzed once.
fn analyzed() -> Timeline {
    let study = bench_study(0.02);
    study.analyze(2)
}

fn bench_figures(c: &mut Criterion) {
    let tl = analyzed();

    c.bench_function("bench_fig1_daily_counts", |b| {
        b.iter(|| black_box(stats::fig1_daily_counts(&tl)))
    });

    c.bench_function("bench_fig2_yearly_medians", |b| {
        b.iter(|| black_box(stats::fig2_yearly_medians(&tl, &[1998, 1999, 2000, 2001])))
    });

    c.bench_function("bench_fig3_durations", |b| {
        b.iter(|| black_box(stats::fig3_duration_histogram(&tl)))
    });

    c.bench_function("bench_fig4_expectations", |b| {
        b.iter(|| black_box(stats::fig4_expectations(&tl, &[0, 1, 9, 29, 89])))
    });

    c.bench_function("bench_fig5_masklen", |b| {
        b.iter(|| black_box(stats::fig5_masklen_by_year(&tl, &[1998, 1999, 2000, 2001])))
    });

    c.bench_function("bench_fig6_classes", |b| {
        b.iter(|| {
            black_box(stats::fig6_class_series(
                &tl,
                Date::ymd(2001, 5, 15),
                Date::ymd(2001, 8, 15),
            ))
        })
    });

    c.bench_function("bench_duration_summary", |b| {
        b.iter(|| black_box(stats::duration_summary(&tl)))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    // The full loop at a small scale: world + peers prebuilt, measure
    // the 1307-day analysis itself.
    let study = bench_study(0.01);
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("analyze_window_serial", |b| {
        b.iter(|| black_box(study.analyze(1)))
    });
    group.bench_function("analyze_window_2_threads", |b| {
        b.iter(|| black_box(study.analyze(2)))
    });
    group.finish();
}

criterion_group!(benches, bench_figures, bench_end_to_end);
criterion_main!(benches);
