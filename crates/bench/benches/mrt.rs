//! MRT format benches, including the TABLE_DUMP vs TABLE_DUMP_V2
//! ablation (archive size and parse throughput) that motivated the
//! format switch in the real archives.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use moas_bench::bench_study;
use moas_mrt::snapshot::{records_to_snapshot, snapshot_to_records, DumpFormat};
use moas_mrt::{MrtReader, MrtRecord, MrtWriter};
use moas_routeviews::{BackgroundMode, Collector};
use std::hint::black_box;

fn bench_mrt(c: &mut Criterion) {
    let study = bench_study(0.02);
    let mut collector = Collector::new(&study.world, &study.peers);
    let snap = collector.snapshot_at(900, BackgroundMode::Full);
    eprintln!(
        "table: {} routes, {} prefixes",
        snap.len(),
        snap.distinct_prefixes()
    );

    let v1_records = snapshot_to_records(&snap, DumpFormat::V1);
    let v2_records = snapshot_to_records(&snap, DumpFormat::V2);
    let encode_all = |records: &[MrtRecord]| -> Vec<u8> {
        let mut w = MrtWriter::new(Vec::new());
        w.write_all(records).unwrap();
        w.finish().unwrap()
    };
    let v1_bytes = encode_all(&v1_records);
    let v2_bytes = encode_all(&v2_records);
    eprintln!(
        "archive size ablation: v1 = {} KiB, v2 = {} KiB ({}% of v1)",
        v1_bytes.len() / 1024,
        v2_bytes.len() / 1024,
        v2_bytes.len() * 100 / v1_bytes.len().max(1)
    );

    let mut group = c.benchmark_group("mrt_encode");
    group.throughput(Throughput::Elements(snap.len() as u64));
    group.bench_function("table_dump_v1", |b| {
        b.iter(|| black_box(encode_all(&v1_records)))
    });
    group.bench_function("table_dump_v2", |b| {
        b.iter(|| black_box(encode_all(&v2_records)))
    });
    group.finish();

    let mut group = c.benchmark_group("mrt_parse");
    group.throughput(Throughput::Bytes(v1_bytes.len() as u64));
    group.bench_function("table_dump_v1", |b| {
        b.iter(|| {
            let mut reader = MrtReader::new(&v1_bytes[..]);
            let n = reader.by_ref().count();
            black_box(n)
        })
    });
    group.throughput(Throughput::Bytes(v2_bytes.len() as u64));
    group.bench_function("table_dump_v2", |b| {
        b.iter(|| {
            let mut reader = MrtReader::new(&v2_bytes[..]);
            let n = reader.by_ref().count();
            black_box(n)
        })
    });
    group.finish();

    // Full file→snapshot→detect path (what a window scan pays per day).
    let mut group = c.benchmark_group("mrt_to_observation");
    group.sample_size(20);
    group.bench_function("parse_rebuild_detect_v2", |b| {
        b.iter(|| {
            let mut reader = MrtReader::new(&v2_bytes[..]);
            let records: Vec<MrtRecord> = reader.by_ref().collect();
            let snap = records_to_snapshot(&records, None).unwrap();
            black_box(moas_core::detect::detect(&snap))
        })
    });
    group.finish();

    // Fault-injection overhead: a corrupt-record-riddled stream must
    // not collapse reader throughput.
    let mut corrupted = v1_bytes.clone();
    let mut off = 0usize;
    let mut k = 0usize;
    while off + 12 <= corrupted.len() {
        let len = u32::from_be_bytes([
            corrupted[off + 8],
            corrupted[off + 9],
            corrupted[off + 10],
            corrupted[off + 11],
        ]) as usize;
        if k % 10 == 5 && len > 8 {
            corrupted[off + 12 + len / 2] ^= 0xFF;
        }
        off += 12 + len;
        k += 1;
    }
    let mut group = c.benchmark_group("mrt_parse_corrupted");
    group.throughput(Throughput::Bytes(corrupted.len() as u64));
    group.bench_function("10pct_damaged_records", |b| {
        b.iter(|| {
            let mut reader = MrtReader::new(&corrupted[..]);
            let n = reader.by_ref().count();
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mrt);
criterion_main!(benches);
