//! History-store benches: event-append throughput through the
//! segmented log (the per-event cost a months-long deployment pays on
//! every lifecycle event), and compaction of a million-event log into
//! the conflict-record table (the §VI scoring input).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use moas_history::{ConflictStore, HistoryStore};
use moas_monitor::SeqEvent;

use std::path::PathBuf;

const EVENTS: usize = 1_000_000;
const PREFIXES: u32 = 4_096;

/// See [`moas_bench::synth_history_events`] — shared with the
/// quick-mode CI bench so both measure the same workload.
fn synth_events(n: usize) -> Vec<SeqEvent> {
    moas_bench::synth_history_events(n, PREFIXES)
}

fn bench_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("moas-history-bench-{}-{name}", std::process::id()))
}

fn bench_history(c: &mut Criterion) {
    let events = synth_events(EVENTS);

    // Append throughput: the full million-event log through the
    // segmented writer, rotating every ~"day" of synthetic stream.
    let dir = bench_dir("append");
    let mut group = c.benchmark_group("history_append");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.bench_function("segmented_log_1M_events", |b| {
        b.iter(|| {
            std::fs::remove_dir_all(&dir).ok();
            let mut store = HistoryStore::open(&dir).unwrap();
            for (day, chunk) in events.chunks(EVENTS / 30).enumerate() {
                store.append(chunk).unwrap();
                store.mark_day(day).unwrap();
            }
            store.seal().unwrap();
            store.stats().events_appended
        })
    });
    group.finish();

    // Compaction: scan the on-disk log and fold it into records.
    let dir2 = bench_dir("compact");
    std::fs::remove_dir_all(&dir2).ok();
    let mut store = HistoryStore::open(&dir2).unwrap();
    for (day, chunk) in events.chunks(EVENTS / 30).enumerate() {
        store.append(chunk).unwrap();
        store.mark_day(day).unwrap();
    }
    store.seal().unwrap();

    let mut group = c.benchmark_group("history_compact");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.bench_function("scan_plus_compact_1M_events", |b| {
        b.iter(|| {
            let (conflicts, scan) = store.compact().unwrap();
            assert!(scan.corrupt.is_empty());
            conflicts.records().len()
        })
    });
    // The in-memory fold alone (no disk), to separate IO from CPU.
    let scanned = store.scan().unwrap();
    group.bench_function("compact_in_memory_1M_events", |b| {
        b.iter(|| ConflictStore::from_events(&scanned.events).records().len())
    });
    group.finish();

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}

criterion_group!(benches, bench_history);
criterion_main!(benches);
