//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * radix trie vs `HashMap` for prefix-keyed state (exact lookup is
//!   the detector's hot path; relational queries are the trie's whole
//!   reason to exist);
//! * fast provider-chain path synthesis vs the reference Gao-Rexford
//!   computation;
//! * the BGP decision process cost;
//! * origin extraction cost on realistic paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use moas_bench::bench_study;
use moas_bgp::decision::{best_index, DecisionConfig};
use moas_bgp::Route;
use moas_net::rng::DetRng;
use moas_net::trie::RadixTrie;
use moas_net::{AsPath, Asn, Ipv4Prefix};
use moas_topology::paths::gao_rexford_routes;
use moas_topology::PathSynth;
use std::collections::HashMap;
use std::hint::black_box;

fn bench_trie_vs_hash(c: &mut Criterion) {
    // A realistic table: 50k prefixes from the study-era distribution.
    let study = bench_study(0.01);
    let day = study.world.window.start().day_index();
    let prefixes: Vec<Ipv4Prefix> = study
        .world
        .plan
        .alive_at(day)
        .iter()
        .map(|a| a.prefix)
        .collect();
    eprintln!("trie ablation over {} prefixes", prefixes.len());

    let mut trie: RadixTrie<Ipv4Prefix, u32> = RadixTrie::new();
    let mut map: HashMap<Ipv4Prefix, u32> = HashMap::new();
    for (i, p) in prefixes.iter().enumerate() {
        trie.insert(*p, i as u32);
        map.insert(*p, i as u32);
    }

    let mut group = c.benchmark_group("exact_lookup");
    group.throughput(Throughput::Elements(prefixes.len() as u64));
    group.bench_function("radix_trie", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &prefixes {
                acc += *trie.get(p).unwrap() as u64;
            }
            black_box(acc)
        })
    });
    group.bench_function("hash_map", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &prefixes {
                acc += *map.get(p).unwrap() as u64;
            }
            black_box(acc)
        })
    });
    group.finish();

    // The query class only the trie answers: longest-prefix match and
    // covered-set enumeration (aggregation-fault analysis).
    let probes: Vec<Ipv4Prefix> = prefixes.iter().step_by(7).copied().collect();
    let mut group = c.benchmark_group("relational_queries");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("longest_match", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes {
                if trie.longest_match(p).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("covering_sets", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for p in &probes {
                total += trie.covering(p).count();
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_path_synthesis(c: &mut Criterion) {
    let study = bench_study(0.02);
    let topo = &study.world.topo;
    let synth = PathSynth::new(topo);
    let nodes = topo.nodes();
    let origin = nodes[nodes.len() / 2].asn;
    let vantages: Vec<Asn> = nodes.iter().step_by(11).map(|n| n.asn).collect();

    let mut group = c.benchmark_group("path_synthesis");
    group.throughput(Throughput::Elements(vantages.len() as u64));
    group.bench_function("fast_join_paths", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for v in &vantages {
                if let Some(p) = synth.path(*v, origin, None) {
                    total += p.len();
                }
            }
            black_box(total)
        })
    });
    group.sample_size(10);
    group.bench_function("reference_gao_rexford_all_ases", |b| {
        b.iter(|| black_box(gao_rexford_routes(topo, origin).len()))
    });
    group.finish();
}

fn bench_decision_process(c: &mut Criterion) {
    // 30 candidate routes for one prefix (a well-peered prefix at a
    // large collector).
    let mut rng = DetRng::new(7);
    let prefix = "203.0.113.0/24".parse().unwrap();
    let candidates: Vec<(u16, Route)> = (0..30u16)
        .map(|i| {
            let hops = 2 + rng.below(5);
            let path =
                AsPath::from_sequence((0..hops).map(|h| Asn::new(100 + i as u32 * 10 + h as u32)));
            let mut route = Route::new(prefix, path);
            if rng.chance(0.3) {
                route.med = Some(rng.below(100) as u32);
            }
            (i, route)
        })
        .collect();
    c.bench_function("decision_best_of_30", |b| {
        b.iter(|| black_box(best_index(&candidates, &DecisionConfig::default())))
    });
}

fn bench_origin_extraction(c: &mut Criterion) {
    let paths: Vec<AsPath> = (0..1000)
        .map(|i| {
            let mut rng = DetRng::new(i);
            let hops = 1 + rng.below(6);
            AsPath::from_sequence((0..hops).map(|h| Asn::new(1 + (i as u32 + h as u32) % 30_000)))
        })
        .collect();
    let mut group = c.benchmark_group("origin_extraction");
    group.throughput(Throughput::Elements(paths.len() as u64));
    group.bench_function("per_path", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &paths {
                if let Some(o) = p.origin().as_single() {
                    acc += o.value() as u64;
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_trie_vs_hash,
    bench_path_synthesis,
    bench_decision_process,
    bench_origin_extraction
);
criterion_main!(benches);
