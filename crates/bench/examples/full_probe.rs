//! Full-scale probe: headline numbers plus the duration-heuristic
//! scores quoted in EXPERIMENTS.md.

use moas_core::causes::score_duration_heuristic;
use moas_lab::study::{Study, StudyConfig};

fn main() {
    let t = std::time::Instant::now();
    let study = Study::build(StudyConfig::paper());
    let tl = study.analyze(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2),
    );
    eprintln!("analyzed in {:?}", t.elapsed());
    println!("duration-heuristic scores (valid if duration > threshold):");
    for threshold in [1u32, 9, 29, 89] {
        let s = score_duration_heuristic(&tl, threshold, |p| study.ground_truth_valid(p));
        println!(
            "  >{threshold:>2} days: accuracy {:.1}%  invalid-precision {:.1}%  (TV {} TI {} FV {} FI {})",
            s.accuracy() * 100.0,
            s.invalid_precision() * 100.0,
            s.true_valid, s.true_invalid, s.false_valid, s.false_invalid
        );
    }
}
