//! # moas-bench — benchmark harness and figures binary
//!
//! * `src/bin/figures.rs` — regenerates every table and figure of the
//!   paper from a full study run (see EXPERIMENTS.md).
//! * `benches/` — Criterion benchmarks: one per pipeline stage and per
//!   figure, plus the ablation benches DESIGN.md calls out.
//!
//! The library part only re-exports a tiny helper for building scaled
//! studies shared by benches.

#![forbid(unsafe_code)]

use moas_lab::study::{Study, StudyConfig};

/// Builds the standard benchmark study (small scale, deterministic).
pub fn bench_study(scale: f64) -> Study {
    Study::build(StudyConfig::test(scale))
}
