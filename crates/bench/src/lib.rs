//! # moas-bench — benchmark harness and figures binary
//!
//! * `src/bin/figures.rs` — regenerates every table and figure of the
//!   paper from a full study run (see EXPERIMENTS.md).
//! * `benches/` — Criterion benchmarks: one per pipeline stage and per
//!   figure, plus the ablation benches DESIGN.md calls out.
//!
//! The library part only re-exports a tiny helper for building scaled
//! studies shared by benches.

#![forbid(unsafe_code)]

use moas_lab::study::{Study, StudyConfig};
use moas_monitor::{MonitorEvent, SeqEvent};
use moas_net::{Asn, Prefix};

/// Builds the standard benchmark study (small scale, deterministic).
pub fn bench_study(scale: f64) -> Study {
    Study::build(StudyConfig::test(scale))
}

/// A synthetic multi-month lifecycle-event log for history benches:
/// conflicts cycling over a pool of `prefixes`, each episode an open,
/// a flap pair, and a close. Shared by the Criterion history bench
/// and the quick-mode CI bench so both measure the same workload.
pub fn synth_history_events(n: usize, prefixes: u32) -> Vec<SeqEvent> {
    let pool: Vec<Prefix> = (0..prefixes)
        .map(|i| {
            format!("10.{}.{}.0/24", (i >> 8) & 0xFF, i & 0xFF)
                .parse()
                .unwrap()
        })
        .collect();
    let mut events = Vec::with_capacity(n);
    let mut seq = 0u64;
    let mut at = 0u32;
    while events.len() < n {
        let p = pool[(seq % prefixes as u64) as usize];
        let a = Asn::new(100 + (seq % 1024) as u32);
        let b = Asn::new(4_000 + (seq % 512) as u32);
        at += 30;
        for event in [
            MonitorEvent::ConflictOpened {
                prefix: p,
                origins: vec![a, b],
                at,
            },
            MonitorEvent::OriginAdded {
                prefix: p,
                origin: Asn::new(9_000),
                at: at + 5,
            },
            MonitorEvent::OriginWithdrawn {
                prefix: p,
                origin: Asn::new(9_000),
                at: at + 10,
            },
            MonitorEvent::ConflictClosed {
                prefix: p,
                opened_at: at,
                at: at + 20,
            },
        ] {
            events.push(SeqEvent {
                shard: (seq % 8) as usize,
                seq,
                event,
            });
            seq += 1;
        }
    }
    events.truncate(n);
    events
}
