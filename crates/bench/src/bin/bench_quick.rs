//! Quick-mode benchmark runner for CI regression gating.
//!
//! Unlike the Criterion benches (tuned for precision), this binary
//! runs a fixed small workload a few times, keeps the best run, and
//! writes machine-readable JSON — `BENCH_monitor.json`,
//! `BENCH_history.json`, `BENCH_server.json`, `BENCH_feed.json`,
//! `BENCH_federation.json`, and
//! `BENCH_obs.json` — for
//! `tools/bench_gate.rs` to compare against the checked-in baseline
//! (`ci/bench_baseline.json`). Total runtime is a few seconds, cheap
//! enough for every push.
//!
//! ```sh
//! cargo run --release -p moas-bench --bin bench_quick [-- OUT_DIR]
//! ```

use moas_bench::{bench_study, synth_history_events};
use moas_bgp::message::BgpMessage;
use moas_history::{HistoryService, HistoryStore, ServiceConfig};
use moas_monitor::{MonitorConfig, MonitorEngine};
use moas_mrt::record::{MrtBody, MrtRecord};
use moas_routeviews::updates::day_transition;
use moas_routeviews::BackgroundMode;
use moas_serve::{QueryServer, QueryService, ServerConfig};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Repetitions per measurement; the best (least-noisy) run wins.
const REPS: usize = 3;

fn main() -> std::io::Result<()> {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&out_dir)?;

    let monitor = bench_monitor();
    write_json(&out_dir.join("BENCH_monitor.json"), "monitor", &monitor)?;
    let history = bench_history();
    write_json(&out_dir.join("BENCH_history.json"), "history", &history)?;
    let server = bench_server()?;
    write_json(&out_dir.join("BENCH_server.json"), "server", &server)?;
    let feed = bench_feed()?;
    write_json(&out_dir.join("BENCH_feed.json"), "feed", &feed)?;
    let federation = bench_federation()?;
    write_json(
        &out_dir.join("BENCH_federation.json"),
        "federation",
        &federation,
    )?;
    let obs = bench_obs();
    write_json(&out_dir.join("BENCH_obs.json"), "obs", &obs)?;
    Ok(())
}

/// Route-level updates (announced + withdrawn prefixes) in a stream.
fn update_count(records: &[MrtRecord]) -> u64 {
    records
        .iter()
        .map(|r| match &r.body {
            MrtBody::Bgp4mpMessage(m) => match &m.message {
                BgpMessage::Update(u) => (u.all_announced().len() + u.all_withdrawn().len()) as u64,
                _ => 0,
            },
            _ => 0,
        })
        .sum()
}

/// Monitor: sustained route-updates/s through the 4-shard streaming
/// engine on the synthetic incident-onset stream.
fn bench_monitor() -> Vec<(&'static str, f64)> {
    let study = bench_study(0.02);
    let mut collector = moas_routeviews::Collector::new(&study.world, &study.peers);
    let incident = study
        .world
        .window
        .snapshot_index(moas_net::Date::ymd(1998, 4, 7).day_index())
        .expect("incident day in window");
    let (_, _, stream) =
        day_transition(&mut collector, incident - 1, incident, BackgroundMode::None);
    let updates = update_count(&stream);
    // Replay the day transition enough times that one measurement is
    // tens of milliseconds — a 30% gate needs headroom over timer and
    // scheduler noise, which a single ~1 ms pass would not give.
    let passes = (200_000 / updates.max(1)).clamp(1, 1_000);

    let mut best_updates_per_sec = 0f64;
    let mut events = 0u64;
    for _ in 0..REPS {
        let start = Instant::now();
        let mut engine = MonitorEngine::new(MonitorConfig::with_shards(4));
        for _ in 0..passes {
            engine.ingest_all(&stream);
        }
        let report = engine.finish();
        let secs = start.elapsed().as_secs_f64();
        events = report.metrics.events_emitted;
        best_updates_per_sec = best_updates_per_sec.max((updates * passes) as f64 / secs);
        black_box(report.events.len());
    }
    eprintln!(
        "monitor: {updates} updates x{passes}, {events} lifecycle events, best {best_updates_per_sec:.0} updates/s"
    );
    vec![("ingest_updates_per_sec", best_updates_per_sec)]
}

/// History: segmented-log append events/s, on-disk bytes/event, and
/// table-seeded compaction events/s.
fn bench_history() -> Vec<(&'static str, f64)> {
    const EVENTS: usize = 200_000;
    let events = synth_history_events(EVENTS, 2_048);
    let dir = std::env::temp_dir().join(format!("moas-bench-quick-{}", std::process::id()));

    let mut best_append = 0f64;
    let mut bytes_per_event = f64::MAX;
    for _ in 0..REPS {
        std::fs::remove_dir_all(&dir).ok();
        let start = Instant::now();
        let mut store = HistoryStore::open(&dir).expect("open bench store");
        for (day, chunk) in events.chunks(EVENTS / 30).enumerate() {
            store.append(chunk).expect("append");
            store.mark_day(day).expect("mark day");
        }
        store.seal().expect("seal");
        let secs = start.elapsed().as_secs_f64();
        best_append = best_append.max(EVENTS as f64 / secs);
        bytes_per_event = bytes_per_event.min(store.stats().retained_bytes as f64 / EVENTS as f64);
    }

    // Compaction over the last store written above.
    let store = HistoryStore::open(&dir).expect("reopen bench store");
    let mut best_compact = 0f64;
    for _ in 0..REPS {
        let start = Instant::now();
        let (conflicts, scan) = store.compact().expect("compact");
        assert!(scan.corrupt.is_empty());
        let secs = start.elapsed().as_secs_f64();
        best_compact = best_compact.max(EVENTS as f64 / secs);
        black_box(conflicts.records().len());
    }
    std::fs::remove_dir_all(&dir).ok();

    eprintln!(
        "history: best {best_append:.0} append events/s, {bytes_per_event:.1} bytes/event, best {best_compact:.0} compact events/s"
    );
    vec![
        ("append_events_per_sec", best_append),
        ("bytes_per_event", bytes_per_event),
        ("compact_events_per_sec", best_compact),
    ]
}

/// Server: loopback queries/s through the full stack (TCP + HTTP
/// parse + router), cached vs uncached. The uncached mode disables
/// the response cache so every request re-scores §VI validity from
/// the pinned snapshot; the cached mode answers hot queries with one
/// `Arc` clone. The ratio between the two is the cache's whole value
/// proposition — the baseline keeps both ends honest.
fn bench_server() -> std::io::Result<Vec<(&'static str, f64)>> {
    const EVENTS: usize = 240_000;
    const DAYS: usize = 30;
    let events = synth_history_events(EVENTS, 8_192);
    let dir = std::env::temp_dir().join(format!("moas-bench-server-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let service = HistoryService::open(
        &dir,
        ServiceConfig {
            daemon: false,
            ..ServiceConfig::default()
        },
    )?;
    for (day, chunk) in events.chunks(EVENTS / DAYS).enumerate() {
        service.append(chunk)?;
        service.mark_day(day)?;
    }

    let mut best_cached = 0f64;
    let mut best_uncached = 0f64;
    for _ in 0..REPS {
        best_cached = best_cached.max(measure_server(&service, 256)?);
        best_uncached = best_uncached.max(measure_server(&service, 0)?);
    }

    // Replicated read path: two read-only replicas over the writer's
    // (now quiesced) store — the serve-for-millions topology. Hot
    // cached queries and all-304 conditional replays split across the
    // replicas; cursor crawls page the writer.
    let replica_a = HistoryService::open_read_only(
        &dir,
        ServiceConfig {
            daemon: false,
            ..ServiceConfig::default()
        },
    )?;
    let replica_b = HistoryService::open_read_only(
        &dir,
        ServiceConfig {
            daemon: false,
            ..ServiceConfig::default()
        },
    )?;
    let mut best_replica = 0f64;
    let mut best_replica_p99_us = f64::MAX;
    let mut best_not_modified = 0f64;
    let mut best_paged = 0f64;
    for _ in 0..REPS {
        let (qps, p99) = measure_mix(&[&replica_a, &replica_b], Mix::Hot)?;
        best_replica = best_replica.max(qps);
        if let Some(p99) = p99 {
            best_replica_p99_us = best_replica_p99_us.min(p99 as f64);
        }
        best_not_modified =
            best_not_modified.max(measure_mix(&[&replica_a, &replica_b], Mix::NotModified)?.0);
        best_paged = best_paged.max(measure_mix(&[&service], Mix::Paged)?.0);
    }
    replica_a.close()?;
    replica_b.close()?;
    service.close()?;
    std::fs::remove_dir_all(&dir).ok();

    eprintln!(
        "server: best {best_cached:.0} cached queries/s, {best_uncached:.0} uncached (recompute) queries/s, {:.1}x speedup",
        best_cached / best_uncached.max(1.0)
    );
    eprintln!(
        "server: best {best_replica:.0} replica queries/s (p99 {best_replica_p99_us:.0} us), {best_not_modified:.0} 304s/s, {best_paged:.0} paged queries/s"
    );
    Ok(vec![
        ("cached_queries_per_sec", best_cached),
        ("uncached_queries_per_sec", best_uncached),
        ("replica_queries_per_sec", best_replica),
        ("replica_p99_us", best_replica_p99_us),
        ("not_modified_per_sec", best_not_modified),
        ("paginated_queries_per_sec", best_paged),
    ])
}

/// The request mix one replicated-topology measurement drives.
#[derive(Clone, Copy)]
enum Mix {
    /// Hot cached GETs of the validity summary.
    Hot,
    /// Conditional GETs replaying a captured `ETag`; every answer is
    /// a bodyless 304.
    NotModified,
    /// Cursor crawls: page through `/v1/validity` following
    /// `next_cursor`, restarting each time a crawl completes.
    Paged,
}

/// One time-boxed measurement over one server per service (clients
/// round-robin across them). Returns requests/s and the worst
/// server-side p99 in microseconds.
fn measure_mix(services: &[&HistoryService], mix: Mix) -> std::io::Result<(f64, Option<u64>)> {
    const CLIENTS: usize = 4;
    const WINDOW: Duration = Duration::from_millis(350);
    const TARGET: &str = "/v1/validity?limit=0";
    const PAGE_TARGET: &str = "/v1/validity?limit=500";

    let queries: Vec<Arc<QueryService>> = services
        .iter()
        .map(|service| {
            Arc::new(QueryService::new(
                service.reader(),
                ServerConfig {
                    workers: CLIENTS,
                    cache_capacity: 256,
                    keep_alive_requests: u32::MAX,
                    ..ServerConfig::default()
                },
            ))
        })
        .collect();
    let servers: Vec<QueryServer> = queries
        .iter()
        .map(|q| QueryServer::bind("127.0.0.1:0", Arc::clone(q)))
        .collect::<std::io::Result<_>>()?;
    let addrs: Vec<SocketAddr> = servers.iter().map(|s| s.local_addr()).collect();
    for &addr in &addrs {
        loopback_get(addr, TARGET)?;
    }

    let start = Instant::now();
    let total: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let addr = addrs[i % addrs.len()];
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut writer = stream;
                    let mut n = 0u64;
                    match mix {
                        Mix::Hot => {
                            while start.elapsed() < WINDOW {
                                request(&mut reader, &mut writer, TARGET).expect("request");
                                n += 1;
                            }
                        }
                        Mix::NotModified => {
                            let (status, etag, _) = request_raw(
                                &mut reader,
                                &mut writer,
                                &format!("GET {TARGET} HTTP/1.1\r\nhost: bench\r\n\r\n"),
                            )
                            .expect("capture etag");
                            assert_eq!(status, 200);
                            let etag = etag.expect("cacheable 200 must carry an etag");
                            let head = format!(
                                "GET {TARGET} HTTP/1.1\r\nhost: bench\r\nif-none-match: {etag}\r\n\r\n"
                            );
                            while start.elapsed() < WINDOW {
                                let (status, _, _) = request_raw(&mut reader, &mut writer, &head)
                                    .expect("conditional request");
                                assert_eq!(status, 304, "validator must match");
                                n += 1;
                            }
                        }
                        Mix::Paged => {
                            let mut cursor: Option<String> = None;
                            while start.elapsed() < WINDOW {
                                let target = match &cursor {
                                    None => PAGE_TARGET.to_string(),
                                    Some(c) => format!("{PAGE_TARGET}&cursor={c}"),
                                };
                                let (status, _, body) = request_raw(
                                    &mut reader,
                                    &mut writer,
                                    &format!("GET {target} HTTP/1.1\r\nhost: bench\r\n\r\n"),
                                )
                                .expect("page request");
                                assert_eq!(status, 200, "page must render");
                                cursor = next_cursor(&body);
                                n += 1;
                            }
                        }
                    }
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });
    let secs = start.elapsed().as_secs_f64();
    for server in servers {
        server.shutdown();
    }
    let p99 = queries
        .iter()
        .filter_map(|q| q.metrics().stats(q.cache_stats()).p99_micros)
        .max();
    Ok((total as f64 / secs, p99))
}

/// Pulls `"next_cursor":"..."` out of a compact JSON body without a
/// full parse (`None` on `null`, i.e. the crawl's last page).
fn next_cursor(body: &[u8]) -> Option<String> {
    let body = std::str::from_utf8(body).ok()?;
    let rest = body.split_once("\"next_cursor\":\"")?.1;
    Some(rest.split_once('"')?.0.to_string())
}

/// Feed: catch-up throughput (files/s over a pre-rendered simulated
/// collector window) and end-to-end update lag (a freshly landed
/// update file → the previous day's epoch published to readers).
fn bench_feed() -> std::io::Result<Vec<(&'static str, f64)>> {
    use moas_feed::{FeedConfig, FeedFollower};
    use moas_monitor::MonitorConfig;
    use moas_routeviews::SimFeed;

    const CATCHUP_DAYS: usize = 20;
    const LAG_DAYS: usize = 5;

    let study = bench_study(0.02);
    let start = study.world.window.all_days()[0].date();
    let archive = std::env::temp_dir().join(format!("moas-bench-feed-{}", std::process::id()));
    let store = std::env::temp_dir().join(format!("moas-bench-feedstore-{}", std::process::id()));
    std::fs::remove_dir_all(&archive).ok();

    let mut collector = moas_routeviews::Collector::new(&study.world, &study.peers);
    let mut sim = SimFeed::new(
        &mut collector,
        &archive,
        0,
        CATCHUP_DAYS + LAG_DAYS,
        moas_routeviews::BackgroundMode::Sample(10),
    )?;
    let mut total_records = 0u64;
    for _ in 0..CATCHUP_DAYS {
        total_records += sim.append_day()?.expect("day in window").records as u64;
    }

    // Catch-up: best files/s over fresh follower+store runs.
    let mut best_files_per_sec = 0f64;
    for _ in 0..REPS {
        std::fs::remove_dir_all(&store).ok();
        let service = Arc::new(HistoryService::open(
            &store,
            ServiceConfig {
                start_date: start,
                daemon: false,
                ..ServiceConfig::default()
            },
        )?);
        let config = FeedConfig {
            monitor: MonitorConfig::with_shards(4),
            ..FeedConfig::new(archive.clone(), start)
        };
        let t0 = Instant::now();
        let mut follower = FeedFollower::open(config, Arc::clone(&service))?;
        while !follower.poll_once()?.caught_up {}
        let secs = t0.elapsed().as_secs_f64();
        best_files_per_sec = best_files_per_sec.max(CATCHUP_DAYS as f64 / secs);
        follower.shutdown()?;
        drop(service);
    }

    // Lag: land one more day, poll until its predecessor's day mark
    // publishes a new epoch. Best (least-noisy) of LAG_DAYS landings.
    std::fs::remove_dir_all(&store).ok();
    let service = Arc::new(HistoryService::open(
        &store,
        ServiceConfig {
            start_date: start,
            daemon: false,
            ..ServiceConfig::default()
        },
    )?);
    let config = FeedConfig {
        monitor: MonitorConfig::with_shards(4),
        ..FeedConfig::new(archive.clone(), start)
    };
    let mut follower = FeedFollower::open(config, Arc::clone(&service))?;
    while !follower.poll_once()?.caught_up {}
    let reader = service.reader();
    let mut best_lag_ms = f64::MAX;
    for _ in 0..LAG_DAYS {
        let epoch = reader.epoch();
        let t0 = Instant::now();
        sim.append_day()?.expect("lag day in window");
        while reader.epoch() == epoch {
            follower.poll_once()?;
        }
        best_lag_ms = best_lag_ms.min(t0.elapsed().as_secs_f64() * 1_000.0);
    }
    follower.shutdown()?;
    drop(service);
    std::fs::remove_dir_all(&archive).ok();
    std::fs::remove_dir_all(&store).ok();

    eprintln!(
        "feed: {total_records} records over {CATCHUP_DAYS} files, best {best_files_per_sec:.1} files/s catch-up, best {best_lag_ms:.2} ms update lag"
    );
    Ok(vec![
        ("catchup_files_per_sec", best_files_per_sec),
        ("update_lag_ms", best_lag_ms),
    ])
}

/// Federation: merged catch-up over four identical archives vs the
/// same content through one collector — merged files/s, the marginal
/// dedup cost per duplicate update, and the §VI corroborated-validity
/// recompute rate over the resulting store.
fn bench_federation() -> std::io::Result<Vec<(&'static str, f64)>> {
    use moas_feed::{Federation, FederationConfig};
    use moas_history::ValidityConfig;
    use moas_monitor::MonitorConfig;
    use moas_routeviews::{SimCollectorSpec, SimFederation};

    const DAYS: usize = 12;
    // One validity report builds in well under a millisecond; batch
    // enough passes per measurement to rise above timer noise.
    const VALIDITY_PASSES: usize = 50;

    let study = bench_study(0.02);
    let start = study.world.window.all_days()[0].date();
    let base = std::env::temp_dir().join(format!("moas-bench-fed-{}", std::process::id()));
    let store = std::env::temp_dir().join(format!("moas-bench-fedstore-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    let mut collector = moas_routeviews::Collector::new(&study.world, &study.peers);
    let mut sim = SimFederation::new(
        &mut collector,
        &base,
        0,
        DAYS,
        moas_routeviews::BackgroundMode::Sample(10),
        vec![
            SimCollectorSpec::new("a"),
            SimCollectorSpec::new("b").skewed(30),
            SimCollectorSpec::new("c").skewed(-45),
            SimCollectorSpec::new("d").skewed(60),
        ],
    )?;
    let mut records = 0u64;
    while let Some(day) = sim.append_day()? {
        records += day.collectors[0].as_ref().expect("no skip days").1 as u64;
    }
    let dirs = sim.dirs();
    let names = ["a", "b", "c", "d"];

    // One full catch-up over the first `width` collectors into a
    // fresh store (cursors live in the store, so each run replays the
    // whole archive). Returns elapsed seconds and the service.
    let run = |width: usize| -> std::io::Result<(f64, Arc<HistoryService>)> {
        std::fs::remove_dir_all(&store).ok();
        let service = Arc::new(HistoryService::open(
            &store,
            ServiceConfig {
                start_date: start,
                daemon: false,
                ..ServiceConfig::default()
            },
        )?);
        let mut config = FederationConfig {
            monitor: MonitorConfig::with_shards(4),
            ..FederationConfig::new(start)
        };
        for (name, dir) in names.iter().zip(&dirs).take(width) {
            config = config.collector(*name, dir);
        }
        let t0 = Instant::now();
        let mut fed = Federation::open(config, Arc::clone(&service))?;
        while !fed.poll_once()?.caught_up {}
        let secs = t0.elapsed().as_secs_f64();
        fed.shutdown()?;
        Ok((secs, service))
    };

    let mut best_single = f64::MAX;
    for _ in 0..REPS {
        best_single = best_single.min(run(1)?.0);
    }
    let mut best_merged = f64::MAX;
    let mut last_service = None;
    for _ in 0..REPS {
        let (secs, service) = run(4)?;
        best_merged = best_merged.min(secs);
        last_service = Some(service);
    }
    let service = last_service.expect("REPS >= 1");
    let files_per_sec = (4 * DAYS) as f64 / best_merged;
    // The merged run consumes four copies of every update but
    // releases one: its extra time over the single fold, spread over
    // the 3x`records` duplicates, is the dedup tax per duplicate.
    let dedup_ns = ((best_merged - best_single).max(0.0) / (3 * records.max(1)) as f64) * 1e9;

    let snap = service.reader().snapshot();
    let mut best_validity_per_sec = 0f64;
    for _ in 0..REPS {
        let t0 = Instant::now();
        for _ in 0..VALIDITY_PASSES {
            black_box(snap.validity(ValidityConfig::default()).tally());
        }
        let secs = t0.elapsed().as_secs_f64();
        best_validity_per_sec = best_validity_per_sec.max(VALIDITY_PASSES as f64 / secs);
    }
    drop(snap);
    drop(service);
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&store).ok();

    eprintln!(
        "federation: {records} records x4 collectors over {DAYS} days, best {files_per_sec:.1} merged files/s, {dedup_ns:.1} ns/update dedup overhead, {best_validity_per_sec:.0} validity recomputes/s"
    );
    Ok(vec![
        ("merged_catchup_files_per_sec", files_per_sec),
        ("dedup_overhead_ns_per_update", dedup_ns),
        ("validity_recompute_per_sec", best_validity_per_sec),
    ])
}

/// Observability: cost of the hot record path (counter add, histogram
/// observe — both on the ingest fast path, so they must stay in the
/// nanoseconds) and of one full `/metrics` render over a registry
/// populated like a live pipeline's.
fn bench_obs() -> Vec<(&'static str, f64)> {
    use moas_obs::Registry;

    const OPS: u64 = 4_000_000;
    const RENDERS: u32 = 200;

    let registry = Arc::new(Registry::new());
    let counter = registry.counter("bench_ops_total", "Bench counter.");
    let hist = registry.histogram("bench_lat_us", "Bench histogram.");

    let mut best_counter_ns = f64::MAX;
    let mut best_observe_ns = f64::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..OPS {
            counter.add(1);
        }
        best_counter_ns = best_counter_ns.min(start.elapsed().as_nanos() as f64 / OPS as f64);

        let start = Instant::now();
        for i in 0..OPS {
            hist.observe(i % 100_000);
        }
        best_observe_ns = best_observe_ns.min(start.elapsed().as_nanos() as f64 / OPS as f64);
    }
    black_box(counter.get());

    // A render-side registry shaped like a live deployment: every
    // pipeline stage, plus a spread of counters and gauges per
    // subsystem, all with recorded data.
    let full = Registry::new();
    for stage in [
        "mrt_decode",
        "shard_apply",
        "event_append",
        "segment_seal",
        "compaction",
        "epoch_publish",
        "feed_poll",
        "feed_tail",
        "request_parse",
        "request_route",
        "request_serialize",
    ] {
        let h = full.stage_histogram(stage);
        for i in 0..64 {
            h.observe(1 << (i % 20));
        }
    }
    for i in 0..40 {
        full.counter_with(
            "bench_requests_total",
            &[("path", &format!("/v{i}"))],
            "Req.",
        )
        .add(i);
        full.gauge_with("bench_depth", &[("shard", &format!("{i}"))], "Depth.")
            .set(i);
    }
    let mut best_render_ns = f64::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..RENDERS {
            black_box(full.render_prometheus().len());
        }
        best_render_ns = best_render_ns.min(start.elapsed().as_nanos() as f64 / RENDERS as f64);
    }

    // Tracing: the unsampled path (sampling off — one relaxed load
    // per would-be span; this is what every hot-path request pays when
    // head sampling skips it) vs. the sampled path (full root span:
    // id allocation, two clock reads, ring write).
    const SPAN_OPS: u64 = 1_000_000;
    let tracer = registry.tracer();
    let mut best_unsampled_ns = f64::MAX;
    let mut best_sampled_ns = f64::MAX;
    for _ in 0..REPS {
        tracer.set_sampling(0);
        let start = Instant::now();
        for _ in 0..SPAN_OPS {
            black_box(tracer.span("bench_span")).finish();
        }
        best_unsampled_ns =
            best_unsampled_ns.min(start.elapsed().as_nanos() as f64 / SPAN_OPS as f64);

        tracer.set_sampling(1);
        let start = Instant::now();
        for _ in 0..SPAN_OPS {
            black_box(tracer.span("bench_span")).finish();
        }
        best_sampled_ns = best_sampled_ns.min(start.elapsed().as_nanos() as f64 / SPAN_OPS as f64);
    }
    tracer.set_sampling(1);

    // Tsdb: one full sample tick over the live-shaped registry above
    // (every scalar + windowed histogram quantiles) — the cost the
    // background sampler pays every 10 s.
    const TICKS: u64 = 2_000;
    let tsdb = moas_obs::Tsdb::default();
    let mut best_tick_us = f64::MAX;
    for rep in 0..REPS as u64 {
        let start = Instant::now();
        for i in 0..TICKS {
            tsdb.sample(&full, 1_000_000 + (rep * TICKS + i) * 10);
        }
        best_tick_us = best_tick_us.min(start.elapsed().as_micros() as f64 / TICKS as f64);
    }
    black_box(tsdb.series_count());

    // Per-thread CPU attribution: one full /proc/self/task sweep —
    // the price the sampler tick (and every /metrics scrape) pays.
    const CPU_SAMPLES: u32 = 200;
    let cpu = moas_obs::CpuLedger::new(Arc::clone(&registry));
    let mut best_cpu_sample_us = f64::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..CPU_SAMPLES {
            black_box(cpu.sample());
        }
        best_cpu_sample_us =
            best_cpu_sample_us.min(start.elapsed().as_micros() as f64 / CPU_SAMPLES as f64);
    }

    // Folded-stack rendering over a profiler holding a realistic
    // window: ~500 ingest-shaped traces folded into the ring.
    const FOLD_RENDERS: u32 = 200;
    let prof_registry = Arc::new(Registry::new());
    let profiler = moas_obs::Profiler::new(Arc::clone(&prof_registry));
    let prof_tracer = prof_registry.tracer();
    for _ in 0..500 {
        let root = prof_tracer.span("feed_poll");
        let ctx = root.context();
        prof_tracer.record_child(ctx, "mrt_decode", Duration::from_micros(700));
        prof_tracer.record_child(ctx, "shard_apply", Duration::from_micros(200));
        prof_tracer.record_child(ctx, "event_append", Duration::from_micros(90));
        root.finish();
        profiler.collect();
    }
    let fold_now = moas_obs::tsdb::unix_now();
    let mut best_folded_us = f64::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..FOLD_RENDERS {
            black_box(profiler.folded(3_600, fold_now).len());
        }
        best_folded_us =
            best_folded_us.min(start.elapsed().as_micros() as f64 / FOLD_RENDERS as f64);
    }

    // Workload recording: the per-request cost of the top-k sketch,
    // the lazy per-endpoint histograms, and the slow-log check, over
    // a realistic endpoint/key spread.
    const WORKLOAD_OPS: u64 = 400_000;
    let workload = moas_obs::Workload::new(Arc::new(Registry::new()), 250_000);
    let endpoints = ["/v1/stats", "/v1/conflicts", "/v1/prefix/{prefix}"];
    let mut best_workload_ns = f64::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        for i in 0..WORKLOAD_OPS {
            workload.record(
                endpoints[(i % 3) as usize],
                black_box("10.0.0.0/8"),
                "/v1/x?y=1",
                i % 10_000,
                512,
                200,
                i,
            );
        }
        best_workload_ns =
            best_workload_ns.min(start.elapsed().as_nanos() as f64 / WORKLOAD_OPS as f64);
    }
    black_box(workload.report(10).recorded);

    eprintln!(
        "obs: best {best_counter_ns:.2} ns/counter-add, {best_observe_ns:.2} ns/observe, {best_render_ns:.0} ns/render, {best_unsampled_ns:.2}/{best_sampled_ns:.0} ns/span (unsampled/sampled), {best_tick_us:.1} us/tsdb-tick, {best_cpu_sample_us:.1} us/cpu-sample, {best_folded_us:.1} us/folded-render, {best_workload_ns:.0} ns/workload-record"
    );
    vec![
        ("counter_add_ns", best_counter_ns),
        ("histogram_observe_ns", best_observe_ns),
        ("render_ns", best_render_ns),
        ("span_unsampled_ns", best_unsampled_ns),
        ("span_sampled_ns", best_sampled_ns),
        ("tsdb_tick_us", best_tick_us),
        ("cpu_sample_us", best_cpu_sample_us),
        ("folded_render_us", best_folded_us),
        ("workload_record_ns", best_workload_ns),
    ]
}

/// One time-boxed measurement: `CLIENTS` keep-alive loopback clients
/// hammering `/v1/validity?limit=0` for a fixed window.
fn measure_server(service: &HistoryService, cache_capacity: usize) -> std::io::Result<f64> {
    const CLIENTS: usize = 4;
    const WINDOW: Duration = Duration::from_millis(350);
    const TARGET: &str = "/v1/validity?limit=0";

    let query = Arc::new(QueryService::new(
        service.reader(),
        ServerConfig {
            workers: CLIENTS,
            cache_capacity,
            keep_alive_requests: u32::MAX,
            ..ServerConfig::default()
        },
    ));
    let server = QueryServer::bind("127.0.0.1:0", query)?;
    let addr = server.local_addr();
    // Warm the epoch replay (memoized per epoch) so both modes measure
    // query serving, not the first fold.
    loopback_get(addr, TARGET)?;

    let start = Instant::now();
    let total: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut writer = stream;
                    let mut n = 0u64;
                    while start.elapsed() < WINDOW {
                        request(&mut reader, &mut writer, TARGET).expect("request");
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });
    let secs = start.elapsed().as_secs_f64();
    server.shutdown();
    Ok(total as f64 / secs)
}

/// One GET over a fresh connection (used to warm the server).
fn loopback_get(addr: SocketAddr, target: &str) -> std::io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    request(&mut reader, &mut writer, target)
}

/// Sends one keep-alive GET and drains the response, asserting 200.
fn request<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    target: &str,
) -> std::io::Result<()> {
    let (status, _, body) = request_raw(
        reader,
        writer,
        &format!("GET {target} HTTP/1.1\r\nhost: bench\r\n\r\n"),
    )?;
    assert_eq!(status, 200, "unexpected response status");
    black_box(body.len());
    Ok(())
}

/// Sends one raw keep-alive request and drains the response,
/// returning (status, etag header, body).
fn request_raw<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    head: &str,
) -> std::io::Result<(u16, Option<String>, Vec<u8>)> {
    writer.write_all(head.as_bytes())?;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut content_length = 0usize;
    let mut etag = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length");
            } else if name.eq_ignore_ascii_case("etag") {
                etag = Some(value.trim().to_string());
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, etag, body))
}

fn write_json(path: &Path, bench: &str, metrics: &[(&str, f64)]) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    out.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        out.push_str(&format!("    \"{name}\": {value:.3}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
