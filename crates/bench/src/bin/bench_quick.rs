//! Quick-mode benchmark runner for CI regression gating.
//!
//! Unlike the Criterion benches (tuned for precision), this binary
//! runs a fixed small workload a few times, keeps the best run, and
//! writes machine-readable JSON — `BENCH_monitor.json` and
//! `BENCH_history.json` — for `tools/bench_gate.rs` to compare
//! against the checked-in baseline (`ci/bench_baseline.json`). Total
//! runtime is a few seconds, cheap enough for every push.
//!
//! ```sh
//! cargo run --release -p moas-bench --bin bench_quick [-- OUT_DIR]
//! ```

use moas_bench::{bench_study, synth_history_events};
use moas_bgp::message::BgpMessage;
use moas_history::HistoryStore;
use moas_monitor::{MonitorConfig, MonitorEngine};
use moas_mrt::record::{MrtBody, MrtRecord};
use moas_routeviews::updates::day_transition;
use moas_routeviews::BackgroundMode;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Repetitions per measurement; the best (least-noisy) run wins.
const REPS: usize = 3;

fn main() -> std::io::Result<()> {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&out_dir)?;

    let monitor = bench_monitor();
    write_json(&out_dir.join("BENCH_monitor.json"), "monitor", &monitor)?;
    let history = bench_history();
    write_json(&out_dir.join("BENCH_history.json"), "history", &history)?;
    Ok(())
}

/// Route-level updates (announced + withdrawn prefixes) in a stream.
fn update_count(records: &[MrtRecord]) -> u64 {
    records
        .iter()
        .map(|r| match &r.body {
            MrtBody::Bgp4mpMessage(m) => match &m.message {
                BgpMessage::Update(u) => (u.all_announced().len() + u.all_withdrawn().len()) as u64,
                _ => 0,
            },
            _ => 0,
        })
        .sum()
}

/// Monitor: sustained route-updates/s through the 4-shard streaming
/// engine on the synthetic incident-onset stream.
fn bench_monitor() -> Vec<(&'static str, f64)> {
    let study = bench_study(0.02);
    let mut collector = moas_routeviews::Collector::new(&study.world, &study.peers);
    let incident = study
        .world
        .window
        .snapshot_index(moas_net::Date::ymd(1998, 4, 7).day_index())
        .expect("incident day in window");
    let (_, _, stream) =
        day_transition(&mut collector, incident - 1, incident, BackgroundMode::None);
    let updates = update_count(&stream);
    // Replay the day transition enough times that one measurement is
    // tens of milliseconds — a 30% gate needs headroom over timer and
    // scheduler noise, which a single ~1 ms pass would not give.
    let passes = (200_000 / updates.max(1)).clamp(1, 1_000);

    let mut best_updates_per_sec = 0f64;
    let mut events = 0u64;
    for _ in 0..REPS {
        let start = Instant::now();
        let mut engine = MonitorEngine::new(MonitorConfig::with_shards(4));
        for _ in 0..passes {
            engine.ingest_all(&stream);
        }
        let report = engine.finish();
        let secs = start.elapsed().as_secs_f64();
        events = report.metrics.events_emitted;
        best_updates_per_sec = best_updates_per_sec.max((updates * passes) as f64 / secs);
        black_box(report.events.len());
    }
    eprintln!(
        "monitor: {updates} updates x{passes}, {events} lifecycle events, best {best_updates_per_sec:.0} updates/s"
    );
    vec![("ingest_updates_per_sec", best_updates_per_sec)]
}

/// History: segmented-log append events/s, on-disk bytes/event, and
/// table-seeded compaction events/s.
fn bench_history() -> Vec<(&'static str, f64)> {
    const EVENTS: usize = 200_000;
    let events = synth_history_events(EVENTS, 2_048);
    let dir = std::env::temp_dir().join(format!("moas-bench-quick-{}", std::process::id()));

    let mut best_append = 0f64;
    let mut bytes_per_event = f64::MAX;
    for _ in 0..REPS {
        std::fs::remove_dir_all(&dir).ok();
        let start = Instant::now();
        let mut store = HistoryStore::open(&dir).expect("open bench store");
        for (day, chunk) in events.chunks(EVENTS / 30).enumerate() {
            store.append(chunk).expect("append");
            store.mark_day(day).expect("mark day");
        }
        store.seal().expect("seal");
        let secs = start.elapsed().as_secs_f64();
        best_append = best_append.max(EVENTS as f64 / secs);
        bytes_per_event = bytes_per_event.min(store.stats().retained_bytes as f64 / EVENTS as f64);
    }

    // Compaction over the last store written above.
    let store = HistoryStore::open(&dir).expect("reopen bench store");
    let mut best_compact = 0f64;
    for _ in 0..REPS {
        let start = Instant::now();
        let (conflicts, scan) = store.compact().expect("compact");
        assert!(scan.corrupt.is_empty());
        let secs = start.elapsed().as_secs_f64();
        best_compact = best_compact.max(EVENTS as f64 / secs);
        black_box(conflicts.records().len());
    }
    std::fs::remove_dir_all(&dir).ok();

    eprintln!(
        "history: best {best_append:.0} append events/s, {bytes_per_event:.1} bytes/event, best {best_compact:.0} compact events/s"
    );
    vec![
        ("append_events_per_sec", best_append),
        ("bytes_per_event", bytes_per_event),
        ("compact_events_per_sec", best_compact),
    ]
}

fn write_json(path: &Path, bench: &str, metrics: &[(&str, f64)]) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    out.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        out.push_str(&format!("    \"{name}\": {value:.3}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
