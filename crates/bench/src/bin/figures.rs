//! The figures harness: regenerates every table and figure of the
//! paper from a full study run and prints paper-vs-measured rows.
//!
//! ```text
//! figures [--scale S] [--threads N] [--artifacts DIR] [EXPERIMENT...]
//! ```
//!
//! Experiments: `fig1 fig2 fig3 fig4 fig5 fig6 vantage xp asset faults
//! detector` (default: all). `--scale 1` (default) reproduces the
//! paper-scale world (~1–2 minutes); smaller scales shrink everything
//! proportionally for quick looks.

use moas_core::causes;
use moas_core::detector::{MoasMonitor, OriginProfiler, ProfilerConfig};
use moas_core::report::{ascii_chart, ascii_log_hist, csv, text_table, write_artifact};
use moas_core::stats;
use moas_core::timeline::Timeline;
use moas_lab::study::{Study, StudyConfig};
use moas_net::{Asn, Date};
use moas_routeviews::BackgroundMode;
use std::path::PathBuf;

struct Args {
    scale: f64,
    threads: usize,
    artifacts: PathBuf,
    experiments: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1.0,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2),
        artifacts: PathBuf::from("artifacts"),
        experiments: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
            }
            "--artifacts" => {
                args.artifacts = it
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| die("--artifacts needs a path"));
            }
            "--help" | "-h" => {
                println!(
                    "figures [--scale S] [--threads N] [--artifacts DIR] [EXPERIMENT...]\n\
                     experiments: fig1 fig2 fig3 fig4 fig5 fig6 vantage xp asset faults detector"
                );
                std::process::exit(0);
            }
            other => args.experiments.push(other.to_string()),
        }
    }
    if args.experiments.is_empty() {
        args.experiments = [
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "vantage", "xp", "asset", "faults",
            "detector", "submoas",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let scale = args.scale;
    let scaled = move |v: f64| v * scale;

    eprintln!("building world (scale {scale}) …");
    let config = if (scale - 1.0).abs() < f64::EPSILON {
        StudyConfig::paper()
    } else {
        StudyConfig::test(scale)
    };
    let t0 = std::time::Instant::now();
    let study = Study::build(config);
    eprintln!("world ready in {:?}; analyzing …", t0.elapsed());
    let t1 = std::time::Instant::now();
    let tl = study.analyze(args.threads);
    eprintln!("analysis done in {:?}\n", t1.elapsed());

    for exp in &args.experiments {
        match exp.as_str() {
            "fig1" => fig1(&tl, &args, scaled),
            "fig2" => fig2(&tl, &args),
            "fig3" => fig3(&tl, &args, scaled),
            "fig4" => fig4(&tl, &args),
            "fig5" => fig5(&tl, &args),
            "fig6" => fig6(&tl, &args),
            "vantage" => vantage(&study, scaled),
            "xp" => xp(&study, &tl, scaled),
            "asset" => asset(&study, &tl, scaled),
            "faults" => faults(&study, scaled),
            "detector" => detector(&study),
            "submoas" => submoas(&study),
            other => eprintln!("unknown experiment {other:?} (skipped)"),
        }
        println!();
    }
}

fn header(title: &str) {
    println!(
        "==== {title} {}",
        "=".repeat(72usize.saturating_sub(title.len()))
    );
}

fn fig1(tl: &Timeline, args: &Args, scaled: impl Fn(f64) -> f64) {
    header("Figure 1 — MOAS conflicts per day, 1997-11-08 → 2001-07-18");
    let series = stats::fig1_daily_counts(tl);
    let values: Vec<f64> = series.iter().map(|p| p.conflicts as f64).collect();
    println!("{}", ascii_chart(&values, 96, 14));
    let peaks = stats::fig1_peaks(tl, 3);
    println!("\nlargest daily counts (paper: 11 842 on 1998-04-07, 10 226 on 2001-04-06):");
    for p in &peaks {
        println!("  {}  {}", p.date, p.conflicts);
    }
    println!(
        "expected spike scale at this run's scale: {:.0} and {:.0}",
        scaled(11_842.0),
        scaled(10_226.0)
    );
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|p| vec![p.date.to_string(), p.conflicts.to_string()])
        .collect();
    let _ = write_artifact(
        &args.artifacts.join("fig1_daily_counts.csv"),
        &csv(&["date", "conflicts"], &rows),
    );
}

fn fig2(tl: &Timeline, args: &Args) {
    header("Figure 2 — median of MOAS conflicts per year");
    let rows = stats::fig2_yearly_medians(tl, &[1998, 1999, 2000, 2001]);
    let paper = [(1998, 683.0), (1999, 810.5), (2000, 951.0), (2001, 1294.0)];
    let paper_growth: [Option<f64>; 4] = [None, Some(18.7), Some(17.3), Some(36.1)];
    let table: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            vec![
                r.year.to_string(),
                format!("{:.1}", r.median),
                paper
                    .iter()
                    .find(|(y, _)| *y == r.year)
                    .map(|(_, m)| format!("{m}"))
                    .unwrap_or_default(),
                r.growth_pct.map(|g| format!("{g:.1}%")).unwrap_or_default(),
                paper_growth
                    .get(i)
                    .copied()
                    .flatten()
                    .map(|g| format!("{g}%"))
                    .unwrap_or_default(),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(
            &[
                "year",
                "median (measured)",
                "median (paper)",
                "growth",
                "growth (paper)"
            ],
            &table
        )
    );
    let _ = write_artifact(
        &args.artifacts.join("fig2_yearly_medians.csv"),
        &csv(
            &["year", "median", "growth_pct"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.year.to_string(),
                        format!("{:.1}", r.median),
                        r.growth_pct.map(|g| format!("{g:.2}")).unwrap_or_default(),
                    ]
                })
                .collect::<Vec<_>>(),
        ),
    );
}

fn fig3(tl: &Timeline, args: &Args, scaled: impl Fn(f64) -> f64) {
    header("Figure 3 — duration of MOAS conflicts (log count vs days)");
    let hist = stats::fig3_duration_histogram(tl);
    println!("{}", ascii_log_hist(&hist, 96, 14));
    let summary = stats::duration_summary(tl);
    println!(
        "\nconflicts: {} (paper 38 225 → scaled {:.0}); one-day: {} (paper 13 730 → {:.0});",
        summary.total,
        scaled(38_225.0),
        summary.one_timers,
        scaled(13_730.0)
    );
    println!(
        "over 300 days: {} (paper 1 002 → {:.0}); longest: {} (paper 1 246); ongoing: {} (paper 1 326 → {:.0})",
        summary.over_300,
        scaled(1_002.0),
        summary.longest,
        summary.ongoing,
        scaled(1_326.0)
    );
    let rows: Vec<Vec<String>> = hist
        .iter()
        .map(|(d, c)| vec![d.to_string(), c.to_string()])
        .collect();
    let _ = write_artifact(
        &args.artifacts.join("fig3_duration_histogram.csv"),
        &csv(&["duration_days", "conflicts"], &rows),
    );
}

fn fig4(tl: &Timeline, args: &Args) {
    header("Figure 4 — expectation of conflict duration by filter");
    let rows = stats::fig4_expectations(tl, &[0, 1, 9, 29, 89]);
    let paper = [30.9, 47.7, 107.5, 175.3, 281.8];
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(paper.iter())
        .map(|(r, p)| {
            vec![
                format!("longer than {} days", r.longer_than),
                r.count.to_string(),
                format!("{:.1}", r.expectation),
                format!("{p}"),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(
            &[
                "data set",
                "conflicts",
                "E[duration] measured",
                "E[duration] paper"
            ],
            &table
        )
    );
    println!("(paper also reports 10 177 conflicts longer than 9 days)");
    let _ = write_artifact(
        &args.artifacts.join("fig4_expectations.csv"),
        &csv(
            &["longer_than", "count", "expectation"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.longer_than.to_string(),
                        r.count.to_string(),
                        format!("{:.2}", r.expectation),
                    ]
                })
                .collect::<Vec<_>>(),
        ),
    );
}

fn fig5(tl: &Timeline, args: &Args) {
    header("Figure 5 — distribution of conflicts among prefix lengths");
    let years = [1998, 1999, 2000, 2001];
    let by_year = stats::fig5_masklen_by_year(tl, &years);
    let mut table: Vec<Vec<String>> = Vec::new();
    for len in 8..=32u8 {
        let mut row = vec![format!("/{len}")];
        let mut any = false;
        for y in &years {
            let v = by_year.get(y).map(|m| m[len as usize]).unwrap_or(0.0);
            if v > 0.0 {
                any = true;
            }
            row.push(if v > 0.0 {
                format!("{v:.0}")
            } else {
                String::new()
            });
        }
        if any {
            table.push(row);
        }
    }
    println!(
        "{}",
        text_table(&["prefix length", "1998", "1999", "2000", "2001"], &table)
    );
    println!("(paper: /24 attracts most conflicts in every year; 2001 peak ≈ 700–800)");
    let _ = write_artifact(
        &args.artifacts.join("fig5_masklen_by_year.csv"),
        &csv(
            &["masklen", "y1998", "y1999", "y2000", "y2001"],
            &table
                .iter()
                .map(|r| r.iter().map(|c| c.replace('/', "")).collect())
                .collect::<Vec<_>>(),
        ),
    );
}

fn fig6(tl: &Timeline, args: &Args) {
    header("Figure 6 — conflict classes, 2001-05-15 → 2001-08-15");
    let from = Date::ymd(2001, 5, 15);
    let to = Date::ymd(2001, 8, 15);
    let series = stats::fig6_class_series(tl, from, to);
    let shares = stats::fig6_shares(tl, from, to);
    println!(
        "mean daily counts: DistinctPaths {:.0}, SplitView {:.0}, OrigTranAS {:.0}",
        shares.distinct, shares.split_view, shares.orig_tran
    );
    println!("(paper: DistinctPaths dominant, the other classes well below it)\n");
    let sample: Vec<Vec<String>> = series
        .iter()
        .step_by(7)
        .map(|p| {
            vec![
                p.date.to_string(),
                p.orig_tran.to_string(),
                p.split_view.to_string(),
                p.distinct.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(
            &[
                "date (weekly samples)",
                "OrigTranAS",
                "SplitView",
                "DistinctPaths"
            ],
            &sample
        )
    );
    let _ = write_artifact(
        &args.artifacts.join("fig6_classes.csv"),
        &csv(
            &["date", "orig_tran", "split_view", "distinct", "other"],
            &series
                .iter()
                .map(|p| {
                    vec![
                        p.date.to_string(),
                        p.orig_tran.to_string(),
                        p.split_view.to_string(),
                        p.distinct.to_string(),
                        p.other.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ),
    );
}

fn vantage(study: &Study, scaled: impl Fn(f64) -> f64) {
    header("§III — vantage-point visibility (collector vs single ISPs)");
    // "At a randomly selected time": a mid-2001 snapshot day.
    let date = Date::ymd(2001, 6, 15);
    let Some((full, counts)) = study.vantage_experiment(date, &[2, 3, 6]) else {
        println!("{date} is not a snapshot day");
        return;
    };
    println!("date: {date}");
    println!(
        "collector ({} sessions): {} conflicts (paper: 1 364 → scaled {:.0})",
        study.peers.alive_at(date.day_index()).len(),
        full,
        scaled(1_364.0)
    );
    for (i, c) in counts.iter().enumerate() {
        println!(
            "ISP vantage {} ({} sessions): {} conflicts (paper observed 30 / 12 / 228)",
            i + 1,
            [2, 3, 6][i.min(2)],
            c
        );
    }
}

fn xp(study: &Study, tl: &Timeline, scaled: impl Fn(f64) -> f64) {
    header("§VI-A — exchange-point prefixes");
    let xp_prefixes = study.xp_prefixes();
    let report = causes::exchange_point_report(tl, &xp_prefixes);
    println!(
        "exchange-point prefixes in conflict: {} (paper: 30 → scaled {:.0})",
        report.conflicted,
        scaled(30.0)
    );
    println!(
        "long-lived (≥ 3/4 of window): {} of {} (paper: \"all … lasted for long periods\")",
        report.long_lived, report.conflicted
    );
    println!(
        "durations: min {} / max {} of {} possible days",
        report.min_duration,
        report.max_duration,
        tl.core_len()
    );
}

fn asset(study: &Study, tl: &Timeline, scaled: impl Fn(f64) -> f64) {
    header("§III / §VI-D — routes ending in AS sets (excluded)");
    println!(
        "AS-set routes planted: {} (paper: \"roughly 12\" → scaled {:.0})",
        study.world.as_set_routes.len(),
        scaled(12.0)
    );
    println!(
        "max prefixes excluded on any day by the detector: {}",
        tl.max_daily_as_set()
    );
    println!("(the paper observed the sets to be mutually consistent; ours are, by construction)");
}

fn faults(study: &Study, scaled: impl Fn(f64) -> f64) {
    header("§VI-E — mass-fault incidents");
    // 1998-04-07: AS 8584.
    if let Some(obs) = study.observe_date(Date::ymd(1998, 4, 7), BackgroundMode::None) {
        let total = obs.conflict_count();
        let inv = causes::involvement_by_origin(&obs);
        let c8584 = inv.get(&Asn::new(8584)).copied().unwrap_or(0);
        println!(
            "1998-04-07: {total} conflicts (paper 11 842 → scaled {:.0})",
            scaled(11_842.0)
        );
        println!(
            "  AS 8584 involved in {c8584} (paper 11 357 → scaled {:.0})",
            scaled(11_357.0)
        );
    }
    // 2001-04-10: (AS 3561, AS 15412).
    if let Some(obs) = study.observe_date(Date::ymd(2001, 4, 10), BackgroundMode::None) {
        let total = obs.conflict_count();
        let pairs = causes::involvement_by_tail_pair(&obs);
        let pair = pairs
            .get(&(Asn::new(3561), Asn::new(15412)))
            .copied()
            .unwrap_or(0);
        println!(
            "2001-04-10: {total} conflicts (paper 6 627 → scaled {:.0})",
            scaled(6_627.0)
        );
        println!(
            "  (AS 3561, AS 15412) involved in {pair} (paper 5 532 → scaled {:.0})",
            scaled(5_532.0)
        );
    }
    if let Some(obs) = study.observe_date(Date::ymd(2001, 4, 6), BackgroundMode::None) {
        println!(
            "2001-04-06: {} conflicts (paper 10 226 → scaled {:.0})",
            obs.conflict_count(),
            scaled(10_226.0)
        );
    }
}

fn submoas(study: &Study) {
    header("extension — subMOAS (faulty aggregation the exact-match scan misses)");
    // Faulty aggregates are short-lived; pick the first mid-window day
    // with at least one active (and at least one shadowed neighbor
    // alive in its block).
    let Some(idx) = (400..study.world.window.core_len()).find(|&idx| {
        study
            .world
            .conflicts
            .iter()
            .any(|c| c.aggregate.is_some() && c.active.is_active(idx as u32))
    }) else {
        println!("no active faulty aggregates in the window");
        return;
    };
    let date = study.world.window.day_at(idx).date();
    let mut collector = moas_routeviews::Collector::new(&study.world, &study.peers);
    let snap = collector.snapshot_at(idx, BackgroundMode::CoveredByAggregates);
    let report = moas_core::submoas::detect_submoas(&snap);
    let truth = study
        .world
        .conflicts
        .iter()
        .filter(|c| c.aggregate.is_some() && c.active.is_active(idx as u32))
        .count();
    println!("date: {date} ({} prefixes scanned)", report.prefixes);
    println!(
        "subMOAS pairs found: {} — innocent neighbors shadowed by {truth} active\n\
         faulty aggregates (the aggregates themselves never trip exact-prefix MOAS)",
        report.pairs.len()
    );
    println!(
        "benign covers (shared origin): {}",
        report.consistent_covers
    );
    for p in report.pairs.iter().take(5) {
        println!(
            "  {} (AS {}) shadowed by {} (AS {})",
            p.specific,
            p.specific_origins
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(","),
            p.covering,
            p.covering_origins
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
    }
    println!(
        "(the paper's §VI-E faulty-aggregation discussion, made detectable: exact-\n\
         prefix MOAS detection cannot see these — only the covering-prefix analysis can)"
    );
}

fn detector(study: &Study) {
    header("§VII extension — invalid-conflict identification");
    // Run the origin profiler over the weeks surrounding each incident.
    let windows = [
        (
            Date::ymd(1998, 3, 10),
            Date::ymd(1998, 4, 12),
            Asn::new(8584),
        ),
        (
            Date::ymd(2001, 3, 10),
            Date::ymd(2001, 4, 8),
            Asn::new(15412),
        ),
    ];
    for (from, to, culprit) in windows {
        let mut profiler = OriginProfiler::new(ProfilerConfig::default());
        let mut monitor = MoasMonitor::new(3);
        let mut caught: Option<Date> = None;
        let mut alarm_days = 0u32;
        let mut new_origin_alarms = 0usize;
        for date in from.iter_to(to) {
            let Some(obs) = study.observe_date(date, BackgroundMode::None) else {
                continue;
            };
            let anomalies = profiler.observe(&obs);
            if !anomalies.is_empty() {
                alarm_days += 1;
            }
            for a in &anomalies {
                if let moas_core::detector::Anomaly::OriginSurge { asn, date, .. } = a {
                    if *asn == culprit && caught.is_none() {
                        caught = Some(*date);
                    }
                }
            }
            new_origin_alarms += monitor.observe(&obs).len();
        }
        match caught {
            Some(d) => println!(
                "window {from} → {to}: origin-surge detector flagged AS {culprit} on {d} \
                 (surge-alarm days in window: {alarm_days})"
            ),
            None => println!(
                "window {from} → {to}: AS {culprit} NOT flagged (alarm days: {alarm_days})"
            ),
        }
        println!("  new-origin alarms raised in window: {new_origin_alarms}");
    }
    println!(
        "(the paper's §VII conclusion — duration alone cannot validate conflicts — is\n\
         quantified by the duration-heuristic scores in EXPERIMENTS.md)"
    );
}
