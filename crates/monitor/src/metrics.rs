//! Engine-wide counters, shared between the ingest thread and the
//! shard workers through the [`moas_obs`] registry so reading them
//! never contends with the hot path — and so one `GET /metrics`
//! scrape covers the engine alongside every other pipeline layer.

use moas_obs::{Counter, Gauge, Histogram, LagTracker, Registry};
use std::sync::Arc;

/// Live counters for a running engine, all registered on one shared
/// [`Registry`]. [`MetricsSnapshot`] (and through it the monitor's
/// reports and the query server's `/v1/metrics`) is a view over these
/// handles, not parallel bookkeeping.
#[derive(Debug)]
pub struct EngineMetrics {
    /// MRT records handed to the engine.
    pub records_ingested: Counter,
    /// Records that were not BGP4MP UPDATEs (counted and skipped).
    pub records_skipped: Counter,
    /// Route-level updates (announcements + withdrawals) routed to
    /// shards.
    pub updates_routed: Counter,
    /// Route-level updates actually applied by shard workers.
    pub updates_applied: Counter,
    /// Withdrawals for routes no session held (no state change).
    pub spurious_withdrawals: Counter,
    /// Lifecycle events emitted across all shards.
    pub events_emitted: Counter,
    /// Batches flushed into shard channels.
    pub batches_sent: Counter,
    /// Day marks broadcast.
    pub day_marks: Counter,
    /// Epoch snapshots served.
    pub queries_served: Counter,
    /// Event-log segments an attached history store has written
    /// (lifetime: live plus expired).
    pub store_segments_written: Gauge,
    /// Segments an attached history store's retention has expired.
    pub store_segments_expired: Gauge,
    /// Record tables an attached history store has installed.
    pub store_tables_written: Gauge,
    /// Bytes an attached history store currently holds on disk
    /// (live segments plus the record table).
    pub store_bytes_retained: Gauge,
    /// Bytes an attached history store has ever written, including
    /// since-expired segments and replaced tables.
    pub store_bytes_lifetime: Gauge,
    /// Sealed segments awaiting compaction into the record table —
    /// the compaction daemon's backlog.
    pub store_compaction_lag: Gauge,
    /// Conflict records an attached history store has compacted.
    pub store_records_compacted: Gauge,
    /// Wall-clock spent applying one routed batch inside a shard
    /// worker (microseconds).
    pub stage_shard_apply: Histogram,
    /// End-to-end ingest-to-serve lag watermarks (fed by the feed
    /// follower and the history service when both share this
    /// registry).
    pub lag: LagTracker,
    registry: Arc<Registry>,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        EngineMetrics::new(&Arc::new(Registry::new()))
    }
}

impl EngineMetrics {
    /// Registers every engine series on `registry`. Two engines
    /// sharing a registry share series — standalone tools get a
    /// private one via [`Default`].
    pub fn new(registry: &Arc<Registry>) -> Self {
        let r = registry.as_ref();
        EngineMetrics {
            records_ingested: r.counter(
                "moas_monitor_records_ingested_total",
                "MRT records handed to the engine.",
            ),
            records_skipped: r.counter(
                "moas_monitor_records_skipped_total",
                "Records that were not BGP4MP UPDATEs.",
            ),
            updates_routed: r.counter(
                "moas_monitor_updates_routed_total",
                "Route-level updates routed to shards.",
            ),
            updates_applied: r.counter(
                "moas_monitor_updates_applied_total",
                "Route-level updates applied by shard workers.",
            ),
            spurious_withdrawals: r.counter(
                "moas_monitor_spurious_withdrawals_total",
                "Withdrawals that matched no held route.",
            ),
            events_emitted: r.counter(
                "moas_monitor_events_emitted_total",
                "Lifecycle events emitted across all shards.",
            ),
            batches_sent: r.counter(
                "moas_monitor_batches_sent_total",
                "Batches flushed into shard channels.",
            ),
            day_marks: r.counter("moas_monitor_day_marks_total", "Day marks broadcast."),
            queries_served: r.counter(
                "moas_monitor_queries_served_total",
                "Epoch snapshots served by shard workers.",
            ),
            store_segments_written: r.gauge(
                "moas_store_segments_written",
                "Event-log segments written by the history store (lifetime).",
            ),
            store_segments_expired: r.gauge(
                "moas_store_segments_expired",
                "Segments expired by history-store retention.",
            ),
            store_tables_written: r.gauge(
                "moas_store_tables_written",
                "Record tables installed by the history store.",
            ),
            store_bytes_retained: r.gauge(
                "moas_store_bytes_retained",
                "Bytes the history store currently holds on disk.",
            ),
            store_bytes_lifetime: r.gauge(
                "moas_store_bytes_lifetime",
                "Bytes the history store has ever written.",
            ),
            store_compaction_lag: r.gauge(
                "moas_store_compaction_lag",
                "Sealed segments awaiting compaction into the record table.",
            ),
            store_records_compacted: r.gauge(
                "moas_store_records_compacted",
                "Conflict records in the installed record table.",
            ),
            stage_shard_apply: r.stage_histogram("shard_apply"),
            lag: LagTracker::new(r),
            registry: Arc::clone(registry),
        }
    }

    /// The registry every series here lives on.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &Counter, n: u64) {
        counter.add(n);
    }

    /// Overwrites a gauge (disk occupancy and the like).
    pub fn set(gauge: &Gauge, v: u64) {
        gauge.set(v);
    }

    /// A point-in-time copy of every counter, for reports.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            records_ingested: self.records_ingested.get(),
            records_skipped: self.records_skipped.get(),
            updates_routed: self.updates_routed.get(),
            updates_applied: self.updates_applied.get(),
            spurious_withdrawals: self.spurious_withdrawals.get(),
            events_emitted: self.events_emitted.get(),
            batches_sent: self.batches_sent.get(),
            day_marks: self.day_marks.get(),
            queries_served: self.queries_served.get(),
            store_segments_written: self.store_segments_written.get(),
            store_segments_expired: self.store_segments_expired.get(),
            store_tables_written: self.store_tables_written.get(),
            store_bytes_retained: self.store_bytes_retained.get(),
            store_bytes_lifetime: self.store_bytes_lifetime.get(),
            store_compaction_lag: self.store_compaction_lag.get(),
            store_records_compacted: self.store_records_compacted.get(),
        }
    }
}

/// A frozen copy of [`EngineMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// MRT records handed to the engine.
    pub records_ingested: u64,
    /// Records that were not BGP4MP UPDATEs.
    pub records_skipped: u64,
    /// Route-level updates routed to shards.
    pub updates_routed: u64,
    /// Route-level updates applied by shard workers.
    pub updates_applied: u64,
    /// Withdrawals that matched no held route.
    pub spurious_withdrawals: u64,
    /// Lifecycle events emitted.
    pub events_emitted: u64,
    /// Batches flushed into shard channels.
    pub batches_sent: u64,
    /// Day marks broadcast.
    pub day_marks: u64,
    /// Epoch snapshots served.
    pub queries_served: u64,
    /// Event-log segments an attached history store has written
    /// (lifetime: live plus expired).
    pub store_segments_written: u64,
    /// Segments an attached history store's retention has expired.
    pub store_segments_expired: u64,
    /// Record tables an attached history store has installed.
    pub store_tables_written: u64,
    /// Bytes an attached history store currently holds on disk
    /// (live segments plus the record table).
    pub store_bytes_retained: u64,
    /// Bytes an attached history store has ever written, including
    /// since-expired segments and replaced tables.
    pub store_bytes_lifetime: u64,
    /// Sealed segments awaiting compaction into the record table.
    pub store_compaction_lag: u64,
    /// Conflict records an attached history store has compacted.
    pub store_records_compacted: u64,
}

impl MetricsSnapshot {
    /// Every counter with its name, in declaration order — the
    /// serialization surface for exporters (the query server's
    /// `/v1/metrics`, log lines) so they never fall out of sync with
    /// the struct.
    pub fn fields(&self) -> [(&'static str, u64); 16] {
        [
            ("records_ingested", self.records_ingested),
            ("records_skipped", self.records_skipped),
            ("updates_routed", self.updates_routed),
            ("updates_applied", self.updates_applied),
            ("spurious_withdrawals", self.spurious_withdrawals),
            ("events_emitted", self.events_emitted),
            ("batches_sent", self.batches_sent),
            ("day_marks", self.day_marks),
            ("queries_served", self.queries_served),
            ("store_segments_written", self.store_segments_written),
            ("store_segments_expired", self.store_segments_expired),
            ("store_tables_written", self.store_tables_written),
            ("store_bytes_retained", self.store_bytes_retained),
            ("store_bytes_lifetime", self.store_bytes_lifetime),
            ("store_compaction_lag", self.store_compaction_lag),
            ("store_records_compacted", self.store_records_compacted),
        ]
    }
}
