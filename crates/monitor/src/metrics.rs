//! Engine-wide counters, shared between the ingest thread and the
//! shard workers through atomics so reading them never contends with
//! the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for a running engine.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// MRT records handed to the engine.
    pub records_ingested: AtomicU64,
    /// Records that were not BGP4MP UPDATEs (counted and skipped).
    pub records_skipped: AtomicU64,
    /// Route-level updates (announcements + withdrawals) routed to
    /// shards.
    pub updates_routed: AtomicU64,
    /// Route-level updates actually applied by shard workers.
    pub updates_applied: AtomicU64,
    /// Withdrawals for routes no session held (no state change).
    pub spurious_withdrawals: AtomicU64,
    /// Lifecycle events emitted across all shards.
    pub events_emitted: AtomicU64,
    /// Batches flushed into shard channels.
    pub batches_sent: AtomicU64,
    /// Day marks broadcast.
    pub day_marks: AtomicU64,
    /// Epoch snapshots served.
    pub queries_served: AtomicU64,
    /// Event-log segments an attached history store has written
    /// (lifetime: live plus expired).
    pub store_segments_written: AtomicU64,
    /// Segments an attached history store's retention has expired.
    pub store_segments_expired: AtomicU64,
    /// Record tables an attached history store has installed.
    pub store_tables_written: AtomicU64,
    /// Bytes an attached history store currently holds on disk
    /// (live segments plus the record table).
    pub store_bytes_retained: AtomicU64,
    /// Bytes an attached history store has ever written, including
    /// since-expired segments and replaced tables.
    pub store_bytes_lifetime: AtomicU64,
    /// Sealed segments awaiting compaction into the record table —
    /// the compaction daemon's backlog.
    pub store_compaction_lag: AtomicU64,
    /// Conflict records an attached history store has compacted.
    pub store_records_compacted: AtomicU64,
}

impl EngineMetrics {
    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites a gauge-style counter (disk occupancy and the like).
    pub fn set(counter: &AtomicU64, v: u64) {
        counter.store(v, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter, for reports.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            records_ingested: Self::get(&self.records_ingested),
            records_skipped: Self::get(&self.records_skipped),
            updates_routed: Self::get(&self.updates_routed),
            updates_applied: Self::get(&self.updates_applied),
            spurious_withdrawals: Self::get(&self.spurious_withdrawals),
            events_emitted: Self::get(&self.events_emitted),
            batches_sent: Self::get(&self.batches_sent),
            day_marks: Self::get(&self.day_marks),
            queries_served: Self::get(&self.queries_served),
            store_segments_written: Self::get(&self.store_segments_written),
            store_segments_expired: Self::get(&self.store_segments_expired),
            store_tables_written: Self::get(&self.store_tables_written),
            store_bytes_retained: Self::get(&self.store_bytes_retained),
            store_bytes_lifetime: Self::get(&self.store_bytes_lifetime),
            store_compaction_lag: Self::get(&self.store_compaction_lag),
            store_records_compacted: Self::get(&self.store_records_compacted),
        }
    }
}

/// A frozen copy of [`EngineMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// MRT records handed to the engine.
    pub records_ingested: u64,
    /// Records that were not BGP4MP UPDATEs.
    pub records_skipped: u64,
    /// Route-level updates routed to shards.
    pub updates_routed: u64,
    /// Route-level updates applied by shard workers.
    pub updates_applied: u64,
    /// Withdrawals that matched no held route.
    pub spurious_withdrawals: u64,
    /// Lifecycle events emitted.
    pub events_emitted: u64,
    /// Batches flushed into shard channels.
    pub batches_sent: u64,
    /// Day marks broadcast.
    pub day_marks: u64,
    /// Epoch snapshots served.
    pub queries_served: u64,
    /// Event-log segments an attached history store has written
    /// (lifetime: live plus expired).
    pub store_segments_written: u64,
    /// Segments an attached history store's retention has expired.
    pub store_segments_expired: u64,
    /// Record tables an attached history store has installed.
    pub store_tables_written: u64,
    /// Bytes an attached history store currently holds on disk
    /// (live segments plus the record table).
    pub store_bytes_retained: u64,
    /// Bytes an attached history store has ever written, including
    /// since-expired segments and replaced tables.
    pub store_bytes_lifetime: u64,
    /// Sealed segments awaiting compaction into the record table.
    pub store_compaction_lag: u64,
    /// Conflict records an attached history store has compacted.
    pub store_records_compacted: u64,
}

impl MetricsSnapshot {
    /// Every counter with its name, in declaration order — the
    /// serialization surface for exporters (the query server's
    /// `/v1/metrics`, log lines) so they never fall out of sync with
    /// the struct.
    pub fn fields(&self) -> [(&'static str, u64); 16] {
        [
            ("records_ingested", self.records_ingested),
            ("records_skipped", self.records_skipped),
            ("updates_routed", self.updates_routed),
            ("updates_applied", self.updates_applied),
            ("spurious_withdrawals", self.spurious_withdrawals),
            ("events_emitted", self.events_emitted),
            ("batches_sent", self.batches_sent),
            ("day_marks", self.day_marks),
            ("queries_served", self.queries_served),
            ("store_segments_written", self.store_segments_written),
            ("store_segments_expired", self.store_segments_expired),
            ("store_tables_written", self.store_tables_written),
            ("store_bytes_retained", self.store_bytes_retained),
            ("store_bytes_lifetime", self.store_bytes_lifetime),
            ("store_compaction_lag", self.store_compaction_lag),
            ("store_records_compacted", self.store_records_compacted),
        ]
    }
}
