//! The engine: shard workers, update routing, batching, day marks.
//!
//! The ingest thread decodes BGP4MP records into route-level updates,
//! routes each by prefix hash to its owning shard, and flushes
//! per-shard batches over bounded channels (a full channel blocks the
//! producer — backpressure instead of unbounded memory). A prefix
//! always lands on the same shard, so per-prefix update order — the
//! only order conflict lifecycles depend on — is preserved no matter
//! how many shards run.

use crate::event::{sort_log, SeqEvent};
use crate::metrics::{EngineMetrics, MetricsSnapshot};
use crate::query::{MoasSnapshot, MonitorReport};
use crate::shard::{run_shard, DaySlice, ShardMsg, ShardOutput, ShardSnapshot};
use crate::state::{RouteUpdate, SessionKey, UpdateAction};
use moas_bgp::TableSnapshot;
use moas_core::detector::{Anomaly, OriginProfiler, ProfilerConfig};
use moas_core::replay::{record_instructions, RouteInstruction};
use moas_mrt::record::MrtRecord;
use moas_net::{Asn, Date, Prefix};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Worker shard count (≥ 1).
    pub shards: usize,
    /// Bounded channel capacity, in batches, per shard.
    pub queue_capacity: usize,
    /// Route updates per batch before a flush.
    pub batch_size: usize,
    /// Config for each shard's embedded origin profiler (§VII).
    pub profiler: ProfilerConfig,
    /// Days a new origin must persist before the embedded
    /// [`moas_core::detector::MoasMonitor`] auto-accepts it.
    pub accept_after: u32,
    /// Vantage points feeding this engine. 1 (the default) keeps the
    /// single-collector behavior bit-for-bit: no vantage masks are
    /// tracked and no [`crate::event::MonitorEvent::OriginCorroborated`]
    /// events are emitted. A federation sets its collector count here
    /// (capped at 64 — masks are `u64` bitsets).
    pub collectors: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            shards: 4,
            queue_capacity: 64,
            batch_size: 256,
            profiler: ProfilerConfig::default(),
            accept_after: 2,
            collectors: 1,
        }
    }
}

impl MonitorConfig {
    /// A config with the given shard count and defaults otherwise.
    pub fn with_shards(shards: usize) -> Self {
        MonitorConfig {
            shards,
            ..MonitorConfig::default()
        }
    }
}

/// The online sharded MOAS monitor.
///
/// Feed it BGP4MP update records ([`MonitorEngine::ingest_record`]) or
/// whole table snapshots ([`MonitorEngine::seed_snapshot`]); mark day
/// boundaries ([`MonitorEngine::mark_day`]) to take per-day
/// observations in-stream; query the live MOAS set at any point
/// ([`MonitorEngine::snapshot`]); and [`MonitorEngine::finish`] to
/// join the workers and collect the full [`MonitorReport`].
pub struct MonitorEngine {
    config: MonitorConfig,
    senders: Vec<mpsc::SyncSender<ShardMsg>>,
    handles: Vec<JoinHandle<ShardOutput>>,
    pending: Vec<Vec<RouteUpdate>>,
    metrics: Arc<EngineMetrics>,
    /// The global §VII origin profiler. Each day mark merges every
    /// shard's involvement counts before this profiler sees the day,
    /// so its surge alarms exactly match the batch profiler run over
    /// the merged day observation (per-shard baselines would not).
    profiler: OriginProfiler,
    /// Surge alarms the global profiler raised, tagged with day
    /// position.
    surge_alarms: Vec<(usize, Anomaly)>,
}

impl MonitorEngine {
    /// Spawns the shard workers on a private metric registry.
    pub fn new(config: MonitorConfig) -> Self {
        Self::with_registry(config, Arc::new(moas_obs::Registry::new()))
    }

    /// Spawns the shard workers with every engine metric registered on
    /// `registry` — the deployment path, where the history store, feed
    /// follower, and query server share the same registry so one
    /// scrape covers the whole pipeline.
    pub fn with_registry(config: MonitorConfig, registry: Arc<moas_obs::Registry>) -> Self {
        assert!(config.shards >= 1, "need at least one shard");
        assert!(config.batch_size >= 1, "need a positive batch size");
        assert!(
            (1..=64).contains(&config.collectors),
            "collectors must be in 1..=64 (vantage masks are u64 bitsets)"
        );
        let metrics = Arc::new(EngineMetrics::new(&registry));
        let mut senders = Vec::with_capacity(config.shards);
        let mut handles = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = mpsc::sync_channel(config.queue_capacity.max(1));
            let m = Arc::clone(&metrics);
            let accept_after = config.accept_after;
            let collectors = config.collectors;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("moas-shard-{shard}"))
                    .spawn(move || {
                        let _registered = moas_obs::prof::register_thread();
                        run_shard(shard, rx, accept_after, collectors, m)
                    })
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
        }
        MonitorEngine {
            pending: vec![Vec::new(); config.shards],
            profiler: OriginProfiler::new(config.profiler),
            surge_alarms: Vec::new(),
            config,
            senders,
            handles,
            metrics,
        }
    }

    /// The engine's config.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// A point-in-time copy of the engine counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The shared counter block itself. A downstream consumer (the
    /// history store) holds this to publish its own store-side
    /// counters through the same [`MetricsSnapshot`] the report
    /// carries.
    pub fn metrics_handle(&self) -> Arc<EngineMetrics> {
        Arc::clone(&self.metrics)
    }

    fn shard_of(&self, prefix: &Prefix) -> usize {
        let mut h = DefaultHasher::new();
        prefix.hash(&mut h);
        (h.finish() % self.config.shards as u64) as usize
    }

    fn route(&mut self, update: RouteUpdate) {
        let shard = self.shard_of(&update.prefix);
        EngineMetrics::add(&self.metrics.updates_routed, 1);
        self.pending[shard].push(update);
        if self.pending[shard].len() >= self.config.batch_size {
            self.flush_shard(shard);
        }
    }

    fn flush_shard(&mut self, shard: usize) {
        if self.pending[shard].is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending[shard]);
        EngineMetrics::add(&self.metrics.batches_sent, 1);
        // Capture the ambient ingest trace context at flush time so
        // the shard's apply span joins the trace of the poll pass
        // that filled (most of) the batch.
        let ctx = self.metrics.registry().tracer().current();
        self.senders[shard]
            .send(ShardMsg::Batch(batch, ctx))
            .expect("shard worker alive");
    }

    /// Flushes every pending batch to its shard.
    pub fn flush(&mut self) {
        for shard in 0..self.config.shards {
            self.flush_shard(shard);
        }
    }

    /// Seeds state from a full table snapshot, as if every entry were
    /// announced at `at` — the streaming equivalent of
    /// `StreamReplayer::seed`.
    pub fn seed_snapshot(&mut self, snap: &TableSnapshot, at: u32) {
        for e in &snap.entries {
            let peer = &snap.peers[e.peer_idx as usize];
            self.route(RouteUpdate {
                session: (peer.addr, peer.asn),
                prefix: e.route.prefix,
                action: UpdateAction::Announce(e.route.path.clone()),
                at,
                collector: 0,
            });
        }
    }

    /// Ingests one MRT record as seen from collector 0.
    pub fn ingest_record(&mut self, record: &MrtRecord) {
        self.ingest_record_from(0, record);
    }

    /// Ingests one MRT record observed by `collector`. BGP4MP UPDATEs
    /// mutate state; everything else is counted and skipped, like the
    /// batch reader's fault tolerance. What a record *means* at the
    /// route level comes from
    /// [`moas_core::replay::record_instructions`] — the same
    /// definition the batch replayer applies, so the two pipelines
    /// cannot drift.
    pub fn ingest_record_from(&mut self, collector: u16, record: &MrtRecord) {
        EngineMetrics::add(&self.metrics.records_ingested, 1);
        let Some((session, instructions)) = record_instructions(record) else {
            EngineMetrics::add(&self.metrics.records_skipped, 1);
            return;
        };
        let session: SessionKey = session;
        for instruction in instructions {
            let (prefix, action) = match instruction {
                RouteInstruction::Withdraw { prefix } => (prefix, UpdateAction::Withdraw),
                RouteInstruction::Announce { prefix, route } => {
                    (prefix, UpdateAction::Announce(route.path))
                }
            };
            self.route(RouteUpdate {
                session,
                prefix,
                action,
                at: record.timestamp,
                collector,
            });
        }
    }

    /// Registers a deduplicated cross-collector sighting: `collector`
    /// saw an identical copy of a record another collector already
    /// delivered. Route state is untouched; only the vantage masks of
    /// the record's announced origins widen. Withdraw instructions
    /// carry no origin and are dropped. Rides the normal prefix-routed
    /// batch channel, so per-prefix ordering against real updates is
    /// preserved.
    pub fn corroborate_record(&mut self, collector: u16, record: &MrtRecord) {
        let Some((session, instructions)) = record_instructions(record) else {
            return;
        };
        let session: SessionKey = session;
        for instruction in instructions {
            if let RouteInstruction::Announce { prefix, route } = instruction {
                if let moas_net::Origin::Single(origin) = route.path.origin() {
                    self.route(RouteUpdate {
                        session,
                        prefix,
                        action: UpdateAction::Corroborate(origin),
                        at: record.timestamp,
                        collector,
                    });
                }
            }
        }
    }

    /// Ingests a whole record stream in order.
    pub fn ingest_all<'a, I: IntoIterator<Item = &'a MrtRecord>>(&mut self, records: I) {
        for r in records {
            self.ingest_record(r);
        }
    }

    /// Marks a day boundary: flushes all pending updates, asks every
    /// shard to snapshot its slice for day position `idx` and run its
    /// embedded new-origin detector over it, then aggregates the
    /// shards' per-AS involvement counts and feeds the merged day to
    /// the global §VII origin profiler — so surge alarms match the
    /// batch profiler exactly at any shard count. The aggregation
    /// waits for every shard to reach the mark (a barrier), which is
    /// what makes the merged counts a consistent day snapshot.
    pub fn mark_day(&mut self, idx: usize, date: Date) {
        self.flush();
        EngineMetrics::add(&self.metrics.day_marks, 1);
        let (tx, rx) = mpsc::channel::<Vec<(Asn, u32)>>();
        for sender in &self.senders {
            sender
                .send(ShardMsg::DayMark {
                    idx,
                    date,
                    involvement: tx.clone(),
                })
                .expect("shard worker alive");
        }
        drop(tx);
        let mut merged: HashMap<Asn, u32> = HashMap::new();
        for counts in rx.iter() {
            for (asn, n) in counts {
                *merged.entry(asn).or_default() += n;
            }
        }
        for alarm in self.profiler.observe_counts(date, &merged) {
            self.surge_alarms.push((idx, alarm));
        }
    }

    /// Hands over (and clears) every shard's event log accumulated
    /// since the last drain — the subscription hook a persistent
    /// conflict-history store uses to persist lifecycle events
    /// mid-stream. Returned events are in replay order (see
    /// [`sort_log`]); per-shard `seq` keeps counting across drains, so
    /// concatenated drains plus the final report still form one
    /// causally ordered log. Events drained here no longer appear in
    /// [`MonitorEngine::finish`]'s report.
    pub fn drain_events(&mut self) -> Vec<SeqEvent> {
        self.flush();
        let (tx, rx) = mpsc::channel::<Vec<SeqEvent>>();
        for sender in &self.senders {
            sender
                .send(ShardMsg::Drain(tx.clone()))
                .expect("shard worker alive");
        }
        drop(tx);
        let mut events: Vec<SeqEvent> = rx.iter().flatten().collect();
        sort_log(&mut events);
        events
    }

    /// Takes an epoch-consistent-per-shard snapshot of the live MOAS
    /// set without stopping ingestion: pending batches are flushed,
    /// each shard answers at a message boundary, and ingestion resumes
    /// as soon as the queries are enqueued.
    pub fn snapshot(&mut self) -> MoasSnapshot {
        self.flush();
        let (tx, rx) = mpsc::channel::<ShardSnapshot>();
        for sender in &self.senders {
            sender
                .send(ShardMsg::Query(tx.clone()))
                .expect("shard worker alive");
        }
        drop(tx);
        let mut shards: Vec<ShardSnapshot> = rx.iter().collect();
        shards.sort_by_key(|s| s.shard);
        MoasSnapshot::new(shards)
    }

    /// Flushes, shuts the workers down, and collects the merged
    /// report: the sorted event log, all day slices, in-stream alarms,
    /// and final counters.
    pub fn finish(mut self) -> MonitorReport {
        self.flush();
        for tx in &self.senders {
            tx.send(ShardMsg::Shutdown).expect("shard worker alive");
        }
        drop(self.senders);

        let mut events: Vec<SeqEvent> = Vec::new();
        let mut day_slices: Vec<DaySlice> = Vec::new();
        // Global surge alarms first, then the shards' new-origin
        // alarms; the stable sort below keeps that order within a day.
        let mut alarms: Vec<(usize, Anomaly)> = std::mem::take(&mut self.surge_alarms);
        let mut routes = 0u64;
        let mut prefixes = 0usize;
        let mut spurious = 0u64;
        for handle in self.handles {
            let out = handle.join().expect("shard worker panicked");
            events.extend(out.log);
            day_slices.extend(out.slices);
            alarms.extend(out.alarms);
            routes += out.routes;
            prefixes += out.prefixes;
            spurious += out.spurious_withdrawals;
        }
        sort_log(&mut events);
        day_slices.sort_by_key(|s| (s.idx, s.shard));
        alarms.sort_by_key(|(idx, _)| *idx);

        MonitorReport {
            events,
            day_slices,
            alarms,
            routes,
            prefixes,
            spurious_withdrawals: spurious,
            metrics: self.metrics.snapshot(),
        }
    }
}
