//! Incremental per-prefix origin state for one shard.
//!
//! This is `moas_core::detect` turned inside out: instead of scanning
//! a materialized table, every route-level update adjusts per-prefix
//! origin counters in O(1) and reports the conflict-state transition
//! it caused. The invariant that makes streaming and batch agree is
//! spelled out on the internal `PrefixState`: a prefix is in conflict exactly
//! when it holds no AS-set-terminated route (§III exclusion) and its
//! live routes carry ≥ 2 distinct single origins — precisely the
//! predicate `detect()` evaluates on a snapshot of the same routes.

use crate::event::MonitorEvent;
use moas_net::{AsPath, Asn, Origin, Prefix};
use std::collections::HashMap;
use std::net::IpAddr;

/// A peer session, identified as the replayer does: peering address
/// plus peer AS.
pub type SessionKey = (IpAddr, Asn);

/// One route-level change extracted from an UPDATE.
#[derive(Debug, Clone)]
pub struct RouteUpdate {
    /// The announcing/withdrawing session.
    pub session: SessionKey,
    /// The prefix concerned.
    pub prefix: Prefix,
    /// Announce (with the new path) or withdraw.
    pub action: UpdateAction,
    /// BGP4MP timestamp of the enclosing record.
    pub at: u32,
    /// The vantage point (collector) that observed the update. Always
    /// 0 for single-collector ingest; a federation tags each update
    /// with its source so shards can attribute origin sightings.
    pub collector: u16,
}

/// What an update does to one (session, prefix) slot.
#[derive(Debug, Clone)]
pub enum UpdateAction {
    /// Announce or implicitly replace the session's route.
    Announce(AsPath),
    /// Withdraw the session's route.
    Withdraw,
    /// A deduplicated cross-collector sighting: another collector saw
    /// an identical announcement for this origin. Touches no route
    /// state — it only widens the `(prefix, origin)` vantage mask.
    Corroborate(Asn),
}

/// The route one session currently holds for a prefix.
#[derive(Debug, Clone)]
struct HeldRoute {
    origin: Origin,
    path: AsPath,
}

/// Live state for one prefix.
///
/// Invariant: `single_origins[o]` is the number of sessions whose
/// current route for this prefix has single origin `o`; `set_routes`
/// and `none_routes` count sessions holding AS-set-terminated and
/// empty-path routes. The prefix is in conflict iff `set_routes == 0`
/// and `single_origins.len() >= 2`.
#[derive(Debug, Default)]
struct PrefixState {
    routes: HashMap<SessionKey, HeldRoute>,
    single_origins: HashMap<Asn, u32>,
    set_routes: u32,
    none_routes: u32,
    /// Set while a conflict is open: the opening timestamp.
    open_since: Option<u32>,
}

impl PrefixState {
    fn is_conflict(&self) -> bool {
        self.set_routes == 0 && self.single_origins.len() >= 2
    }

    fn sorted_origins(&self) -> Vec<Asn> {
        let mut origins: Vec<Asn> = self.single_origins.keys().copied().collect();
        origins.sort_unstable();
        origins
    }

    /// Removes one session's contribution from the counters. Returns
    /// the single origin whose count dropped to zero, if any.
    fn drop_route(&mut self, held: &HeldRoute) -> Option<Asn> {
        match &held.origin {
            Origin::Single(o) => {
                let n = self
                    .single_origins
                    .get_mut(o)
                    .expect("counter exists for held origin");
                *n -= 1;
                if *n == 0 {
                    self.single_origins.remove(o);
                    return Some(*o);
                }
                None
            }
            Origin::Set(_) => {
                self.set_routes -= 1;
                None
            }
            Origin::None => {
                self.none_routes -= 1;
                None
            }
        }
    }

    /// Adds one session's contribution. Returns the single origin that
    /// newly appeared, if any.
    fn add_route(&mut self, held: &HeldRoute) -> Option<Asn> {
        match &held.origin {
            Origin::Single(o) => {
                let n = self.single_origins.entry(*o).or_insert(0);
                *n += 1;
                (*n == 1).then_some(*o)
            }
            Origin::Set(_) => {
                self.set_routes += 1;
                None
            }
            Origin::None => {
                self.none_routes += 1;
                None
            }
        }
    }
}

/// An open conflict, as reported by snapshots and day slices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveConflict {
    /// The conflicted prefix.
    pub prefix: Prefix,
    /// Distinct origins currently held (sorted).
    pub origins: Vec<Asn>,
    /// Distinct AS paths currently held by sessions with single
    /// origins (deduplicated, like `detect()`'s path list).
    pub paths: Vec<AsPath>,
    /// When the conflict opened (update-stream timestamp).
    pub opened_at: u32,
}

/// A prefix excluded from conflict accounting by an AS-set route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetExcludedPrefix {
    /// The excluded prefix.
    pub prefix: Prefix,
    /// Union of AS-set members across its set-terminated routes
    /// (sorted).
    pub members: Vec<Asn>,
}

/// The full origin state owned by one shard.
#[derive(Debug, Default)]
pub struct ShardState {
    prefixes: HashMap<Prefix, PrefixState>,
    live_routes: u64,
    spurious_withdrawals: u64,
    /// Whether corroboration tracking is on (federated engine,
    /// `collectors > 1`). Off, the masks map stays empty and `apply`
    /// emits exactly the single-collector event stream.
    track_corroboration: bool,
    /// Per `(prefix, origin)` vantage bitmask: bit `c` set means
    /// collector `c` announced `origin` for `prefix` at some point.
    /// Kept outside [`PrefixState`] on purpose — a fully withdrawn
    /// prefix leaves the prefix table, but "who has ever seen this
    /// origin" must survive withdrawal for §VI corroboration scoring.
    masks: HashMap<(Prefix, Asn), u64>,
}

impl ShardState {
    /// An empty shard.
    pub fn new() -> Self {
        ShardState::default()
    }

    /// An empty shard with cross-collector corroboration tracking
    /// enabled when `collectors > 1`.
    pub fn with_collectors(collectors: usize) -> Self {
        ShardState {
            track_corroboration: collectors > 1,
            ..ShardState::default()
        }
    }

    /// Sets bit `collector` in the `(prefix, origin)` vantage mask.
    /// Returns the new cumulative mask if the bit was not already set.
    fn widen_mask(&mut self, prefix: Prefix, origin: Asn, collector: u16) -> Option<u64> {
        if !self.track_corroboration {
            return None;
        }
        let bit = 1u64 << (collector as u64 % 64);
        let mask = self.masks.entry((prefix, origin)).or_insert(0);
        if *mask & bit != 0 {
            return None;
        }
        *mask |= bit;
        Some(*mask)
    }

    /// The current vantage mask for `(prefix, origin)` (0 when
    /// untracked or never seen).
    pub fn corroboration_mask(&self, prefix: Prefix, origin: Asn) -> u64 {
        self.masks.get(&(prefix, origin)).copied().unwrap_or(0)
    }

    /// Applies one route update; returns the lifecycle events it
    /// caused (at most two route-level events — an origin change plus
    /// a state transition — plus, when federated, the corroboration
    /// events for origins whose vantage mask changed).
    pub fn apply(&mut self, update: &RouteUpdate) -> Vec<MonitorEvent> {
        let mut events = Vec::new();
        let at = update.at;
        let prefix = update.prefix;

        // Corroborations never touch route state: widen the vantage
        // mask and, if the prefix is currently in conflict, surface
        // the change as an event for the history fold.
        if let UpdateAction::Corroborate(origin) = &update.action {
            if let Some(mask) = self.widen_mask(prefix, *origin, update.collector) {
                let in_conflict = self
                    .prefixes
                    .get(&prefix)
                    .is_some_and(|st| st.is_conflict());
                if in_conflict {
                    events.push(MonitorEvent::OriginCorroborated {
                        prefix,
                        origin: *origin,
                        mask,
                        at,
                    });
                }
            }
            return events;
        }

        let st = self.prefixes.entry(prefix).or_default();

        let was_conflict = st.is_conflict();
        let mut removed: Option<Asn> = None;
        let mut added: Option<Asn> = None;

        match &update.action {
            UpdateAction::Announce(path) => {
                let held = HeldRoute {
                    origin: path.origin(),
                    path: path.clone(),
                };
                if let Some(old) = st.routes.remove(&update.session) {
                    removed = st.drop_route(&old);
                } else {
                    self.live_routes += 1;
                }
                added = st.add_route(&held);
                st.routes.insert(update.session, held);
            }
            UpdateAction::Withdraw => match st.routes.remove(&update.session) {
                Some(old) => {
                    removed = st.drop_route(&old);
                    self.live_routes -= 1;
                }
                None => {
                    self.spurious_withdrawals += 1;
                }
            },
            UpdateAction::Corroborate(_) => unreachable!("handled above"),
        }

        // A same-origin replacement cancels out: nothing observable
        // changed at the origin level.
        if removed == added {
            removed = None;
            added = None;
        }

        let now_conflict = st.is_conflict();
        match (was_conflict, now_conflict) {
            (false, true) => {
                st.open_since = Some(at);
                events.push(MonitorEvent::ConflictOpened {
                    prefix,
                    origins: st.sorted_origins(),
                    at,
                });
            }
            (true, false) => {
                let opened_at = st.open_since.take().expect("open conflict has open_since");
                events.push(MonitorEvent::ConflictClosed {
                    prefix,
                    opened_at,
                    at,
                });
            }
            (true, true) => {
                if let Some(origin) = added {
                    events.push(MonitorEvent::OriginAdded { prefix, origin, at });
                }
                if let Some(origin) = removed {
                    events.push(MonitorEvent::OriginWithdrawn { prefix, origin, at });
                }
            }
            (false, false) => {}
        }

        // Fully withdrawn prefixes leave the table entirely, exactly
        // like a snapshot that no longer carries them.
        if st.routes.is_empty() {
            self.prefixes.remove(&prefix);
        }

        // Federated: record which collector saw the announced origin,
        // and narrate mask changes for open conflicts. Emitted after
        // the transition event so a fold sees `ConflictOpened` before
        // the masks of its origins.
        if self.track_corroboration {
            if let UpdateAction::Announce(path) = &update.action {
                if let Origin::Single(o) = path.origin() {
                    let widened = self.widen_mask(prefix, o, update.collector);
                    let open_now = self
                        .prefixes
                        .get(&prefix)
                        .is_some_and(|st| st.is_conflict());
                    if open_now {
                        match (was_conflict, now_conflict) {
                            // Opening update: surface every current
                            // origin's mask, so the episode starts with
                            // full vantage attribution.
                            (false, true) => {
                                let origins = self
                                    .prefixes
                                    .get(&prefix)
                                    .map(|st| st.sorted_origins())
                                    .unwrap_or_default();
                                for origin in origins {
                                    let mask = self.corroboration_mask(prefix, origin);
                                    if mask != 0 {
                                        events.push(MonitorEvent::OriginCorroborated {
                                            prefix,
                                            origin,
                                            mask,
                                            at,
                                        });
                                    }
                                }
                            }
                            _ => {
                                if let Some(mask) = widened {
                                    events.push(MonitorEvent::OriginCorroborated {
                                        prefix,
                                        origin: o,
                                        mask,
                                        at,
                                    });
                                } else if added == Some(o) {
                                    // The origin joined an open
                                    // conflict with a mask built up
                                    // before it was conflicted —
                                    // re-announce it for the fold.
                                    let mask = self.corroboration_mask(prefix, o);
                                    if mask != 0 {
                                        events.push(MonitorEvent::OriginCorroborated {
                                            prefix,
                                            origin: o,
                                            mask,
                                            at,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        events
    }

    /// Routes currently held across sessions.
    pub fn route_count(&self) -> u64 {
        self.live_routes
    }

    /// Distinct prefixes with at least one live route.
    pub fn prefix_count(&self) -> usize {
        self.prefixes.len()
    }

    /// Withdrawals that matched no held route.
    pub fn spurious_withdrawals(&self) -> u64 {
        self.spurious_withdrawals
    }

    /// Approximate retained bytes of this shard's origin state — the
    /// input behind `moas_shard_state_bytes{shard=...}` and the
    /// `moas_resource_bytes{component="shard_state"}` ledger. Container
    /// geometry (entries × struct sizes plus per-route path hops), not
    /// an allocator measurement; O(prefixes + routes), so callers
    /// publish it on a coarse cadence, not per update.
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        let mut total = size_of::<ShardState>() as u64;
        total += (self.masks.len() * (size_of::<(Prefix, Asn)>() + size_of::<u64>())) as u64;
        for state in self.prefixes.values() {
            total += (size_of::<Prefix>() + size_of::<PrefixState>()) as u64;
            total += (state.single_origins.len() * (size_of::<Asn>() + size_of::<u32>())) as u64;
            for held in state.routes.values() {
                total += (size_of::<SessionKey>() + size_of::<HeldRoute>()) as u64
                    + (held.path.hop_count() * size_of::<Asn>()) as u64;
            }
        }
        total
    }

    /// Live routes whose path has no extractable origin.
    pub fn empty_path_routes(&self) -> u64 {
        self.prefixes.values().map(|p| p.none_routes as u64).sum()
    }

    /// The currently open conflicts (prefix order).
    pub fn open_conflicts(&self) -> Vec<LiveConflict> {
        let mut out: Vec<LiveConflict> = self
            .prefixes
            .iter()
            .filter(|(_, st)| st.is_conflict())
            .map(|(prefix, st)| LiveConflict {
                prefix: *prefix,
                origins: st.sorted_origins(),
                paths: dedup_paths(st),
                opened_at: st.open_since.expect("open conflict has open_since"),
            })
            .collect();
        out.sort_by_key(|c| c.prefix);
        out
    }

    /// Prefixes currently excluded by AS-set routes, with member
    /// unions (prefix order) — the streaming counterpart of
    /// `DayObservation::as_set_prefixes`.
    pub fn set_excluded(&self) -> Vec<SetExcludedPrefix> {
        let mut out: Vec<SetExcludedPrefix> = self
            .prefixes
            .iter()
            .filter(|(_, st)| st.set_routes > 0)
            .map(|(prefix, st)| {
                let mut members: Vec<Asn> = Vec::new();
                for held in st.routes.values() {
                    if let Origin::Set(set) = &held.origin {
                        for m in set {
                            if !members.contains(m) {
                                members.push(*m);
                            }
                        }
                    }
                }
                members.sort_unstable();
                SetExcludedPrefix {
                    prefix: *prefix,
                    members,
                }
            })
            .collect();
        out.sort_by_key(|e| e.prefix);
        out
    }
}

fn dedup_paths(st: &PrefixState) -> Vec<AsPath> {
    let mut paths: Vec<AsPath> = Vec::new();
    for held in st.routes.values() {
        if matches!(held.origin, Origin::Single(_)) && !paths.contains(&held.path) {
            paths.push(held.path.clone());
        }
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sess(n: u8, asn: u32) -> SessionKey {
        (IpAddr::V4(Ipv4Addr::new(10, 0, 0, n)), Asn::new(asn))
    }

    fn announce(s: SessionKey, prefix: &str, path: &str, at: u32) -> RouteUpdate {
        RouteUpdate {
            session: s,
            prefix: prefix.parse().unwrap(),
            action: UpdateAction::Announce(path.parse().unwrap()),
            at,
            collector: 0,
        }
    }

    fn withdraw(s: SessionKey, prefix: &str, at: u32) -> RouteUpdate {
        RouteUpdate {
            session: s,
            prefix: prefix.parse().unwrap(),
            action: UpdateAction::Withdraw,
            at,
            collector: 0,
        }
    }

    fn announce_from(c: u16, s: SessionKey, prefix: &str, path: &str, at: u32) -> RouteUpdate {
        RouteUpdate {
            collector: c,
            ..announce(s, prefix, path, at)
        }
    }

    fn corroborate(c: u16, s: SessionKey, prefix: &str, origin: u32, at: u32) -> RouteUpdate {
        RouteUpdate {
            session: s,
            prefix: prefix.parse().unwrap(),
            action: UpdateAction::Corroborate(Asn::new(origin)),
            at,
            collector: c,
        }
    }

    #[test]
    fn open_and_close_lifecycle() {
        let mut st = ShardState::new();
        assert!(st
            .apply(&announce(sess(1, 701), "192.0.2.0/24", "701 7", 10))
            .is_empty());
        let ev = st.apply(&announce(sess(2, 1239), "192.0.2.0/24", "1239 9", 20));
        assert_eq!(
            ev,
            vec![MonitorEvent::ConflictOpened {
                prefix: "192.0.2.0/24".parse().unwrap(),
                origins: vec![Asn::new(7), Asn::new(9)],
                at: 20,
            }]
        );
        let ev = st.apply(&withdraw(sess(2, 1239), "192.0.2.0/24", 50));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].duration_secs(), Some(30));
        assert!(st.open_conflicts().is_empty());
    }

    #[test]
    fn origin_churn_in_open_conflict() {
        let mut st = ShardState::new();
        st.apply(&announce(sess(1, 701), "192.0.2.0/24", "701 7", 0));
        st.apply(&announce(sess(2, 1239), "192.0.2.0/24", "1239 9", 1));
        let ev = st.apply(&announce(sess(3, 3561), "192.0.2.0/24", "3561 11", 2));
        assert_eq!(
            ev,
            vec![MonitorEvent::OriginAdded {
                prefix: "192.0.2.0/24".parse().unwrap(),
                origin: Asn::new(11),
                at: 2,
            }]
        );
        // Session 3 re-announces with a different origin: one add and
        // one withdraw, conflict stays open.
        let ev = st.apply(&announce(sess(3, 3561), "192.0.2.0/24", "3561 13", 3));
        assert_eq!(ev.len(), 2);
        assert!(
            matches!(&ev[0], MonitorEvent::OriginAdded { origin, .. } if *origin == Asn::new(13))
        );
        assert!(
            matches!(&ev[1], MonitorEvent::OriginWithdrawn { origin, .. } if *origin == Asn::new(11))
        );
    }

    #[test]
    fn same_origin_replacement_is_silent() {
        let mut st = ShardState::new();
        st.apply(&announce(sess(1, 701), "192.0.2.0/24", "701 7", 0));
        st.apply(&announce(sess(2, 1239), "192.0.2.0/24", "1239 9", 1));
        let ev = st.apply(&announce(sess(1, 701), "192.0.2.0/24", "701 42 7", 2));
        assert!(ev.is_empty(), "path change with same origin: {ev:?}");
    }

    #[test]
    fn as_set_route_closes_and_excludes() {
        let mut st = ShardState::new();
        st.apply(&announce(sess(1, 701), "192.0.2.0/24", "701 7", 0));
        st.apply(&announce(sess(2, 1239), "192.0.2.0/24", "1239 9", 1));
        let ev = st.apply(&announce(sess(3, 3561), "192.0.2.0/24", "3561 {7,9}", 2));
        assert!(matches!(&ev[0], MonitorEvent::ConflictClosed { .. }));
        assert!(st.open_conflicts().is_empty());
        let excluded = st.set_excluded();
        assert_eq!(excluded.len(), 1);
        assert_eq!(excluded[0].members, vec![Asn::new(7), Asn::new(9)]);
        // Withdrawing the set route reopens the conflict.
        let ev = st.apply(&withdraw(sess(3, 3561), "192.0.2.0/24", 3));
        assert!(matches!(&ev[0], MonitorEvent::ConflictOpened { at: 3, .. }));
    }

    #[test]
    fn spurious_withdrawal_counted_not_crashed() {
        let mut st = ShardState::new();
        assert!(st
            .apply(&withdraw(sess(1, 701), "10.0.0.0/8", 0))
            .is_empty());
        assert_eq!(st.spurious_withdrawals(), 1);
        assert_eq!(st.prefix_count(), 0);
    }

    #[test]
    fn duplicate_paths_deduplicated_in_live_conflict() {
        let mut st = ShardState::new();
        st.apply(&announce(sess(1, 701), "192.0.2.0/24", "100 7", 0));
        st.apply(&announce(sess(2, 1239), "192.0.2.0/24", "100 7", 1));
        st.apply(&announce(sess(3, 3561), "192.0.2.0/24", "200 9", 2));
        let open = st.open_conflicts();
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].paths.len(), 2, "identical paths folded");
    }

    #[test]
    fn full_withdrawal_removes_prefix() {
        let mut st = ShardState::new();
        st.apply(&announce(sess(1, 701), "10.0.0.0/8", "701 7", 0));
        st.apply(&withdraw(sess(1, 701), "10.0.0.0/8", 1));
        assert_eq!(st.prefix_count(), 0);
        assert_eq!(st.route_count(), 0);
    }

    #[test]
    fn single_collector_emits_no_corroboration() {
        let mut st = ShardState::with_collectors(1);
        st.apply(&announce(sess(1, 701), "192.0.2.0/24", "701 7", 0));
        let ev = st.apply(&announce(sess(2, 1239), "192.0.2.0/24", "1239 9", 1));
        assert_eq!(ev.len(), 1, "only the open event: {ev:?}");
        assert_eq!(
            st.corroboration_mask("192.0.2.0/24".parse().unwrap(), Asn::new(7)),
            0
        );
        // A stray corroborate in single-collector mode is a no-op.
        let ev = st.apply(&corroborate(0, sess(1, 701), "192.0.2.0/24", 7, 2));
        assert!(ev.is_empty());
    }

    #[test]
    fn corroboration_masks_widen_and_narrate() {
        let px: Prefix = "192.0.2.0/24".parse().unwrap();
        let mut st = ShardState::with_collectors(3);
        st.apply(&announce(sess(1, 701), "192.0.2.0/24", "701 7", 0));
        let ev = st.apply(&announce(sess(2, 1239), "192.0.2.0/24", "1239 9", 1));
        // Open event first, then both origins' masks (collector 0).
        assert!(matches!(&ev[0], MonitorEvent::ConflictOpened { .. }));
        assert_eq!(ev.len(), 3, "{ev:?}");
        assert_eq!(st.corroboration_mask(px, Asn::new(7)), 0b1);
        // Collector 2 corroborates origin 7: mask widens, event emitted.
        let ev = st.apply(&corroborate(2, sess(1, 701), "192.0.2.0/24", 7, 5));
        assert_eq!(
            ev,
            vec![MonitorEvent::OriginCorroborated {
                prefix: px,
                origin: Asn::new(7),
                mask: 0b101,
                at: 5,
            }]
        );
        // Repeat sighting from the same collector: silent.
        assert!(st
            .apply(&corroborate(2, sess(1, 701), "192.0.2.0/24", 7, 6))
            .is_empty());
        // A direct announce from collector 1 widens too.
        let ev = st.apply(&announce_from(
            1,
            sess(3, 3561),
            "192.0.2.0/24",
            "3561 7",
            7,
        ));
        assert_eq!(
            ev,
            vec![MonitorEvent::OriginCorroborated {
                prefix: px,
                origin: Asn::new(7),
                mask: 0b111,
                at: 7,
            }]
        );
    }

    #[test]
    fn corroboration_mask_survives_prefix_withdrawal() {
        let px: Prefix = "192.0.2.0/24".parse().unwrap();
        let mut st = ShardState::with_collectors(2);
        st.apply(&announce(sess(1, 701), "192.0.2.0/24", "701 7", 0));
        st.apply(&corroborate(1, sess(1, 701), "192.0.2.0/24", 7, 1));
        st.apply(&withdraw(sess(1, 701), "192.0.2.0/24", 2));
        assert_eq!(st.prefix_count(), 0, "prefix fully withdrawn");
        assert_eq!(st.corroboration_mask(px, Asn::new(7)), 0b11);
        // Reopening the conflict re-announces the retained masks.
        st.apply(&announce(sess(1, 701), "192.0.2.0/24", "701 7", 3));
        let ev = st.apply(&announce(sess(2, 1239), "192.0.2.0/24", "1239 9", 4));
        assert!(ev.iter().any(|e| matches!(
            e,
            MonitorEvent::OriginCorroborated { origin, mask: 0b11, .. } if *origin == Asn::new(7)
        )));
    }
}
