//! # moas-monitor — online streaming MOAS conflict detection
//!
//! The paper's §VII names the goal beyond daily-snapshot measurement:
//! identifying invalid conflicts *as they happen*. This crate is that
//! monitor: an online, sharded, incremental detection engine that
//! consumes BGP4MP update streams (from MRT files via `moas-mrt`, or
//! synthesized by `moas-routeviews::updates`) and maintains live
//! per-prefix origin state, instead of re-materializing snapshots and
//! re-running `detect()` per check.
//!
//! * [`state`] — the incremental per-prefix origin bookkeeping: O(1)
//!   per route update, with the exact conflict predicate of
//!   `moas_core::detect` (≥ 2 distinct single origins, no AS-set
//!   route).
//! * [`event`] — typed lifecycle events with real-time timestamps:
//!   [`event::MonitorEvent::ConflictOpened`], `OriginAdded`,
//!   `OriginWithdrawn`, `ConflictClosed`.
//! * [`shard`] — worker threads, each owning a prefix-hash slice of
//!   the state plus an embedded `moas_core::detector::MoasMonitor`
//!   (prefix-sharded, so its new-origin alarms are exact). At day
//!   marks each shard also replies with its per-AS involvement
//!   counts, which the engine sums into one global
//!   `moas_core::detector::OriginProfiler` — surge alarms therefore
//!   match the batch profiler exactly at any shard count.
//! * [`engine`] — routing, per-peer batching, bounded channels with
//!   backpressure, day marks, shutdown/collect, and the
//!   [`engine::MonitorEngine::drain_events`] hook that hands
//!   accumulated lifecycle events to a downstream consumer mid-stream
//!   (the persistent `moas-history` store is built on it).
//! * [`query`] — epoch snapshots of the live MOAS set
//!   ("current conflicts", "open longer than D") without stopping
//!   ingestion, and the fold that merges an event log into the batch
//!   [`moas_core::timeline::Timeline`] so both pipelines report
//!   identical `total_conflicts()` / `durations()`.
//! * [`metrics`] — atomic engine counters.
//!
//! ```no_run
//! use moas_monitor::{MonitorConfig, MonitorEngine};
//!
//! let mut engine = MonitorEngine::new(MonitorConfig::with_shards(4));
//! // engine.ingest_all(&records);
//! let snap = engine.snapshot();
//! println!("open conflicts: {}", snap.open_count());
//! let report = engine.finish();
//! println!("events: {}", report.events.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod metrics;
pub mod query;
pub mod shard;
pub mod state;

pub use engine::{MonitorConfig, MonitorEngine};
pub use event::{MonitorEvent, SeqEvent};
pub use metrics::MetricsSnapshot;
pub use query::{fold_events_into_timeline, MoasSnapshot, MonitorReport};
pub use state::{LiveConflict, RouteUpdate, SessionKey, UpdateAction};
