//! Typed events emitted by the streaming engine.
//!
//! Where the batch pipeline re-derives each day's conflict table from
//! scratch, the monitor narrates conflict *lifecycles*: a conflict
//! opens the moment a second distinct origin appears for a prefix,
//! mutates as origins come and go, and closes when fewer than two
//! remain (or an AS-set route poisons the prefix, §III). Every event
//! carries the BGP4MP timestamp of the update that caused it, so
//! downstream consumers get real-time conflict durations instead of
//! day-granularity ones.

use moas_net::{Asn, Prefix};

/// One lifecycle event for a conflicted prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorEvent {
    /// A prefix just gained its second distinct origin (or lost the
    /// AS-set route that was excluding it): a MOAS conflict is open.
    ConflictOpened {
        /// The conflicted prefix.
        prefix: Prefix,
        /// Distinct origins at the moment of opening (sorted).
        origins: Vec<Asn>,
        /// Update-stream timestamp (seconds since the Unix epoch).
        at: u32,
    },
    /// An additional origin joined an already-open conflict.
    OriginAdded {
        /// The conflicted prefix.
        prefix: Prefix,
        /// The origin that appeared.
        origin: Asn,
        /// Update-stream timestamp.
        at: u32,
    },
    /// An origin left a conflict that stays open (≥ 2 remain).
    OriginWithdrawn {
        /// The conflicted prefix.
        prefix: Prefix,
        /// The origin that vanished.
        origin: Asn,
        /// Update-stream timestamp.
        at: u32,
    },
    /// The conflict ended: fewer than two distinct origins remain, or
    /// an AS-set-terminated route appeared and excluded the prefix.
    ConflictClosed {
        /// The prefix whose conflict ended.
        prefix: Prefix,
        /// When the conflict had opened.
        opened_at: u32,
        /// Update-stream timestamp of the close.
        at: u32,
    },
    /// The set of vantage points (collectors) that have observed an
    /// origin of an open conflict changed. Only emitted when the
    /// engine runs federated (`MonitorConfig::collectors > 1`); the
    /// mask is cumulative — bit `c` set means collector `c` has seen
    /// this origin announced for this prefix — so downstream folds can
    /// keep the latest mask per `(prefix, origin)` without replaying
    /// deltas.
    OriginCorroborated {
        /// The conflicted prefix.
        prefix: Prefix,
        /// The origin whose vantage set changed.
        origin: Asn,
        /// Cumulative collector bitmask (bit `c` = collector `c`).
        mask: u64,
        /// Update-stream timestamp.
        at: u32,
    },
}

impl MonitorEvent {
    /// The prefix the event concerns.
    pub fn prefix(&self) -> Prefix {
        match self {
            MonitorEvent::ConflictOpened { prefix, .. }
            | MonitorEvent::OriginAdded { prefix, .. }
            | MonitorEvent::OriginWithdrawn { prefix, .. }
            | MonitorEvent::ConflictClosed { prefix, .. }
            | MonitorEvent::OriginCorroborated { prefix, .. } => *prefix,
        }
    }

    /// The update-stream timestamp of the event.
    pub fn at(&self) -> u32 {
        match self {
            MonitorEvent::ConflictOpened { at, .. }
            | MonitorEvent::OriginAdded { at, .. }
            | MonitorEvent::OriginWithdrawn { at, .. }
            | MonitorEvent::ConflictClosed { at, .. }
            | MonitorEvent::OriginCorroborated { at, .. } => *at,
        }
    }

    /// For a close event, the real-time conflict duration in seconds.
    pub fn duration_secs(&self) -> Option<u32> {
        match self {
            MonitorEvent::ConflictClosed { opened_at, at, .. } => {
                Some(at.saturating_sub(*opened_at))
            }
            _ => None,
        }
    }
}

/// An event stamped with its emitting shard and that shard's local
/// sequence number. `(at, shard, seq)` is a total order that respects
/// per-prefix causality (a prefix lives on exactly one shard, and a
/// shard's `seq` increases monotonically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqEvent {
    /// Which shard emitted the event.
    pub shard: usize,
    /// The shard-local sequence number.
    pub seq: u64,
    /// The event itself.
    pub event: MonitorEvent,
}

/// Sorts a merged multi-shard log into replay order.
pub fn sort_log(log: &mut [SeqEvent]) {
    log.sort_by_key(|e| (e.event.at(), e.shard, e.seq));
}
