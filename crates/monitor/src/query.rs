//! Query surface: epoch snapshots of the live MOAS set, and the merge
//! path that folds a monitor run back into the batch pipeline's
//! [`Timeline`] so streaming and batch statistics agree.

use crate::event::{MonitorEvent, SeqEvent};
use crate::metrics::MetricsSnapshot;
use crate::shard::{DaySlice, ShardSnapshot};
use crate::state::LiveConflict;
use moas_core::detect::{DayObservation, PrefixConflict};
use moas_core::detector::Anomaly;
use moas_core::timeline::Timeline;
use moas_mrt::snapshot::midnight_timestamp;
use moas_net::{AsPath, Asn, Date, Prefix};
use std::collections::{BTreeSet, HashMap};

/// A point-in-time view of the live MOAS set, assembled from one
/// answer per shard. Each shard's answer is consistent at a batch
/// boundary of that shard's queue; `epochs()` reports how many
/// updates each had applied.
#[derive(Debug, Clone)]
pub struct MoasSnapshot {
    shards: Vec<ShardSnapshot>,
}

impl MoasSnapshot {
    /// Assembles a snapshot (shards sorted by index).
    pub fn new(shards: Vec<ShardSnapshot>) -> Self {
        MoasSnapshot { shards }
    }

    /// Per-shard update-application epochs.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.epoch).collect()
    }

    /// All open conflicts, merged across shards (prefix order).
    pub fn open_conflicts(&self) -> Vec<LiveConflict> {
        let mut all: Vec<LiveConflict> = self
            .shards
            .iter()
            .flat_map(|s| s.open.iter().cloned())
            .collect();
        all.sort_by_key(|c| c.prefix);
        all
    }

    /// Number of open conflicts.
    pub fn open_count(&self) -> usize {
        self.shards.iter().map(|s| s.open.len()).sum()
    }

    /// Conflicts open for longer than `min_secs` as of `now` — the
    /// §VI duration heuristic ("long-lived conflicts are likely valid
    /// practice"), live.
    pub fn open_longer_than(&self, min_secs: u32, now: u32) -> Vec<LiveConflict> {
        let mut out: Vec<LiveConflict> = self
            .shards
            .iter()
            .flat_map(|s| s.open.iter())
            .filter(|c| now.saturating_sub(c.opened_at) > min_secs)
            .cloned()
            .collect();
        out.sort_by_key(|c| c.prefix);
        out
    }

    /// Total live routes across shards.
    pub fn route_count(&self) -> u64 {
        self.shards.iter().map(|s| s.routes).sum()
    }

    /// Total distinct prefixes across shards.
    pub fn prefix_count(&self) -> usize {
        self.shards.iter().map(|s| s.prefixes).sum()
    }
}

/// Everything a finished engine run produced.
#[derive(Debug)]
pub struct MonitorReport {
    /// The merged event log, in replay order.
    pub events: Vec<SeqEvent>,
    /// Every shard's slice of every marked day, sorted by (day,
    /// shard).
    pub day_slices: Vec<DaySlice>,
    /// §VII alarms raised in-stream, tagged with day position.
    pub alarms: Vec<(usize, Anomaly)>,
    /// Final live-route count.
    pub routes: u64,
    /// Final distinct-prefix count.
    pub prefixes: usize,
    /// Withdrawals that matched no held route.
    pub spurious_withdrawals: u64,
    /// Final engine counters.
    pub metrics: MetricsSnapshot,
}

impl MonitorReport {
    /// Reassembles the full [`DayObservation`] for a marked day by
    /// merging every shard's slice. Sessions are renumbered per
    /// conflict, so compare conflicts by `(prefix, origins)` against
    /// batch `detect()` — those are exactly equal; path session ids
    /// are not meaningful across the two pipelines.
    pub fn day_observation(&self, idx: usize) -> Option<DayObservation> {
        let slices: Vec<&DaySlice> = self.day_slices.iter().filter(|s| s.idx == idx).collect();
        if slices.is_empty() {
            return None;
        }
        let mut obs = DayObservation {
            date: Some(slices[0].date),
            ..DayObservation::default()
        };
        for slice in slices {
            let part = slice.to_observation();
            obs.conflicts.extend(part.conflicts);
            obs.as_set_prefixes.extend(part.as_set_prefixes);
            obs.total_prefixes += part.total_prefixes;
            obs.empty_path_routes += part.empty_path_routes;
            obs.total_routes += part.total_routes;
        }
        obs.conflicts.sort_by_key(|c| c.prefix);
        obs.as_set_prefixes.sort_by_key(|(p, _)| *p);
        Some(obs)
    }

    /// Real-time durations (seconds) of all closed conflicts.
    pub fn closed_durations(&self) -> Vec<u32> {
        self.events
            .iter()
            .filter_map(|e| e.event.duration_secs())
            .collect()
    }

    /// Folds the event log into a batch [`Timeline`]: for each
    /// snapshot day, a conflict counts iff it was open at the end of
    /// that day's update stream. See [`fold_events_into_timeline`].
    pub fn fold_into_timeline(&self, dates: &[Date], core_len: usize) -> Timeline {
        fold_events_into_timeline(&self.events, dates, core_len)
    }
}

/// Folds an event log into the batch pipeline's [`Timeline`].
///
/// Day streams are timestamped within the day they lead into
/// (`moas_routeviews::updates::diff_snapshots`), so the state at the
/// day's snapshot instant is the state after every event with
/// `at < midnight(date) + 86 400`. A conflict therefore counts toward
/// day `idx` iff it is open at that cut — the same "present in the
/// day's table" semantics `detect()` applies to a materialized
/// snapshot, which is what makes `total_conflicts()` and `durations()`
/// agree exactly between the two pipelines.
///
/// The fold does not trust timestamps for causality: events are
/// replayed in `(shard, seq)` order — the order each shard actually
/// applied its updates, which is total per prefix — and timestamps
/// only place each event into a day bucket, clamped per prefix so a
/// later event never lands in an earlier day than its predecessor.
/// Real MRT archives (and any stream longer than a day's seconds) can
/// carry locally non-monotonic timestamps; mis-sorting by time alone
/// would pair opens and closes wrongly.
///
/// Conflicts that open and close entirely *between* two snapshot
/// instants never count — also exactly like the paper's once-a-day
/// methodology (that invisibility is the monitor's whole motivation;
/// the real-time durations live in the event log itself).
///
/// Daily class histograms need full path sets, which events do not
/// carry; the fold synthesizes one single-hop path per origin, so
/// `DailyStats::class_counts` from a fold are not meaningful.
pub fn fold_events_into_timeline(events: &[SeqEvent], dates: &[Date], core_len: usize) -> Timeline {
    let cuts: Vec<u32> = dates
        .iter()
        .map(|d| midnight_timestamp(*d).saturating_add(86_400))
        .collect();

    // Causal order: per prefix this is exactly the order the owning
    // shard applied updates, regardless of timestamp quirks.
    let mut causal: Vec<&SeqEvent> = events.iter().collect();
    causal.sort_by_key(|e| (e.shard, e.seq));

    // Bucket each event into the first day whose cut lies after it,
    // clamped per prefix to keep buckets monotone along the causal
    // order; events past the last cut fall outside the window.
    let mut buckets: Vec<Vec<&MonitorEvent>> = vec![Vec::new(); dates.len()];
    let mut last_bucket: HashMap<Prefix, usize> = HashMap::new();
    for e in causal {
        let at = e.event.at();
        let natural = cuts.partition_point(|&cut| cut <= at);
        let floor = last_bucket.get(&e.event.prefix()).copied().unwrap_or(0);
        let bucket = natural.max(floor);
        if bucket >= dates.len() {
            continue;
        }
        last_bucket.insert(e.event.prefix(), bucket);
        buckets[bucket].push(&e.event);
    }

    let mut tl = Timeline::new(dates.to_vec(), core_len);
    let mut open: HashMap<Prefix, BTreeSet<Asn>> = HashMap::new();
    for (idx, date) in dates.iter().enumerate() {
        for event in &buckets[idx] {
            apply_to_open(event, &mut open);
        }
        let mut conflicts: Vec<PrefixConflict> = open
            .iter()
            .map(|(prefix, origins)| PrefixConflict {
                prefix: *prefix,
                origins: origins.iter().copied().collect(),
                paths: origins
                    .iter()
                    .enumerate()
                    .map(|(s, o)| (s as u16, AsPath::from_sequence([*o])))
                    .collect(),
            })
            .collect();
        conflicts.sort_by_key(|c| c.prefix);
        let obs = DayObservation {
            date: Some(*date),
            conflicts,
            ..DayObservation::default()
        };
        tl.record(idx, &obs);
    }
    tl
}

fn apply_to_open(event: &MonitorEvent, open: &mut HashMap<Prefix, BTreeSet<Asn>>) {
    match event {
        MonitorEvent::ConflictOpened {
            prefix, origins, ..
        } => {
            open.insert(*prefix, origins.iter().copied().collect());
        }
        MonitorEvent::OriginAdded { prefix, origin, .. } => {
            open.entry(*prefix).or_default().insert(*origin);
        }
        MonitorEvent::OriginWithdrawn { prefix, origin, .. } => {
            if let Some(set) = open.get_mut(prefix) {
                set.remove(origin);
            }
        }
        MonitorEvent::ConflictClosed { prefix, .. } => {
            open.remove(prefix);
        }
        // Vantage-mask bookkeeping never changes which conflicts are
        // open — the fold ignores it, which is what makes a federated
        // run's Timeline identical to the single-collector fold.
        MonitorEvent::OriginCorroborated { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moas_net::Asn;

    fn ev(shard: usize, seq: u64, event: MonitorEvent) -> SeqEvent {
        SeqEvent { shard, seq, event }
    }

    fn prefix() -> Prefix {
        "192.0.2.0/24".parse().unwrap()
    }

    fn origins() -> Vec<Asn> {
        vec![Asn::new(7), Asn::new(9)]
    }

    #[test]
    fn fold_counts_conflict_open_at_each_cut() {
        // Day 0 = 1970-01-01 (midnight 0). Opens day 0, closes day 2.
        let dates: Vec<Date> = (0..3).map(|i| Date::ymd(1970, 1, 1).plus_days(i)).collect();
        let events = vec![
            ev(
                0,
                0,
                MonitorEvent::ConflictOpened {
                    prefix: prefix(),
                    origins: origins(),
                    at: 1_000,
                },
            ),
            ev(
                0,
                1,
                MonitorEvent::ConflictClosed {
                    prefix: prefix(),
                    opened_at: 1_000,
                    at: 2 * 86_400 + 10,
                },
            ),
        ];
        let tl = fold_events_into_timeline(&events, &dates, 3);
        assert_eq!(tl.total_conflicts(), 1);
        assert_eq!(
            tl.durations(),
            vec![2],
            "open at cuts 0 and 1, closed by cut 2"
        );
    }

    #[test]
    fn fold_survives_non_monotonic_timestamps() {
        // A close whose timestamp wrapped *behind* its open (as a
        // >86 400-record day stream or a messy real archive can
        // produce). Causal (seq) order must win: the conflict is
        // closed, not phantom-open forever.
        let dates: Vec<Date> = (0..2).map(|i| Date::ymd(1970, 1, 1).plus_days(i)).collect();
        let events = vec![
            ev(
                0,
                0,
                MonitorEvent::ConflictOpened {
                    prefix: prefix(),
                    origins: origins(),
                    at: 86_500, // day 1
                },
            ),
            ev(
                0,
                1,
                MonitorEvent::ConflictClosed {
                    prefix: prefix(),
                    opened_at: 86_500,
                    at: 100, // wrapped: nominally day 0
                },
            ),
        ];
        let tl = fold_events_into_timeline(&events, &dates, 2);
        assert_eq!(
            tl.total_conflicts(),
            0,
            "close must not be resorted before its open"
        );
    }

    #[test]
    fn fold_ignores_events_past_the_window() {
        let dates = vec![Date::ymd(1970, 1, 1)];
        let events = vec![ev(
            0,
            0,
            MonitorEvent::ConflictOpened {
                prefix: prefix(),
                origins: origins(),
                at: 5 * 86_400,
            },
        )];
        let tl = fold_events_into_timeline(&events, &dates, 1);
        assert_eq!(tl.total_conflicts(), 0);
    }
}
