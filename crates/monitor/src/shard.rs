//! Shard workers: each owns a prefix-hash slice of the origin state.
//!
//! Workers consume batched route updates from a bounded channel
//! (blocking the producer when full — backpressure, not unbounded
//! queues), apply them to their [`ShardState`], log the lifecycle
//! events, and answer control messages: day marks (snapshot the
//! shard's slice for the day, feed the embedded §VII detectors) and
//! epoch queries (report the current MOAS set without stopping
//! ingestion).

use crate::event::{MonitorEvent, SeqEvent};
use crate::metrics::EngineMetrics;
use crate::state::{LiveConflict, RouteUpdate, SetExcludedPrefix, ShardState};
use moas_core::detect::{DayObservation, PrefixConflict};
use moas_core::detector::{Anomaly, MoasMonitor};
use moas_net::{Asn, Date};
use moas_obs::SpanContext;
use std::collections::BTreeMap;
use std::sync::{mpsc, Arc};

/// Messages a shard worker consumes.
pub enum ShardMsg {
    /// A batch of route updates (per-prefix order preserved by the
    /// engine's routing), plus the ingest trace context captured when
    /// the engine flushed the batch — the shard's `shard_apply` span
    /// attaches there, so one trace id crosses the channel.
    Batch(Vec<RouteUpdate>, SpanContext),
    /// Day boundary: snapshot this shard's slice as a [`DaySlice`],
    /// run the embedded new-origin detector over it, and reply with
    /// this shard's per-AS conflict-involvement counts so the engine
    /// can aggregate them across shards for the §VII origin profiler.
    DayMark {
        /// Snapshot-day position in the study window.
        idx: usize,
        /// The calendar date of the day.
        date: Date,
        /// Where to send this shard's involvement counts for the day.
        involvement: mpsc::Sender<Vec<(Asn, u32)>>,
    },
    /// Epoch query: report the current open conflicts.
    Query(mpsc::Sender<ShardSnapshot>),
    /// Event drain: hand over (and clear) the event log accumulated
    /// since the last drain, so a downstream store can persist
    /// lifecycle events mid-stream instead of waiting for shutdown.
    Drain(mpsc::Sender<Vec<SeqEvent>>),
    /// Drain and exit.
    Shutdown,
}

/// One shard's contribution to a day's observation.
#[derive(Debug, Clone)]
pub struct DaySlice {
    /// Which shard produced the slice.
    pub shard: usize,
    /// Snapshot-day position.
    pub idx: usize,
    /// The day's date.
    pub date: Date,
    /// Conflicts open at the mark (prefix order).
    pub conflicts: Vec<LiveConflict>,
    /// Prefixes excluded by AS-set routes at the mark.
    pub set_excluded: Vec<SetExcludedPrefix>,
    /// Distinct prefixes with live routes in this shard.
    pub total_prefixes: usize,
    /// Live routes in this shard.
    pub total_routes: u64,
    /// Live routes with no extractable origin.
    pub empty_path_routes: u64,
}

impl DaySlice {
    /// Renders the slice as a [`DayObservation`] over this shard's
    /// prefixes only (sessions are renumbered per conflict; `detect()`
    /// semantics otherwise).
    pub fn to_observation(&self) -> DayObservation {
        DayObservation {
            date: Some(self.date),
            conflicts: self
                .conflicts
                .iter()
                .map(|c| PrefixConflict {
                    prefix: c.prefix,
                    origins: c.origins.clone(),
                    paths: c
                        .paths
                        .iter()
                        .cloned()
                        .enumerate()
                        .map(|(i, p)| (i as u16, p))
                        .collect(),
                })
                .collect(),
            as_set_prefixes: self
                .set_excluded
                .iter()
                .map(|e| (e.prefix, e.members.clone()))
                .collect(),
            total_prefixes: self.total_prefixes,
            empty_path_routes: self.empty_path_routes as usize,
            total_routes: self.total_routes as usize,
        }
    }
}

/// A shard's answer to an epoch query.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Which shard answered.
    pub shard: usize,
    /// Updates this shard had applied when it answered — the shard's
    /// epoch. Monotonic; two queries bracketing an idle engine return
    /// equal epochs.
    pub epoch: u64,
    /// Conflicts open at the epoch (prefix order).
    pub open: Vec<LiveConflict>,
    /// Live routes held.
    pub routes: u64,
    /// Distinct prefixes held.
    pub prefixes: usize,
}

/// Everything a shard hands back when it shuts down.
#[derive(Debug)]
pub struct ShardOutput {
    /// Which shard this is.
    pub shard: usize,
    /// The shard's full event log (seq order).
    pub log: Vec<SeqEvent>,
    /// Day slices, one per day mark.
    pub slices: Vec<DaySlice>,
    /// §VII alarms raised in-stream, tagged with the day position of
    /// the mark that triggered them.
    pub alarms: Vec<(usize, Anomaly)>,
    /// Final route count.
    pub routes: u64,
    /// Final distinct-prefix count.
    pub prefixes: usize,
    /// Withdrawals that matched no held route.
    pub spurious_withdrawals: u64,
}

/// Runs one shard worker until [`ShardMsg::Shutdown`].
///
/// The embedded [`MoasMonitor`] sees this shard's slice of each day —
/// prefix-sharded, so its `NewOrigin` alarms are exact at any shard
/// count. Origin-surge profiling is *not* per-shard: each day mark
/// replies with this shard's involvement counts and the engine runs
/// one global [`moas_core::detector::OriginProfiler`] over their sum,
/// which makes surge alarms exactly match the batch profiler.
pub fn run_shard(
    shard: usize,
    rx: mpsc::Receiver<ShardMsg>,
    accept_after: u32,
    collectors: usize,
    metrics: Arc<EngineMetrics>,
) -> ShardOutput {
    let mut state = ShardState::with_collectors(collectors);
    let mut log: Vec<SeqEvent> = Vec::new();
    let mut slices: Vec<DaySlice> = Vec::new();
    let mut alarms: Vec<(usize, Anomaly)> = Vec::new();
    let mut moas_monitor = MoasMonitor::new(accept_after);
    let mut seq: u64 = 0;
    let mut epoch: u64 = 0;
    // Retained-footprint gauge, refreshed on a coarse cadence:
    // approx_bytes walks the whole slice, so pricing it per batch
    // would tax the hot path.
    let state_bytes = metrics.registry().gauge_with(
        "moas_shard_state_bytes",
        &[("shard", &shard.to_string())],
        "Approximate retained bytes of one shard's origin state.",
    );
    let mut batches: u64 = 0;

    let emit = |log: &mut Vec<SeqEvent>, seq: &mut u64, events: Vec<MonitorEvent>| {
        EngineMetrics::add(&metrics.events_emitted, events.len() as u64);
        for event in events {
            log.push(SeqEvent {
                shard,
                seq: *seq,
                event,
            });
            *seq += 1;
        }
    };

    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(updates, ctx) => {
                EngineMetrics::add(&metrics.updates_applied, updates.len() as u64);
                let started = std::time::Instant::now();
                for update in &updates {
                    let events = state.apply(update);
                    epoch += 1;
                    if !events.is_empty() {
                        emit(&mut log, &mut seq, events);
                    }
                }
                // One observation per batch, not per update: the
                // stage histogram prices the unit of work the channel
                // moves, and the hot path pays two atomic adds per
                // batch instead of per route.
                let elapsed = started.elapsed();
                metrics.stage_shard_apply.observe_duration(elapsed);
                metrics
                    .registry()
                    .tracer()
                    .record_stage(ctx, "shard_apply", elapsed);
                batches += 1;
                if batches % 64 == 1 {
                    state_bytes.set(state.approx_bytes());
                }
            }
            ShardMsg::DayMark {
                idx,
                date,
                involvement,
            } => {
                let slice = DaySlice {
                    shard,
                    idx,
                    date,
                    conflicts: state.open_conflicts(),
                    set_excluded: state.set_excluded(),
                    total_prefixes: state.prefix_count(),
                    total_routes: state.route_count(),
                    empty_path_routes: state.empty_path_routes(),
                };
                // Per-AS involvement over this shard's slice; counts
                // are integers, so the engine's cross-shard sum equals
                // `involvement_by_origin` over the merged day exactly.
                let mut counts: BTreeMap<Asn, u32> = BTreeMap::new();
                for c in &slice.conflicts {
                    for o in &c.origins {
                        *counts.entry(*o).or_default() += 1;
                    }
                }
                // A vanished engine is shutdown in progress, not a
                // shard failure.
                let _ = involvement.send(counts.into_iter().collect());
                let obs = slice.to_observation();
                for a in moas_monitor.observe(&obs) {
                    alarms.push((idx, a));
                }
                slices.push(slice);
            }
            ShardMsg::Drain(reply) => {
                let _ = reply.send(std::mem::take(&mut log));
            }
            ShardMsg::Query(reply) => {
                EngineMetrics::add(&metrics.queries_served, 1);
                state_bytes.set(state.approx_bytes());
                // A disconnected requester is not a shard failure.
                let _ = reply.send(ShardSnapshot {
                    shard,
                    epoch,
                    open: state.open_conflicts(),
                    routes: state.route_count(),
                    prefixes: state.prefix_count(),
                });
            }
            ShardMsg::Shutdown => break,
        }
    }

    EngineMetrics::add(&metrics.spurious_withdrawals, state.spurious_withdrawals());

    ShardOutput {
        shard,
        log,
        slices,
        alarms,
        routes: state.route_count(),
        prefixes: state.prefix_count(),
        spurious_withdrawals: state.spurious_withdrawals(),
    }
}
