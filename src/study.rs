//! The end-to-end study: world generation, collection, analysis.

use moas_core::detect::{detect, DayObservation};
use moas_core::pipeline;
use moas_core::timeline::Timeline;
use moas_net::rng::DetRng;
use moas_net::{Date, Prefix};
use moas_routeviews::peers::{PeerSet, PeerSetParams};
use moas_routeviews::{BackgroundMode, Collector};
use moas_sim::{Cause, SimParams, World};

/// Configuration of a full study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Simulation parameters (world scale, seed, calibration).
    pub params: SimParams,
    /// Collector peer-set parameters.
    pub peer_params: PeerSetParams,
    /// Background mode used during full-window analysis. Conflicts are
    /// what the paper measures; background prefixes are negative
    /// controls. `Sample(n)` keeps full-scale runs tractable — the
    /// full-table path is exercised at small scale and in the MRT
    /// pipeline example (see DESIGN.md).
    pub background: BackgroundMode,
}

impl StudyConfig {
    /// Paper-scale configuration (default seed, 54-session collector).
    pub fn paper() -> Self {
        StudyConfig {
            params: SimParams::paper(),
            peer_params: PeerSetParams::default(),
            background: BackgroundMode::Sample(40),
        }
    }

    /// A scaled-down configuration for tests and quick examples.
    pub fn test(scale: f64) -> Self {
        StudyConfig {
            params: SimParams::test(scale),
            peer_params: PeerSetParams::scaled(scale),
            background: BackgroundMode::Sample(20),
        }
    }
}

/// A built study: the world plus its collector peer set.
pub struct Study {
    /// Configuration used.
    pub config: StudyConfig,
    /// The simulated routing world.
    pub world: World,
    /// The collector's peer sessions.
    pub peers: PeerSet,
}

impl Study {
    /// Generates the world and peer set (deterministic per seed).
    pub fn build(config: StudyConfig) -> Study {
        let world = World::generate(config.params.clone());
        let rng = DetRng::new(world.params.seed);
        let peers = PeerSet::build(&world.topo, &world.window, &config.peer_params, &rng);
        Study {
            config,
            world,
            peers,
        }
    }

    /// Runs the full-window analysis with `threads` worker threads
    /// (each owning its own collector and path cache) and returns the
    /// accumulated timeline.
    pub fn analyze(&self, threads: usize) -> Timeline {
        let dates: Vec<Date> = self
            .world
            .window
            .all_days()
            .iter()
            .map(|d| d.date())
            .collect();
        let core_len = self.world.window.core_len();
        let background = self.config.background;
        pipeline::analyze_sharded(dates, core_len, threads, || {
            let mut collector = Collector::new(&self.world, &self.peers);
            move |idx: usize| {
                let snap = collector.snapshot_at(idx, background);
                detect(&snap)
            }
        })
    }

    /// Detects over a single snapshot day (by position).
    pub fn observe_day(&self, idx: usize, background: BackgroundMode) -> DayObservation {
        let mut collector = Collector::new(&self.world, &self.peers);
        detect(&collector.snapshot_at(idx, background))
    }

    /// Detects over a single calendar date, if it is a snapshot day.
    pub fn observe_date(&self, date: Date, background: BackgroundMode) -> Option<DayObservation> {
        let idx = self.world.window.snapshot_index(date.day_index())?;
        Some(self.observe_day(idx, background))
    }

    /// The ground-truth exchange-point prefixes (the stand-in for the
    /// registry knowledge the paper used to identify its 30).
    pub fn xp_prefixes(&self) -> Vec<Prefix> {
        self.world
            .conflicts
            .iter()
            .filter(|c| c.cause == Cause::ExchangePoint)
            .map(|c| Prefix::V4(c.prefix))
            .collect()
    }

    /// Ground-truth validity of the conflict on `prefix` (valid
    /// operational practice vs fault), if that prefix ever conflicted.
    /// Used only by evaluation — never by detection.
    pub fn ground_truth_valid(&self, prefix: &Prefix) -> Option<bool> {
        let v4 = prefix.as_v4()?;
        self.world
            .conflicts
            .iter()
            .find(|c| c.prefix == v4)
            .map(|c| c.cause.is_valid_practice())
    }

    /// The §III vantage experiment on one date: conflict counts seen by
    /// the full collector and by ISP-style clustered vantages of the
    /// given sizes.
    pub fn vantage_experiment(&self, date: Date, sizes: &[usize]) -> Option<(usize, Vec<usize>)> {
        let idx = self.world.window.snapshot_index(date.day_index())?;
        let day = self.world.window.day_at(idx);
        let mut collector = Collector::new(&self.world, &self.peers);
        let snap = collector.snapshot_at(idx, BackgroundMode::None);
        let full = detect(&snap).conflict_count();
        let vantages = collector.isp_vantages(day, sizes);
        let counts = vantages
            .iter()
            .map(|sessions| {
                let restricted = collector.restrict(&snap, day, sessions);
                detect(&restricted).conflict_count()
            })
            .collect();
        Some((full, counts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_study() -> Study {
        Study::build(StudyConfig::test(0.004))
    }

    #[test]
    fn analyze_produces_conflicts() {
        let study = quick_study();
        let tl = study.analyze(4);
        assert!(tl.total_conflicts() > 0);
        assert!(tl.days().count() > 1_000);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let study = quick_study();
        let a = study.analyze(1);
        let b = study.analyze(6);
        assert_eq!(a.total_conflicts(), b.total_conflicts());
        let mut da = a.durations();
        let mut db = b.durations();
        da.sort_unstable();
        db.sort_unstable();
        assert_eq!(da, db);
    }

    #[test]
    fn observe_date_roundtrip() {
        let study = quick_study();
        let date = study.world.window.start();
        let obs = study.observe_date(date, BackgroundMode::None).unwrap();
        assert_eq!(obs.date, Some(date));
    }

    #[test]
    fn xp_prefixes_ground_truth() {
        let study = quick_study();
        let xp = study.xp_prefixes();
        assert!(!xp.is_empty());
        for p in &xp {
            assert_eq!(study.ground_truth_valid(p), Some(true));
        }
    }
}
