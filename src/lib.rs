//! # moas-lab — end-to-end drivers for the MOAS reproduction
//!
//! This crate glues the workspace together: it builds a simulated
//! 1997–2001 routing world (`moas-sim` + `moas-topology`), observes it
//! through a Route Views-style collector (`moas-routeviews`), and runs
//! the paper's analysis (`moas-core`) over every snapshot day — the
//! complete `world → tables → detection → statistics` loop behind every
//! figure, example, integration test and benchmark.
//!
//! Start with [`study::Study`]:
//!
//! ```no_run
//! use moas_lab::study::{Study, StudyConfig};
//!
//! let study = Study::build(StudyConfig::paper());
//! let timeline = study.analyze(8);
//! println!("total conflicts: {}", timeline.total_conflicts());
//! ```
//!
//! For a laptop-quick run use [`study::StudyConfig::test`] (a scaled
//! world with the same structure).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod study;

pub use study::{Study, StudyConfig};
