//! CI bench-regression gate: compares `bench_quick` JSON output
//! against the checked-in baseline and fails on a >30% throughput
//! regression.
//!
//! ```sh
//! # gate (exit 1 on regression):
//! cargo run --release --bin bench_gate -- \
//!     --baseline ci/bench_baseline.json BENCH_monitor.json BENCH_history.json
//! # refresh the baseline from current results:
//! cargo run --release --bin bench_gate -- --write-baseline \
//!     --baseline ci/bench_baseline.json BENCH_monitor.json BENCH_history.json
//! ```
//!
//! Direction is inferred from the metric name: `*_per_sec` is
//! higher-is-better; `bytes_per_event` (and anything else) is
//! lower-is-better. The tolerance defaults to 0.30 and can be changed
//! with `--tolerance 0.5` (or the `BENCH_GATE_TOLERANCE` env var) for
//! noisier runners. Baseline numbers are machine-dependent: regenerate
//! with `--write-baseline` when the reference machine changes.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One bench file: its name and flat metric map.
struct BenchResult {
    bench: String,
    metrics: BTreeMap<String, f64>,
}

fn main() -> ExitCode {
    let mut baseline_path = String::from("ci/bench_baseline.json");
    let mut tolerance: f64 = std::env::var("BENCH_GATE_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.30);
    let mut write_baseline = false;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = args.next().expect("--baseline needs a path"),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .expect("--tolerance needs a value")
                    .parse()
                    .expect("tolerance must be a number")
            }
            "--write-baseline" => write_baseline = true,
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!(
            "usage: bench_gate [--baseline FILE] [--tolerance F] [--write-baseline] BENCH_*.json"
        );
        return ExitCode::from(2);
    }

    let results: Vec<BenchResult> = files
        .iter()
        .map(|f| parse_bench_file(f).unwrap_or_else(|e| panic!("{f}: {e}")))
        .collect();

    if write_baseline {
        let mut out = String::from("{\n");
        for (i, r) in results.iter().enumerate() {
            out.push_str(&format!("  \"{}\": {{\n", r.bench));
            for (j, (name, value)) in r.metrics.iter().enumerate() {
                let comma = if j + 1 < r.metrics.len() { "," } else { "" };
                out.push_str(&format!("    \"{name}\": {value:.3}{comma}\n"));
            }
            let comma = if i + 1 < results.len() { "," } else { "" };
            out.push_str(&format!("  }}{comma}\n"));
        }
        out.push_str("}\n");
        std::fs::write(&baseline_path, out).expect("write baseline");
        println!("baseline written to {baseline_path}");
        return ExitCode::SUCCESS;
    }

    let baseline_text =
        std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| panic!("{baseline_path}: {e}"));
    let baseline = parse_nested(&baseline_text).unwrap_or_else(|e| panic!("{baseline_path}: {e}"));

    let mut failed = false;
    for r in &results {
        let Some(base) = baseline.get(&r.bench) else {
            println!(
                "~ {}: no baseline entry, skipping (run --write-baseline)",
                r.bench
            );
            continue;
        };
        for (name, &base_value) in base {
            let Some(&current) = r.metrics.get(name) else {
                println!("! {}/{name}: metric missing from current run", r.bench);
                failed = true;
                continue;
            };
            let higher_is_better = name.ends_with("_per_sec");
            let (ok, limit) = if higher_is_better {
                (
                    current >= base_value * (1.0 - tolerance),
                    base_value * (1.0 - tolerance),
                )
            } else {
                (
                    current <= base_value * (1.0 + tolerance),
                    base_value * (1.0 + tolerance),
                )
            };
            let delta = if base_value != 0.0 {
                (current / base_value - 1.0) * 100.0
            } else {
                0.0
            };
            let verdict = if ok { "ok" } else { "REGRESSION" };
            println!(
                "{} {}/{name}: {current:.1} vs baseline {base_value:.1} ({delta:+.1}%, limit {limit:.1})",
                if ok { "✓" } else { "✗" },
                r.bench,
            );
            if !ok {
                eprintln!(
                    "{verdict}: {}/{name} moved {delta:+.1}% against a ±{:.0}% gate",
                    r.bench,
                    tolerance * 100.0
                );
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("bench gate passed (tolerance {:.0}%)", tolerance * 100.0);
        ExitCode::SUCCESS
    }
}

fn parse_bench_file(path: &str) -> Result<BenchResult, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut p = Parser::new(&text);
    p.expect('{')?;
    let mut bench = None;
    let mut metrics = BTreeMap::new();
    loop {
        let key = p.string()?;
        p.expect(':')?;
        match key.as_str() {
            "bench" => bench = Some(p.string()?),
            "metrics" => metrics = p.flat_object()?,
            other => return Err(format!("unexpected key {other:?}")),
        }
        if !p.comma_or_close('}')? {
            break;
        }
    }
    Ok(BenchResult {
        bench: bench.ok_or("missing \"bench\" key")?,
        metrics,
    })
}

fn parse_nested(text: &str) -> Result<BTreeMap<String, BTreeMap<String, f64>>, String> {
    let mut p = Parser::new(text);
    p.expect('{')?;
    let mut out = BTreeMap::new();
    if p.peek() == Some('}') {
        p.expect('}')?;
        return Ok(out);
    }
    loop {
        let key = p.string()?;
        p.expect(':')?;
        p.expect('{')?;
        out.insert(key, p.flat_object_body()?);
        if !p.comma_or_close('}')? {
            break;
        }
    }
    Ok(out)
}

/// The few square feet of JSON this repo needs: objects of strings
/// and numbers. (The vendored `serde_json` only serializes.)
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.bytes.get(self.pos).map(|&b| b as char)
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.pos))
        }
    }

    /// After a `,` returns true; after the closing delimiter returns
    /// false.
    fn comma_or_close(&mut self, close: char) -> Result<bool, String> {
        self.skip_ws();
        match self.bytes.get(self.pos).map(|&b| b as char) {
            Some(',') => {
                self.pos += 1;
                Ok(true)
            }
            Some(c) if c == close => {
                self.pos += 1;
                Ok(false)
            }
            other => Err(format!("expected ',' or {close:?}, found {other:?}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'"' {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .to_string();
        self.expect('"')?;
        Ok(s)
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn flat_object(&mut self) -> Result<BTreeMap<String, f64>, String> {
        self.expect('{')?;
        self.flat_object_body()
    }

    fn flat_object_body(&mut self) -> Result<BTreeMap<String, f64>, String> {
        let mut out = BTreeMap::new();
        if self.peek() == Some('}') {
            self.expect('}')?;
            return Ok(out);
        }
        loop {
            let key = self.string()?;
            self.expect(':')?;
            out.insert(key, self.number()?);
            if !self.comma_or_close('}')? {
                break;
            }
        }
        Ok(out)
    }
}
