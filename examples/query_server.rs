//! The query-serving subsystem end to end: render a multi-day MRT
//! archive, ingest it through a live [`HistoryService`], then put a
//! [`QueryServer`] on an ephemeral loopback port and walk every
//! endpoint with a small in-process HTTP client — including the error
//! mapping and the epoch-keyed response cache.
//!
//! ```sh
//! cargo run --release --example query_server
//! ```

use moas_history::pipeline::{analyze_mrt_archive_service, StreamingArchiveConfig};
use moas_history::{HistoryService, RetentionPolicy, ServiceConfig};
use moas_lab::study::{Study, StudyConfig};
use moas_mrt::snapshot::DumpFormat;
use moas_net::Date;
use moas_obs::{tsdb::unix_now, AlertEngine, CpuLedger, Profiler, ResourceLedger, Tsdb};
use moas_routeviews::{write_window_archive, BackgroundMode, Collector};
use moas_serve::{QueryServer, QueryService, ServerConfig};
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn main() -> std::io::Result<()> {
    let days = 10usize;
    let study = Study::build(StudyConfig::test(0.004));
    let dates: Vec<Date> = study.world.window.all_days()[..days]
        .iter()
        .map(|d| d.date())
        .collect();

    let base = std::env::temp_dir().join("moas-query-server");
    let archive_dir = base.join("archive");
    let store_dir = base.join("store");
    std::fs::remove_dir_all(&base).ok();

    println!("== rendering a {days}-day MRT archive ==");
    let files = {
        let mut collector = Collector::new(&study.world, &study.peers);
        write_window_archive(
            &mut collector,
            &archive_dir,
            0,
            days,
            BackgroundMode::Sample(15),
            DumpFormat::V2,
        )?
    };
    println!("   {} files under {}", files.len(), archive_dir.display());

    println!("== ingesting through the history service ==");
    let service = HistoryService::open(
        &store_dir,
        ServiceConfig {
            start_date: dates[0],
            retention: RetentionPolicy::keep_everything(),
            watermark_segments: 2,
            poll_interval: Duration::from_millis(50),
            daemon: true,
        },
    )?;
    let report = analyze_mrt_archive_service(
        &dates,
        &files,
        &StreamingArchiveConfig::with_shards(4),
        &service,
    )?;
    service.wait_idle();
    println!(
        "   {} days, {} events stored, {} monitor updates applied",
        report.days, report.events_stored, report.monitor.metrics.updates_applied
    );

    println!("== query server up on an ephemeral loopback port ==");
    let mut query = QueryService::new(
        service.reader(),
        ServerConfig {
            start_date: dates[0],
            ..ServerConfig::default()
        },
    );
    // The streaming pipeline attached the engine's metrics block to
    // the service; surface it under /v1/metrics too.
    if let Some(engine) = service.metrics_handle() {
        query = query.with_engine_metrics(engine);
    }
    // Self-monitoring: an in-process tsdb over the server's registry
    // and the §VII-style alert engine evaluating over it. A real
    // deployment runs a background `Sampler`; the example ticks them
    // by hand for determinism.
    let registry = Arc::clone(query.registry());
    let tsdb = Arc::new(Tsdb::default());
    let alerts = Arc::new(AlertEngine::new(Arc::clone(&registry), Arc::clone(&tsdb)));
    query = query.with_self_monitor(Arc::clone(&tsdb), Arc::clone(&alerts));
    // The profiling & resource-attribution layer: the continuous
    // wall-clock profiler over the span ring, the per-thread CPU
    // ledger, and the component byte ledger with one probe per
    // retaining subsystem. A deployment drives all three from the
    // background `Sampler`'s on_tick; /metrics and /v1/profile also
    // refresh them at request time, which is what this example relies
    // on.
    let profiler = Arc::new(Profiler::new(Arc::clone(&registry)));
    let cpu = Arc::new(CpuLedger::new(Arc::clone(&registry)));
    let resources = Arc::new(ResourceLedger::new(Arc::clone(&registry)));
    let store_reader = service.reader();
    resources.probe("store", move || {
        store_reader.snapshot().stats().retained_bytes
    });
    let tsdb_probe = Arc::clone(&tsdb);
    resources.probe("tsdb", move || tsdb_probe.approx_bytes());
    let journal_registry = Arc::clone(&registry);
    resources.probe("journal", move || journal_registry.journal().approx_bytes());
    let spans_registry = Arc::clone(&registry);
    resources.probe("spans", move || spans_registry.tracer().approx_bytes());
    let shard_registry = Arc::clone(&registry);
    resources.probe("shard_state", move || {
        shard_registry
            .scalar_values()
            .into_iter()
            .filter(|(name, _, _, _)| name == "moas_shard_state_bytes")
            .map(|(_, _, _, v)| v as u64)
            .sum()
    });
    query = query
        .with_profiler(Arc::clone(&profiler))
        .with_cpu_ledger(Arc::clone(&cpu))
        .with_resources(Arc::clone(&resources));
    let query = Arc::new(query);
    // The cache probe needs the finished service; a Weak keeps the
    // ledger from cycling ownership back into it.
    let cache_query = Arc::downgrade(&query);
    resources.probe("cache", move || {
        cache_query.upgrade().map_or(0, |q| q.cache_bytes())
    });
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query))?;
    let addr = server.local_addr();
    println!("   listening on {addr}");

    let sample_prefix = service
        .reader()
        .snapshot()
        .conflicts()
        .records()
        .keys()
        .next()
        .map(|p| p.to_string())
        .expect("the synthetic window contains conflicts");

    let targets = [
        "/v1/stats".to_string(),
        "/v1/validity?limit=3".to_string(),
        format!("/v1/conflicts?date={}", dates[1]),
        format!("/v1/prefix/{sample_prefix}"),
        format!("/v1/timeline?days={days}"),
        "/v1/metrics".to_string(),
    ];
    for target in &targets {
        let (status, body) = get(addr, target)?;
        println!("   GET {target}\n      {status} {}", truncate(&body, 160));
        assert_eq!(status, 200, "{target} must succeed");
    }

    println!("== observability: probes and the Prometheus scrape ==");
    let (status, body) = get(addr, "/healthz")?;
    println!("   GET /healthz\n      {status} {}", truncate(&body, 40));
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, body) = get(addr, "/readyz")?;
    println!("   GET /readyz\n      {status} {}", truncate(&body, 40));
    assert_eq!(
        (status, body.as_str()),
        (200, "ready\n"),
        "epochs are published, so the server is ready"
    );
    let (status, body) = get(addr, "/metrics")?;
    assert_eq!(status, 200);
    let families = body.lines().filter(|l| l.starts_with("# TYPE ")).count();
    println!(
        "   GET /metrics: {} bytes, {families} metric families, e.g.:",
        body.len()
    );
    for line in body.lines().filter(|l| !l.starts_with('#')).take(4) {
        println!("      {line}");
    }
    assert!(body.contains("moas_serve_requests_total"));
    assert!(body.contains("moas_monitor_records_ingested_total"));

    println!("== self-monitoring: alerts, series, and trace spans ==");
    // Tick the sampler twice so the tsdb holds points and every alert
    // rule has evaluated at least once.
    let now = unix_now();
    tsdb.sample(&registry, now.saturating_sub(10));
    alerts.tick(now.saturating_sub(10));
    tsdb.sample(&registry, now);
    alerts.tick(now);
    let (status, body) = get(addr, "/v1/alerts")?;
    println!("   GET /v1/alerts\n      {status} {}", truncate(&body, 200));
    assert_eq!(status, 200);
    let doc: Value = serde_json::from_str(&body).expect("alerts parse");
    let rules = match doc.get("alerts") {
        Some(Value::Array(rows)) => rows.len(),
        _ => 0,
    };
    assert!(rules >= 5, "the standard rule set is loaded");
    assert!(body.contains("\"feed_lag\""), "feed-lag rule present");

    let series_target = "/v1/series?name=moas_serve_requests_total&range=600";
    let (status, body) = get(addr, series_target)?;
    println!(
        "   GET {series_target}\n      {status} {}",
        truncate(&body, 200)
    );
    assert_eq!(status, 200);
    assert!(body.contains("\"points\""), "sampled points are served");

    // Every request above was traced (default sampling records all);
    // pull the slowest roots and resolve one full span tree.
    let (status, body) = get(addr, "/v1/traces?slow=3")?;
    assert_eq!(status, 200);
    let doc: Value = serde_json::from_str(&body).expect("traces parse");
    let trace_id = match doc.get("traces") {
        Some(Value::Array(rows)) => rows
            .first()
            .and_then(|r| r.get("trace"))
            .and_then(|t| match t {
                Value::String(s) => Some(s.clone()),
                _ => None,
            })
            .expect("at least one recorded root span"),
        _ => panic!("traces is an array"),
    };
    let (status, body) = get(addr, &format!("/v1/trace/{trace_id}"))?;
    println!(
        "   GET /v1/trace/{trace_id}\n      {status} {}",
        truncate(&body, 200)
    );
    assert_eq!(status, 200);
    assert!(
        body.contains("\"request_route\""),
        "the span tree names its pipeline stages"
    );

    println!("== profiling: folded stacks, thread CPU, resource ledger ==");
    let (status, body) = get(addr, "/v1/profile?range=600")?;
    assert_eq!(status, 200);
    let folded_lines = body.lines().count();
    println!("   GET /v1/profile?range=600: {folded_lines} folded stacks, e.g.:");
    for line in body.lines().take(3) {
        println!("      {line}");
    }
    assert!(
        body.lines().any(|l| l.contains("request_route")),
        "request spans appear in the folded profile"
    );
    let (status, body) = get(addr, "/v1/profile?range=600&format=json")?;
    assert_eq!(status, 200);
    let doc: Value = serde_json::from_str(&body).expect("profile parses");
    let stages = match doc.get("stages") {
        Some(Value::Array(rows)) => rows.len(),
        _ => 0,
    };
    println!("   GET /v1/profile?format=json: {stages} stages profiled");
    assert!(stages > 0, "the profiler folded at least one stage");

    let (status, body) = get(addr, "/v1/workload")?;
    assert_eq!(status, 200);
    let doc: Value = serde_json::from_str(&body).expect("workload parses");
    let top = match doc.get("top") {
        Some(Value::Array(rows)) => rows.len(),
        _ => 0,
    };
    println!(
        "   GET /v1/workload\n      {status} {}",
        truncate(&body, 200)
    );
    assert!(top > 0, "the top-k sketch saw the walk above");

    // The scrape itself samples the CPU and resource ledgers, so
    // thread attribution and component bytes are fresh afterwards.
    let (status, body) = get(addr, "/metrics")?;
    assert_eq!(status, 200);
    let threads = body
        .lines()
        .filter(|l| l.starts_with("moas_thread_cpu_seconds_total"))
        .count();
    let components: Vec<&str> = body
        .lines()
        .filter(|l| l.starts_with("moas_resource_bytes"))
        .collect();
    println!("   /metrics: {threads} attributed threads, component bytes:");
    for line in &components {
        println!("      {line}");
    }
    assert!(threads > 0, "named threads report CPU");
    assert!(
        components.iter().any(|l| l.contains("component=\"store\"")),
        "the store probe published"
    );
    assert!(body.contains("moas_process_rss_bytes"));
    assert!(body.contains("moas_build_info"));
    assert!(body.contains("moas_process_start_time_seconds"));

    println!("== the cache answers repeats from the pinned epoch ==");
    get(addr, "/v1/validity?limit=3")?;
    get(addr, "/v1/validity?limit=3")?;
    let cache = query.cache_stats();
    println!(
        "   cache: {} hits / {} misses / {} entries",
        cache.hits, cache.misses, cache.entries
    );
    assert!(cache.hits > 0, "repeat queries must hit the cache");

    println!("== errors map to JSON statuses ==");
    for target in [
        "/nope",
        "/v1/conflicts?date=banana",
        "/v1/prefix/not-a-prefix",
    ] {
        let (status, body) = get(addr, target)?;
        println!("   GET {target}\n      {status} {}", truncate(&body, 120));
        assert!(status == 400 || status == 404);
    }

    println!("== shutdown: close the service, server keeps the last epoch ==");
    service.close()?;
    let (status, body) = get(addr, "/v1/stats")?;
    println!(
        "   post-close GET /v1/stats: {status} {}",
        truncate(&body, 120)
    );
    assert_eq!(status, 200);
    server.shutdown();
    std::fs::remove_dir_all(&base).ok();
    println!("done.");
    Ok(())
}

/// One GET over a fresh loopback connection.
fn get(addr: SocketAddr, target: &str) -> std::io::Result<(u16, String)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    writer.write_all(
        format!("GET {target} HTTP/1.1\r\nhost: example\r\nconnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        return s.to_string();
    }
    let mut cut = n;
    while !s.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}…", &s[..cut])
}
