//! Rediscovering the two mass-fault incidents from routing data alone.
//!
//! The paper attributes the 1998-04-07 spike to AS 8584 and the April
//! 2001 spike to AS 15412 (leaking via AS 3561) using NANOG postings
//! and RIPE RIS data. This example shows the same attribution falling
//! out of the BGP data itself: the origin-involvement analysis of §VI-E
//! plus the origin-profile anomaly detector (the paper's §VII future
//! work).
//!
//! ```sh
//! cargo run --release --example fault_detection
//! ```

use moas_core::causes::{involvement_by_origin, involvement_by_tail_pair, top_involved};
use moas_core::detector::{Anomaly, OriginProfiler, ProfilerConfig};
use moas_lab::study::{Study, StudyConfig};
use moas_net::{Asn, Date};
use moas_routeviews::BackgroundMode;

fn main() {
    // A 10% world keeps the incident structure but runs in seconds.
    eprintln!("building world …");
    let study = Study::build(StudyConfig::test(0.10));

    // ---- §VI-E involvement analysis on the incident days ----------
    println!("== 1998-04-07 (the AS 8584 incident) ==");
    let obs = study
        .observe_date(Date::ymd(1998, 4, 7), BackgroundMode::None)
        .expect("snapshot day");
    println!("conflicts that day: {}", obs.conflict_count());
    if let Some((asn, count)) = top_involved(&obs) {
        println!(
            "most involved AS: {asn} in {count}/{} conflicts (paper: AS 8584 in 11 357/11 842)",
            obs.conflict_count()
        );
    }
    let inv = involvement_by_origin(&obs);
    let mut top: Vec<(&Asn, &u32)> = inv.iter().collect();
    top.sort_by_key(|(a, c)| (std::cmp::Reverse(**c), a.value()));
    println!("top origins by involvement:");
    for (asn, count) in top.iter().take(4) {
        println!("  AS {asn}: {count}");
    }

    println!("\n== 2001-04-10 (the AS 15412 / AS 3561 incident) ==");
    let obs = study
        .observe_date(Date::ymd(2001, 4, 10), BackgroundMode::None)
        .expect("snapshot day");
    println!("conflicts that day: {}", obs.conflict_count());
    let pairs = involvement_by_tail_pair(&obs);
    let mut top: Vec<(&(Asn, Asn), &u32)> = pairs.iter().collect();
    top.sort_by_key(|(_, c)| std::cmp::Reverse(**c));
    println!("top (transit, origin) tails (paper: (3561, 15412) in 5 532/6 627):");
    for ((t, o), count) in top.iter().take(3) {
        println!("  (AS {t}, AS {o}): {count}");
    }

    // ---- §VII: the anomaly detector catches it online -------------
    println!("\n== origin-profile anomaly detection (replaying March–April 1998) ==");
    let mut profiler = OriginProfiler::new(ProfilerConfig::default());
    let mut flagged: Vec<(Date, Asn, u32, f64)> = Vec::new();
    for date in Date::ymd(1998, 3, 1).iter_to(Date::ymd(1998, 4, 12)) {
        let Some(obs) = study.observe_date(date, BackgroundMode::None) else {
            continue; // archive gap
        };
        for a in profiler.observe(&obs) {
            if let Anomaly::OriginSurge {
                asn,
                today,
                baseline,
                date,
            } = a
            {
                flagged.push((date, asn, today, baseline));
            }
        }
    }
    if flagged.is_empty() {
        println!("no surges flagged (unexpected — see EXPERIMENTS.md)");
    }
    for (date, asn, today, baseline) in &flagged {
        println!(
            "  {date}: AS {asn} surged to {today} conflict involvements (baseline {baseline:.1})"
        );
    }
    let caught = flagged.iter().any(|(_, asn, _, _)| *asn == Asn::new(8584));
    println!(
        "\nAS 8584 {} by the detector, using routing data only.",
        if caught { "caught" } else { "NOT caught" }
    );
}
