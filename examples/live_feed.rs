//! The live-feed subsystem end to end: a simulated collector appends
//! dated BGP4MP update files on a timer, a [`FeedFollower`] tails
//! them into a [`HistoryService`] (epochs advancing live), and a
//! [`QueryServer`] answers `/v1/feed` — cursor, lag, gap count —
//! alongside the regular query API while ingestion runs. A gap day is
//! injected mid-window and comes back out of `/v1/feed`, and the
//! follower is stopped and reopened mid-window to show cursor resume.
//!
//! ```sh
//! cargo run --release --example live_feed
//! ```

use moas_feed::{FeedConfig, FeedFollower};
use moas_history::{HistoryService, RetentionPolicy, ServiceConfig};
use moas_lab::study::{Study, StudyConfig};
use moas_monitor::MonitorConfig;
use moas_net::Date;
use moas_routeviews::{BackgroundMode, Collector, SimFeed};
use moas_serve::{QueryServer, QueryService, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn main() -> std::io::Result<()> {
    let days = 8usize;
    let study = Study::build(StudyConfig::test(0.004));
    let dates: Vec<Date> = study.world.window.all_days()[..days]
        .iter()
        .map(|d| d.date())
        .collect();

    let base = std::env::temp_dir().join("moas-live-feed");
    let archive_dir = base.join("collector");
    let store_dir = base.join("store");
    std::fs::remove_dir_all(&base).ok();

    println!("== simulated collector starts landing update files ==");
    let mut collector = Collector::new(&study.world, &study.peers);
    let mut sim = SimFeed::new(
        &mut collector,
        &archive_dir,
        0,
        days,
        BackgroundMode::Sample(15),
    )?;

    let service = Arc::new(HistoryService::open(
        &store_dir,
        ServiceConfig {
            start_date: dates[0],
            retention: RetentionPolicy::keep_everything(),
            watermark_segments: 2,
            poll_interval: Duration::from_millis(50),
            daemon: true,
        },
    )?);

    let feed_config = FeedConfig {
        monitor: MonitorConfig::with_shards(4),
        ..FeedConfig::new(&archive_dir, dates[0])
    };
    let mut follower = FeedFollower::open(feed_config.clone(), Arc::clone(&service))?;

    println!("== query server up while the feed follows ==");
    let mut query = QueryService::new(
        service.reader(),
        ServerConfig {
            start_date: dates[0],
            ..ServerConfig::default()
        },
    )
    .with_feed_status(follower.status());
    if let Some(engine) = service.metrics_handle() {
        query = query.with_engine_metrics(engine);
    }
    let query = Arc::new(query);
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query))?;
    let addr = server.local_addr();
    println!("   listening on {addr}");

    // First half of the window lands (day 2 goes missing), the
    // follower catches up after each landing.
    let reader = service.reader();
    for day in 0..4 {
        if day == 2 {
            let skipped = sim.skip_day()?.expect("day in window");
            println!("   collector SKIPPED {skipped} (feed gap)");
            continue;
        }
        let landed = sim.append_day()?.expect("day in window");
        while !follower.poll_once()?.caught_up {}
        println!(
            "   landed {} ({} records) → epoch {}",
            landed.path.file_name().unwrap().to_string_lossy(),
            landed.records,
            reader.epoch(),
        );
    }
    let (status, feed_json) = get(addr, "/v1/feed")?;
    println!(
        "   GET /v1/feed\n      {status} {}",
        truncate(&feed_json, 220)
    );
    assert_eq!(status, 200);
    assert!(feed_json.contains("\"gap_count\":1"), "{feed_json}");

    println!("== stop the follower mid-window, reopen: cursor resume ==");
    let (cursor, _) = follower.shutdown()?;
    println!("   stopped at cursor {}+{}", cursor.file, cursor.offset);
    let mut follower = FeedFollower::open(feed_config, Arc::clone(&service))?;
    println!(
        "   reopened: resumes={} (rebuilt to the cursor, nothing re-appended)",
        follower.status().snapshot().resumes
    );

    // The rest of the window lands on a timer while the follower
    // polls live.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|scope| -> std::io::Result<()> {
        let handle = scope.spawn(|| sim.run_timer(Duration::from_millis(20), &stop));
        while !sim_done(&handle) {
            follower.poll_once()?;
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.join().expect("sim thread")?;
        Ok(())
    })?;
    while !follower.poll_once()?.caught_up {}
    follower.finalize()?;

    println!("== after catch-up: live status and day-cut queries ==");
    // The old server still serves /v1/feed from the *first*
    // follower's (now stopped) status; bind the reopened follower's.
    let query2 = Arc::new(
        QueryService::new(
            service.reader(),
            ServerConfig {
                start_date: dates[0],
                ..ServerConfig::default()
            },
        )
        .with_feed_status(follower.status()),
    );
    let server2 = QueryServer::bind("127.0.0.1:0", Arc::clone(&query2))?;
    for target in [
        "/v1/feed".to_string(),
        "/v1/stats".to_string(),
        format!("/v1/timeline?days={days}"),
        format!("/v1/conflicts?date={}", dates[1]),
    ] {
        let (status, body) = get(server2.local_addr(), &target)?;
        println!("   GET {target}\n      {status} {}", truncate(&body, 200));
        assert_eq!(status, 200, "{target} must succeed");
    }

    let (final_cursor, report) = follower.shutdown()?;
    println!(
        "== done: {} files, {} records, {} gaps, cursor {}+{} ({} route updates applied) ==",
        final_cursor.files_done,
        final_cursor.records,
        final_cursor.gaps,
        final_cursor.file,
        final_cursor.offset,
        report.routes,
    );
    assert_eq!(final_cursor.next_day, days as u32);
    assert_eq!(final_cursor.gaps, 1);

    server.shutdown();
    server2.shutdown();
    drop(query);
    drop(query2);
    Arc::try_unwrap(service)
        .ok()
        .expect("sole service handle")
        .close()?;
    std::fs::remove_dir_all(&base).ok();
    println!("done.");
    Ok(())
}

/// Whether the simulated-collector thread has exhausted its window.
fn sim_done<T>(handle: &std::thread::ScopedJoinHandle<'_, T>) -> bool {
    handle.is_finished()
}

/// One GET over a fresh loopback connection.
fn get(addr: SocketAddr, target: &str) -> std::io::Result<(u16, String)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    writer.write_all(
        format!("GET {target} HTTP/1.1\r\nhost: example\r\nconnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        return s.to_string();
    }
    let mut cut = n;
    while !s.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}…", &s[..cut])
}
