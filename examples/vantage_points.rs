//! §III's vantage-point experiment: how many MOAS conflicts you see
//! depends on where you look from.
//!
//! The paper observes 1 364 conflicts at the Route Views collector
//! while three individual ISPs see only 30, 12 and 228 at the same
//! time — fewer AS paths are visible from any single point. This
//! example reproduces that comparison: the full collector versus
//! topologically clustered "single ISP" vantages of growing size.
//!
//! ```sh
//! cargo run --release --example vantage_points
//! ```

use moas_core::report::text_table;
use moas_lab::study::{Study, StudyConfig};
use moas_net::Date;

fn main() {
    eprintln!("building world …");
    let study = Study::build(StudyConfig::test(0.10));
    let date = Date::ymd(2001, 6, 15);

    let sizes = [1usize, 2, 3, 4, 6, 8];
    let (full, counts) = study
        .vantage_experiment(date, &sizes)
        .expect("snapshot day");

    println!("date: {date}");
    println!(
        "full collector: {} sessions in {} ASes → {} conflicts\n",
        study.peers.alive_at(date.day_index()).len(),
        study.peers.ases_at(date.day_index()),
        full
    );

    let rows: Vec<Vec<String>> = sizes
        .iter()
        .zip(&counts)
        .map(|(s, c)| {
            vec![
                format!("{s} sessions"),
                c.to_string(),
                format!("{:.1}%", 100.0 * *c as f64 / full.max(1) as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(
            &["ISP vantage", "conflicts seen", "share of collector"],
            &rows
        )
    );

    println!(
        "paper: collector 1 364; individual ISPs 30 / 12 / 228 — local views\n\
         systematically undercount, and even the collector is a lower bound."
    );
}
