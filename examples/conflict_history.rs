//! The persistent conflict-history store, end to end: render a
//! multi-day window as an on-disk MRT archive, drive it through the
//! monitor in a single pass (`analyze_mrt_archive_streaming`), then
//! read the store back — compaction, §VI validity scoring, and the
//! exactness check against the batch archive scan.
//!
//! ```sh
//! cargo run --release --example conflict_history
//! ```

use moas_core::pipeline::analyze_mrt_archive;
use moas_history::pipeline::{analyze_mrt_archive_streaming, StreamingArchiveConfig};
use moas_history::{HistoryStore, ValidityConfig, ValidityReport, Verdict};
use moas_lab::study::{Study, StudyConfig};
use moas_mrt::snapshot::DumpFormat;
use moas_net::Date;
use moas_routeviews::{write_window_archive, BackgroundMode, Collector};

fn main() -> std::io::Result<()> {
    let days = 14usize;
    let study = Study::build(StudyConfig::test(0.004));
    let dates: Vec<Date> = study.world.window.all_days()[..days]
        .iter()
        .map(|d| d.date())
        .collect();

    let base = std::env::temp_dir().join("moas-conflict-history");
    let archive_dir = base.join("archive");
    let store_dir = base.join("store");
    std::fs::remove_dir_all(&base).ok();

    println!("== rendering a {days}-day MRT archive ==");
    let files = {
        let mut collector = Collector::new(&study.world, &study.peers);
        write_window_archive(
            &mut collector,
            &archive_dir,
            0,
            days,
            BackgroundMode::Sample(15),
            DumpFormat::V2,
        )?
    };
    println!("   {} files under {}", files.len(), archive_dir.display());

    println!("== single-pass streaming analysis (4 shards) ==");
    let mut store = HistoryStore::open(&store_dir)?;
    let report = analyze_mrt_archive_streaming(
        &dates,
        &files,
        &StreamingArchiveConfig::with_shards(4),
        &mut store,
    )?;
    let stats = store.stats();
    println!(
        "   {} days, {} events persisted in {} segments ({} bytes retained)",
        report.days, report.events_stored, stats.segments_written, stats.retained_bytes
    );
    println!(
        "   monitor: {} updates applied, {} §VII alarms",
        report.monitor.metrics.updates_applied,
        report.monitor.alarms.len()
    );

    println!("== store readback: compaction + §VI validity ==");
    let (conflicts, scan) = store.compact()?;
    println!(
        "   {} segments scanned ({} corrupt), {} conflict records, {} affinity pairs",
        scan.segments_ok,
        scan.corrupt.len(),
        conflicts.records().len(),
        conflicts.affinity().len()
    );
    let validity = ValidityReport::build(&conflicts, ValidityConfig::with_threshold_days(7));
    let (valid, recurring, invalid) = validity.tally();
    println!(
        "   §VI-F verdicts: {valid} likely-valid, {recurring} recurring, {invalid} likely-invalid"
    );
    for c in validity.conflicts.iter().take(5) {
        println!(
            "     {:<20} open {:>8}s  episodes {}  pct {:.2}  {:?}",
            c.prefix.to_string(),
            c.open_secs,
            c.episodes,
            c.longevity_percentile,
            c.verdict
        );
    }

    println!("== exactness vs batch archive scan ==");
    let (batch_tl, _) = analyze_mrt_archive(dates.clone(), days, &files)?;
    let stored_total = conflicts.total_conflicts(&dates, days);
    let mut stored_durations = conflicts.durations(&dates, days);
    let mut batch_durations = batch_tl.durations();
    stored_durations.sort_unstable();
    batch_durations.sort_unstable();
    println!(
        "   batch total_conflicts = {}, store = {} ({})",
        batch_tl.total_conflicts(),
        stored_total,
        if stored_total == batch_tl.total_conflicts() && stored_durations == batch_durations {
            "durations match exactly"
        } else {
            "MISMATCH"
        }
    );
    assert_eq!(stored_total, batch_tl.total_conflicts());
    assert_eq!(stored_durations, batch_durations);

    // A taste of the validity semantics on the synthetic world's
    // ground truth: long-lived conflicts should skew valid.
    let long_lived = validity
        .conflicts
        .iter()
        .filter(|c| c.verdict == Verdict::LikelyValid)
        .count();
    println!("   ({long_lived} conflicts exceeded the 7-day §VI-F threshold)");

    std::fs::remove_dir_all(&base).ok();
    Ok(())
}
