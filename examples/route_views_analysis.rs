//! The full study, end to end: generate the 1997–2001 world, observe
//! it through the Route Views collector, and print the paper's
//! headline statistics.
//!
//! Runs at a reduced scale by default so it finishes in seconds; pass
//! `--paper` for the full 38 225-conflict world (about a minute).
//!
//! ```sh
//! cargo run --release --example route_views_analysis            # scaled
//! cargo run --release --example route_views_analysis -- --paper # full
//! ```

use moas_core::report::text_table;
use moas_core::stats;
use moas_lab::study::{Study, StudyConfig};

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let (config, scale) = if paper_scale {
        (StudyConfig::paper(), 1.0)
    } else {
        (StudyConfig::test(0.05), 0.05)
    };

    eprintln!("generating world at scale {scale} …");
    let study = Study::build(config);
    eprintln!(
        "  {} ASes, {} planned prefixes, {} conflicts scheduled, {} collector sessions",
        study.world.topo.len(),
        study.world.plan.len(),
        study.world.conflicts.len(),
        study.peers.len()
    );

    eprintln!(
        "analyzing {} snapshot days …",
        study.world.window.total_len()
    );
    let t = std::time::Instant::now();
    let tl = study.analyze(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2),
    );
    eprintln!("done in {:?}\n", t.elapsed());

    // §IV-A: totals and yearly medians.
    let summary = stats::duration_summary(&tl);
    println!("== §IV-A totals ==");
    println!(
        "total MOAS conflicts: {}   (paper: 38 225 × {scale} = {:.0})",
        summary.total,
        38_225.0 * scale
    );
    let rows = stats::fig2_yearly_medians(&tl, &[1998, 1999, 2000, 2001]);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.year.to_string(),
                format!("{:.1}", r.median),
                r.growth_pct.map(|g| format!("{g:.1}%")).unwrap_or_default(),
            ]
        })
        .collect();
    println!("{}", text_table(&["year", "median", "growth"], &table));

    // §IV-B: durations.
    println!("== §IV-B durations ==");
    let exp = stats::fig4_expectations(&tl, &[0, 1, 9, 29, 89]);
    let table: Vec<Vec<String>> = exp
        .iter()
        .map(|r| {
            vec![
                format!(">{} days", r.longer_than),
                r.count.to_string(),
                format!("{:.1}", r.expectation),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(&["filter", "conflicts", "E[duration]"], &table)
    );
    println!(
        "one-day: {}; >300 days: {}; longest: {}; ongoing at cutoff: {}\n",
        summary.one_timers, summary.over_300, summary.longest, summary.ongoing
    );

    // §IV-C: prefix lengths (the /24 story).
    println!("== §IV-C prefix lengths (median daily conflicts, 2001) ==");
    let by_year = stats::fig5_masklen_by_year(&tl, &[2001]);
    if let Some(m) = by_year.get(&2001) {
        let mut lens: Vec<(usize, f64)> = m
            .iter()
            .enumerate()
            .filter(|(_, v)| **v > 0.0)
            .map(|(l, v)| (l, *v))
            .collect();
        lens.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (l, v) in lens.iter().take(6) {
            println!("  /{l}: {v:.0}");
        }
        let top = lens.first().map(|(l, _)| *l).unwrap_or(0);
        println!("  → /{top} attracts the most conflicts (paper: /24, \"the bulk of the table\")");
    }
}
