//! Live monitoring demo: stream a window of synthetic Route Views
//! update traffic through the sharded engine and report conflict
//! lifecycles, real-time durations, the live MOAS set, and in-stream
//! §VII alarms.
//!
//! ```sh
//! cargo run --release --example live_monitor
//! ```

use moas_lab::study::{Study, StudyConfig};
use moas_monitor::{MonitorConfig, MonitorEngine, MonitorEvent};
use moas_routeviews::{BackgroundMode, Collector, WindowStream};

fn main() {
    let study = Study::build(StudyConfig::test(0.01));
    let mut collector = Collector::new(&study.world, &study.peers);

    let days = 60;
    let mut engine = MonitorEngine::new(MonitorConfig::with_shards(4));
    let mut stream = WindowStream::new(&mut collector, 0, days, BackgroundMode::Sample(25));
    let mut last_date = None;
    for day in &mut stream {
        engine.ingest_all(&day.records);
        engine.mark_day(day.idx, day.snapshot.date);
        last_date = Some(day.snapshot.date);
    }

    // Query the live MOAS set while the engine is still up.
    let snap = engine.snapshot();
    println!(
        "after {days} days ({}): {} open conflicts over {} prefixes / {} routes",
        last_date.expect("streamed at least one day"),
        snap.open_count(),
        snap.prefix_count(),
        snap.route_count(),
    );
    let long_lived = snap.open_longer_than(30 * 86_400, (days as u32) * 86_400 * 2);
    println!(
        "  of which open > 30 days (likely valid practice, §VI): {}",
        long_lived.len()
    );

    let report = engine.finish();
    let mut opened = 0u64;
    let mut closed = 0u64;
    let mut churn = 0u64;
    for e in &report.events {
        match e.event {
            MonitorEvent::ConflictOpened { .. } => opened += 1,
            MonitorEvent::ConflictClosed { .. } => closed += 1,
            _ => churn += 1,
        }
    }
    println!(
        "event log: {} events ({opened} opened, {closed} closed, {churn} origin churn)",
        report.events.len()
    );

    let mut durations = report.closed_durations();
    durations.sort_unstable();
    if !durations.is_empty() {
        println!(
            "closed-conflict durations: median {}s, max {}s",
            durations[durations.len() / 2],
            durations[durations.len() - 1]
        );
    }

    println!("in-stream §VII alarms: {}", report.alarms.len());
    for (idx, alarm) in report.alarms.iter().take(5) {
        println!("  day {idx}: {alarm:?}");
    }

    let m = report.metrics;
    println!(
        "engine: {} records → {} route updates in {} batches across 4 shards",
        m.records_ingested, m.updates_applied, m.batches_sent
    );
}
