//! Continuous monitoring from the update stream — what the paper's
//! daily-snapshot methodology could not see.
//!
//! §II notes that Geoff Huston's statistics page moved from daily to
//! bi-hourly MOAS counts in April 2001. This example goes further:
//! seed a replayer with one day's table, then apply the *update
//! stream* toward the 1998-04-07 incident and watch the conflict count
//! and the new-origin alarms move update-by-update, catching the leak
//! the moment AS 8584's announcements arrive rather than at the next
//! day's dump.
//!
//! ```sh
//! cargo run --release --example update_stream
//! ```

use moas_core::detector::MoasMonitor;
use moas_core::replay::StreamReplayer;
use moas_lab::study::{Study, StudyConfig};
use moas_mrt::record::MrtBody;
use moas_net::Date;
use moas_routeviews::updates::day_transition;
use moas_routeviews::{BackgroundMode, Collector};

fn main() {
    eprintln!("building world …");
    let study = Study::build(StudyConfig::test(0.05));
    let mut collector = Collector::new(&study.world, &study.peers);
    let incident_idx = study
        .world
        .window
        .snapshot_index(Date::ymd(1998, 4, 7).day_index())
        .expect("incident day is a snapshot day");

    // Warm up the monitor over the preceding week so standing
    // conflicts are learned and alarms mean something.
    let mut monitor = MoasMonitor::new(2);
    let mut replayer = StreamReplayer::new();
    let warmup_start = incident_idx - 7;
    let seed_snap = collector.snapshot_at(warmup_start, BackgroundMode::None);
    replayer.seed(&seed_snap);
    monitor.observe(&replayer.detect_now(seed_snap.date));
    for idx in warmup_start..incident_idx - 1 {
        let (_, next, stream) = day_transition(&mut collector, idx, idx + 1, BackgroundMode::None);
        replayer.apply_all(&stream);
        monitor.observe(&replayer.detect_now(next.date));
    }
    let baseline = replayer
        .detect_now(study.world.window.day_at(incident_idx - 1).date())
        .conflict_count();
    println!("baseline conflicts before the incident day: {baseline}");

    // Now stream the incident-day updates in bursts and watch live.
    let (_, next, stream) = day_transition(
        &mut collector,
        incident_idx - 1,
        incident_idx,
        BackgroundMode::None,
    );
    println!(
        "incident-day stream: {} UPDATE records ({} announcements)\n",
        stream.len(),
        replay_announced(&stream)
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12}",
        "updates", "conflicts", "new alarms", "total alarms"
    );
    let mut applied = 0usize;
    let mut total_alarms = 0usize;
    let burst = (stream.len() / 10).max(1);
    for chunk in stream.chunks(burst) {
        replayer.apply_all(chunk);
        applied += chunk.len();
        let obs = replayer.detect_now(next.date);
        let alarms = monitor.observe(&obs).len();
        total_alarms += alarms;
        println!(
            "{:>8} {:>10} {:>12} {:>12}",
            applied,
            obs.conflict_count(),
            alarms,
            total_alarms
        );
    }

    let end = replayer.detect_now(next.date).conflict_count();
    println!(
        "\nconflicts after the full day's stream: {end} (dump-based analysis would \
         have seen this only at the next snapshot)"
    );
    println!(
        "stream stats: {} updates, {} announcements, {} withdrawals",
        replayer.stats().updates,
        replayer.stats().announcements,
        replayer.stats().withdrawals
    );
}

fn replay_announced(stream: &[moas_mrt::MrtRecord]) -> usize {
    stream
        .iter()
        .filter_map(|r| match &r.body {
            MrtBody::Bgp4mpMessage(m) => match &m.message {
                moas_bgp::message::BgpMessage::Update(u) => Some(u.announced.len()),
                _ => None,
            },
            _ => None,
        })
        .sum()
}
