//! The long-running conflict-history service, end to end: render a
//! multi-day window as an on-disk MRT archive, stream it through a
//! live [`HistoryService`] — writer appending, compaction daemon
//! rewriting cold segments into a record table, retention expiring
//! whole days — while a concurrent reader thread takes §VI validity
//! snapshots mid-ingest.
//!
//! ```sh
//! cargo run --release --example history_service
//! ```

use moas_core::pipeline::{analyze_mrt_archive, restrict_archive_window};
use moas_history::pipeline::{analyze_mrt_archive_service, StreamingArchiveConfig};
use moas_history::{HistoryService, RetentionPolicy, ServiceConfig, ValidityConfig};
use moas_lab::study::{Study, StudyConfig};
use moas_mrt::snapshot::DumpFormat;
use moas_net::Date;
use moas_routeviews::{write_window_archive, BackgroundMode, Collector};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn main() -> std::io::Result<()> {
    let days = 14usize;
    let retain_days = 7u32;
    let study = Study::build(StudyConfig::test(0.004));
    let dates: Vec<Date> = study.world.window.all_days()[..days]
        .iter()
        .map(|d| d.date())
        .collect();

    let base = std::env::temp_dir().join("moas-history-service");
    let archive_dir = base.join("archive");
    let store_dir = base.join("store");
    std::fs::remove_dir_all(&base).ok();

    println!("== rendering a {days}-day MRT archive ==");
    let files = {
        let mut collector = Collector::new(&study.world, &study.peers);
        write_window_archive(
            &mut collector,
            &archive_dir,
            0,
            days,
            BackgroundMode::Sample(15),
            DumpFormat::V2,
        )?
    };
    println!("   {} files under {}", files.len(), archive_dir.display());

    println!("== service up: retention keep {retain_days} days, daemon watermark 2 ==");
    let service = HistoryService::open(
        &store_dir,
        ServiceConfig {
            start_date: dates[0],
            retention: RetentionPolicy::keep_days(retain_days),
            watermark_segments: 2,
            poll_interval: Duration::from_millis(50),
            daemon: true,
        },
    )?;

    // A reader polls validity while the writer ingests and the daemon
    // compacts/expires underneath — never blocking either.
    let stop = AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        let reader = service.reader();
        let stop_ref = &stop;
        scope.spawn(move || {
            let mut last_epoch = u64::MAX;
            while !stop_ref.load(Ordering::Relaxed) {
                let snap = reader.snapshot();
                if snap.epoch() != last_epoch {
                    last_epoch = snap.epoch();
                    let (valid, recurring, invalid) =
                        snap.validity(ValidityConfig::default()).tally();
                    println!(
                        "   [reader] epoch {:>3}: horizon day {}, {} records ({} valid / {} recurring / {} invalid)",
                        snap.epoch(),
                        snap.horizon_day(),
                        snap.conflicts().records().len(),
                        valid,
                        recurring,
                        invalid,
                    );
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });

        let report = analyze_mrt_archive_service(
            &dates,
            &files,
            &StreamingArchiveConfig::with_shards(4),
            &service,
        );
        service.wait_idle();
        stop.store(true, Ordering::Relaxed);
        report
    })?;
    println!(
        "   ingested {} days, {} events; monitor applied {} updates",
        report.days, report.events_stored, report.monitor.metrics.updates_applied
    );

    println!("== final state ==");
    let stats = service.stats();
    println!(
        "   {} segments written, {} expired by retention, {} table rewrites",
        stats.segments_written, stats.segments_expired, stats.tables_written
    );
    println!(
        "   bytes: {} retained / {} lifetime ({} reclaimed by expiry)",
        stats.retained_bytes, stats.lifetime_bytes, stats.bytes_expired
    );

    let snap = service.reader().snapshot();
    let horizon = snap.horizon_day() as usize;
    println!(
        "   horizon at day {horizon}: cold history served from the table, {} hot-tail events",
        report.events_stored
    );

    // Exactness under expiry: the retained-window answers equal the
    // batch scan restricted to the same window.
    let (retained_dates, retained_files) = restrict_archive_window(&dates, &files, horizon);
    let (batch_tl, _) = analyze_mrt_archive(
        retained_dates.clone(),
        retained_dates.len(),
        &retained_files,
    )?;
    let mut got = snap.durations(&retained_dates);
    got.sort_unstable();
    let mut want = batch_tl.durations();
    want.sort_unstable();
    println!(
        "   retained-window check: service {} conflicts vs batch {} — durations {}",
        snap.total_conflicts(&retained_dates),
        batch_tl.total_conflicts(),
        if got == want { "MATCH" } else { "MISMATCH" },
    );
    assert_eq!(
        snap.total_conflicts(&retained_dates),
        batch_tl.total_conflicts()
    );
    assert_eq!(got, want);

    let truncated = snap.conflicts().truncated_prefixes().len();
    println!(
        "   {} records marked truncated by retention; affinity index {} pairs",
        truncated,
        snap.conflicts().affinity().len()
    );

    service.close()?;
    std::fs::remove_dir_all(&base).ok();
    println!("done.");
    Ok(())
}
