//! The archive pipeline, bytes and all: write daily MRT table dumps to
//! disk (as NLANR/PCH did), read them back, and analyze — the exact
//! code path an analysis of the genuine archives would take.
//!
//! Also demonstrates smoltcp-style fault tolerance: one archive file is
//! deliberately corrupted, and the scan degrades gracefully instead of
//! aborting.
//!
//! ```sh
//! cargo run --release --example mrt_pipeline
//! ```

use moas_core::pipeline::analyze_mrt_archive;
use moas_lab::study::{Study, StudyConfig};
use moas_mrt::snapshot::{snapshot_to_records, DumpFormat};
use moas_mrt::MrtWriter;
use moas_routeviews::{BackgroundMode, Collector};
use std::fs::File;
use std::io::Write as _;

fn main() -> std::io::Result<()> {
    // A small world: full tables (background + conflicts) stay light.
    eprintln!("building world …");
    let study = Study::build(StudyConfig::test(0.02));
    let dir = std::env::temp_dir().join("moas-mrt-pipeline");
    std::fs::create_dir_all(&dir)?;

    // Archive 30 consecutive snapshot days with FULL tables, v1 and v2
    // formats alternating — both must parse identically.
    let first_idx = 600usize;
    let n_days = 30usize;
    let mut collector = Collector::new(&study.world, &study.peers);
    let mut files = Vec::new();
    let mut total_bytes = 0u64;
    eprintln!("writing {n_days} daily MRT archives …");
    for (k, idx) in (first_idx..first_idx + n_days).enumerate() {
        let snap = collector.snapshot_at(idx, BackgroundMode::Full);
        let format = if k % 2 == 0 {
            DumpFormat::V1
        } else {
            DumpFormat::V2
        };
        let records = snapshot_to_records(&snap, format);
        let date = study.world.window.day_at(idx).date();
        let path = dir.join(format!(
            "rib.{}{:02}{:02}.mrt",
            date.year(),
            date.month(),
            date.day()
        ));
        let mut w = MrtWriter::new(File::create(&path)?);
        w.write_all(&records)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        total_bytes += w.bytes_written();
        w.finish()
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        files.push((k, path));
    }
    println!(
        "wrote {n_days} archives, {:.1} MiB total ({} routes/day ≈ full table)",
        total_bytes as f64 / (1024.0 * 1024.0),
        collector.snapshot_at(first_idx, BackgroundMode::Full).len()
    );

    // Corrupt one file in the middle: flip a byte inside every 50th
    // record's *body*. (A flip inside the 12-byte MRT header's length
    // field would defeat resynchronization entirely — that failure mode
    // is exercised separately in the reader's unit tests.)
    let victim = &files[7].1;
    let mut bytes = std::fs::read(victim)?;
    let mut off = 0usize;
    let mut record_no = 0usize;
    let mut corrupted = 0usize;
    while off + 12 <= bytes.len() {
        let len = u32::from_be_bytes([
            bytes[off + 8],
            bytes[off + 9],
            bytes[off + 10],
            bytes[off + 11],
        ]) as usize;
        if record_no % 50 == 10 && len > 8 {
            bytes[off + 12 + len / 2] ^= 0xA5;
            corrupted += 1;
        }
        off += 12 + len;
        record_no += 1;
    }
    File::create(victim)?.write_all(&bytes)?;
    println!(
        "corrupted {corrupted} record bodies in archive #8 ({})",
        victim.display()
    );

    // Read everything back and analyze.
    let dates: Vec<moas_net::Date> = (first_idx..first_idx + n_days)
        .map(|idx| study.world.window.day_at(idx).date())
        .collect();
    let (tl, skipped) = analyze_mrt_archive(dates, n_days, &files)?;

    println!("\nanalysis over the parsed archives:");
    println!("  days analyzed:        {}", tl.days().count());
    println!("  records skipped:      {skipped} (corruption, counted not fatal)");
    println!("  distinct conflicts:   {}", tl.total_conflicts());
    let daily: Vec<u32> = tl.days().map(|d| d.conflict_count).collect();
    println!(
        "  conflicts per day:    min {} / max {}",
        daily.iter().min().unwrap_or(&0),
        daily.iter().max().unwrap_or(&0)
    );
    let mut durations = tl.durations();
    durations.sort_unstable();
    println!(
        "  duration range:       {}–{} days within this 30-day slice",
        durations.first().unwrap_or(&0),
        durations.last().unwrap_or(&0)
    );

    // Cross-check against ground truth, day by day. The corrupted
    // archive is expected to *disagree*: a byte flip inside an AS_PATH
    // changes an origin ASN, which manufactures spurious MOAS
    // conflicts — exactly the kind of data-cleaning hazard a study
    // like the paper's has to guard against.
    println!("\nper-day check against ground truth (± = detected − truth):");
    for (k, idx) in (first_idx..first_idx + n_days).enumerate() {
        let truth = study.world.active_at(idx).len() as i64;
        let got = daily[k] as i64;
        if (got - truth).abs() > 1 {
            println!(
                "  day {k:>2} ({}): detected {got}, truth {truth} ({:+}){}",
                study.world.window.day_at(idx).date(),
                got - truth,
                if k == 7 {
                    "  ← the corrupted archive"
                } else {
                    ""
                }
            );
        }
    }
    let clean_ok = (0..n_days).filter(|k| *k != 7).all(|k| {
        let truth = study.world.active_at(first_idx + k).len() as i64;
        (daily[k] as i64 - truth).abs() <= 1
    });
    println!("  all uncorrupted days match ground truth: {clean_ok}");

    // Clean up.
    for (_, p) in files {
        std::fs::remove_file(p).ok();
    }
    Ok(())
}
