//! Quickstart: detect MOAS conflicts in a hand-built routing table.
//!
//! This is the five-minute tour of the public API: build a
//! [`TableSnapshot`] (what one day of Route Views data looks like),
//! run the detector, classify each conflict, and print a report —
//! no simulator involved.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use moas_bgp::{PeerInfo, TableSnapshot};
use moas_core::classify::classify;
use moas_core::detect::detect;
use moas_core::report::text_table;
use moas_net::{Asn, Date};
use std::net::Ipv4Addr;

fn main() {
    // One day's table at a collector with three peers.
    let mut table = TableSnapshot::new(Date::ymd(1998, 4, 7));
    let p701 = table.add_peer(PeerInfo::v4(Ipv4Addr::new(10, 0, 0, 1), Asn::new(701)));
    let p1239 = table.add_peer(PeerInfo::v4(Ipv4Addr::new(10, 0, 0, 2), Asn::new(1239)));
    let p3561 = table.add_peer(PeerInfo::v4(Ipv4Addr::new(10, 0, 0, 3), Asn::new(3561)));

    // A healthy prefix: every peer agrees the origin is AS 7007.
    table.push_path(
        p701,
        "198.51.100.0/24".parse().unwrap(),
        "701 7007".parse().unwrap(),
    );
    table.push_path(
        p1239,
        "198.51.100.0/24".parse().unwrap(),
        "1239 701 7007".parse().unwrap(),
    );

    // A MOAS conflict: AS 8584 claims a prefix that AS 7007 originates
    // (the shape of the 1998-04-07 incident).
    table.push_path(
        p701,
        "192.0.2.0/24".parse().unwrap(),
        "701 7007".parse().unwrap(),
    );
    table.push_path(
        p3561,
        "192.0.2.0/24".parse().unwrap(),
        "3561 8584".parse().unwrap(),
    );

    // An OrigTranAS conflict: AS 1239 announces itself as origin on one
    // session and as transit toward AS 64999's route on another.
    table.push_path(
        p701,
        "203.0.113.0/24".parse().unwrap(),
        "701 1239".parse().unwrap(),
    );
    table.push_path(
        p1239,
        "203.0.113.0/24".parse().unwrap(),
        "701 1239 64999".parse().unwrap(),
    );

    // A route ending in an AS set — excluded per the paper's §III rule.
    table.push_path(
        p701,
        "233.252.0.0/24".parse().unwrap(),
        "701 {64500,64501}".parse().unwrap(),
    );

    let obs = detect(&table);

    println!(
        "scanned {} routes over {} prefixes → {} MOAS conflicts, {} AS-set prefixes excluded\n",
        obs.total_routes,
        obs.total_prefixes,
        obs.conflict_count(),
        obs.as_set_prefixes.len()
    );

    let rows: Vec<Vec<String>> = obs
        .conflicts
        .iter()
        .map(|c| {
            vec![
                c.prefix.to_string(),
                c.origins
                    .iter()
                    .map(|o| o.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                classify(c).to_string(),
                c.paths
                    .iter()
                    .map(|(_, p)| format!("[{p}]"))
                    .collect::<Vec<_>>()
                    .join(" "),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(&["prefix", "origins", "class", "paths"], &rows)
    );

    for (prefix, set) in &obs.as_set_prefixes {
        println!(
            "excluded (AS-set origin): {prefix} ← {{{}}}",
            set.iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
    }
}
