//! Acceptance for the profiling & resource-attribution layer, checked
//! over the wire wherever the feature has a wire surface:
//!
//! * Named-thread CPU attribution must cover ≥ 90 % of the process
//!   CPU burned under a SimFeed ingest with concurrent query load —
//!   every pipeline thread reports through the thread-name registry,
//!   so almost nothing lands in `thread="other"`.
//! * `/v1/profile` folded stacks must be flamegraph.pl-parseable, and
//!   the profiler's per-stage self-time must reconcile (± 10 %) with
//!   the `moas_stage_duration_us` histogram sums over the same run.
//! * The profiler and sampler journal their lifecycle (`profiler_started`,
//!   `profiler_stopped`, `sampler_stall`) and those events surface in
//!   `/v1/events/log` and the `/v1/events/stream` SSE tail.
//! * Error responses on the self-monitoring routes use the uniform
//!   envelope `{"error":{code,message,retry_after}}` — pinned here so
//!   a refactor cannot silently change the wire contract.

use moas_feed::{FeedConfig, FeedFollower};
use moas_history::{HistoryService, RetentionPolicy, ServiceConfig};
use moas_lab::study::{Study, StudyConfig};
use moas_net::Date;
use moas_obs::tsdb::{unix_now, Sampler};
use moas_obs::{AlertEngine, CpuLedger, Profiler, Registry, ResourceLedger, Tsdb};
use moas_routeviews::{write_update_archive, BackgroundMode, Collector};
use moas_serve::{QueryServer, QueryService, ServerConfig};
use serde::Value;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const DAYS: usize = 3;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("moas-obs-profile-{}-{name}", std::process::id()))
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(
            format!("GET {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line.split(' ').nth(1).and_then(|s| s.parse().ok()).unwrap();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8"))
}

fn parse(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"))
}

/// Asserts the uniform error envelope: a single `error` object
/// carrying exactly `code`, `message`, and `retry_after`.
fn assert_envelope(body: &str, code: &str) {
    let doc = parse(body);
    let err = doc
        .get("error")
        .unwrap_or_else(|| panic!("missing error object: {body}"));
    assert_eq!(
        err.get("code").and_then(Value::as_str),
        Some(code),
        "wrong code: {body}"
    );
    assert!(
        matches!(err.get("message"), Some(Value::String(m)) if !m.is_empty()),
        "missing message: {body}"
    );
    assert!(
        err.get("retry_after").is_some(),
        "missing retry_after: {body}"
    );
}

fn write_archive(name: &str, dates: &mut Vec<Date>) -> PathBuf {
    let study = Study::build(StudyConfig::test(0.004));
    *dates = study.world.window.all_days()[..DAYS]
        .iter()
        .map(|d| d.date())
        .collect();
    let archive_dir = tmp(name);
    std::fs::remove_dir_all(&archive_dir).ok();
    let mut collector = Collector::new(&study.world, &study.peers);
    write_update_archive(
        &mut collector,
        &archive_dir,
        0,
        DAYS,
        BackgroundMode::Sample(15),
    )
    .expect("write synthetic archive");
    archive_dir
}

fn open_service(dir: &PathBuf, start: Date) -> Arc<HistoryService> {
    std::fs::remove_dir_all(dir).ok();
    Arc::new(
        HistoryService::open(
            dir,
            ServiceConfig {
                start_date: start,
                retention: RetentionPolicy::keep_everything(),
                watermark_segments: 2,
                poll_interval: Duration::from_millis(50),
                daemon: true,
            },
        )
        .expect("open service"),
    )
}

/// A history service with no ingest — the light fixture for tests
/// that only exercise the wire protocol.
fn light_service(name: &str) -> Arc<HistoryService> {
    let dir = tmp(name);
    std::fs::remove_dir_all(&dir).ok();
    Arc::new(
        HistoryService::open(
            &dir,
            ServiceConfig {
                start_date: Date::ymd(2024, 1, 1),
                daemon: false,
                ..ServiceConfig::default()
            },
        )
        .expect("open light service"),
    )
}

/// CPU seconds per `thread=` label plus the process total, parsed
/// from one wire-level `/metrics` scrape (which itself samples the
/// ledger).
fn scrape_cpu(addr: SocketAddr) -> (BTreeMap<String, f64>, f64) {
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let mut threads = BTreeMap::new();
    let mut process = 0.0;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("moas_thread_cpu_seconds_total{thread=\"") {
            let (name, tail) = rest.split_once('"').expect("label close quote");
            let value: f64 = tail
                .rsplit(' ')
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("bad sample line: {line}"));
            *threads.entry(name.to_string()).or_insert(0.0) += value;
        } else if let Some(rest) = line.strip_prefix("moas_process_cpu_seconds_total ") {
            process = rest.trim().parse().expect("process cpu value");
        }
    }
    (threads, process)
}

/// Per-stage `moas_stage_duration_us` histogram sums (µs) from one
/// `/metrics` scrape.
fn scrape_stage_sums(addr: SocketAddr) -> BTreeMap<String, u64> {
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let mut sums = BTreeMap::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("moas_stage_duration_us_sum{stage=\"") {
            let (stage, tail) = rest.split_once('"').expect("label close quote");
            let value: u64 = tail
                .rsplit(' ')
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("bad sum line: {line}"));
            sums.insert(stage.to_string(), value);
        }
    }
    sums
}

/// The tentpole acceptance test: a SimFeed ingest with concurrent
/// query load, measured entirely over the wire.
///
/// * Named threads must account for ≥ 90 % of the process CPU burned
///   during the window (the named-attribution acceptance bar).
/// * The folded stacks at `/v1/profile` must parse as flamegraph.pl
///   input and contain the ingest pipeline stages.
/// * Per-stage profiler self-time must reconcile with the
///   `moas_stage_duration_us` histogram sums within ± 10 %.
#[test]
fn cpu_attribution_and_stage_profiles_reconcile_under_load() {
    // Every thread this test runs work on is named, including itself.
    let _reg = moas_obs::prof::register_thread_as("test-profile-driver");

    let mut dates = Vec::new();
    let archive_dir = write_archive("load-archive", &mut dates);
    let service = open_service(&tmp("load-store"), dates[0]);

    let registry = Arc::new(Registry::new());
    let profiler = Arc::new(Profiler::new(Arc::clone(&registry)));
    let cpu = Arc::new(CpuLedger::new(Arc::clone(&registry)));
    let resources = Arc::new(ResourceLedger::new(Arc::clone(&registry)));
    let store_reader = service.reader();
    resources.probe("store", move || {
        store_reader.snapshot().stats().retained_bytes
    });

    let query = Arc::new(
        QueryService::with_registry(
            service.reader(),
            ServerConfig {
                start_date: dates[0],
                slow_request_micros: 1,
                ..ServerConfig::default()
            },
            Arc::clone(&registry),
        )
        .with_profiler(Arc::clone(&profiler))
        .with_cpu_ledger(Arc::clone(&cpu))
        .with_resources(Arc::clone(&resources)),
    );
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind");
    let addr = server.local_addr();

    // Baseline: the scrape itself samples the ledger.
    let (base_threads, base_process) = scrape_cpu(addr);

    // A collector thread keeps the span ring drained and the CPU
    // ledger fresh while the load runs, exactly like a deployment's
    // background Sampler tick would.
    let stop = Arc::new(AtomicBool::new(false));
    let collector = {
        let stop = Arc::clone(&stop);
        let profiler = Arc::clone(&profiler);
        let cpu = Arc::clone(&cpu);
        std::thread::Builder::new()
            .name("test-collector".into())
            .spawn(move || {
                let _reg = moas_obs::prof::register_thread();
                while !stop.load(Ordering::Acquire) {
                    profiler.collect();
                    cpu.sample();
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
            .expect("spawn collector")
    };

    // Concurrent query load: two named client threads hammer the read
    // API while the follower ingests.
    let clients: Vec<_> = (0..2)
        .map(|i| {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("test-client-{i}"))
                .spawn(move || {
                    let _reg = moas_obs::prof::register_thread();
                    let mut sent = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let (status, _) = get(addr, "/v1/stats");
                        assert_eq!(status, 200);
                        sent += 1;
                    }
                    sent
                })
                .expect("spawn client")
        })
        .collect();

    // The SimFeed ingest: the follower, history daemon, and shard
    // workers all spawn named.
    let mut follower = FeedFollower::open_with_registry(
        FeedConfig::new(&archive_dir, dates[0]),
        Arc::clone(&service),
        Arc::clone(&registry),
    )
    .expect("open follower");
    while !follower.poll_once().expect("poll").caught_up {}
    follower.finalize().expect("finalize");
    service.wait_idle();

    // The load window proper: the clients keep hammering while the
    // driver burns CPU it expects to see attributed to its own name.
    // The synthetic archive is small, so without this the whole test
    // could finish inside a couple of scheduler accounting ticks
    // (10 ms each) and the coverage ratio would be rounding noise.
    let load_until = std::time::Instant::now() + Duration::from_millis(1500);
    let mut spin = 0u64;
    while std::time::Instant::now() < load_until {
        for _ in 0..10_000 {
            spin = spin
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
    }
    std::hint::black_box(spin);

    stop.store(true, Ordering::Release);
    let queries: u64 = clients.into_iter().map(|c| c.join().expect("client")).sum();
    assert!(queries > 0, "the concurrent query load must have run");
    collector.join().expect("collector");

    // ---- Acceptance bar 1: ≥ 90 % of process CPU is attributed to
    // named threads over the load window.
    let (end_threads, end_process) = scrape_cpu(addr);
    let process_delta = end_process - base_process;
    assert!(
        process_delta > 0.0,
        "the load must burn measurable process CPU"
    );
    let named_delta: f64 = end_threads
        .iter()
        .filter(|(name, _)| name.as_str() != "other")
        .map(|(name, v)| v - base_threads.get(name).copied().unwrap_or(0.0))
        .sum();
    let coverage = named_delta / process_delta;
    assert!(
        coverage >= 0.90,
        "named threads must cover >= 90% of process CPU, got {:.1}% \
         ({named_delta:.3}s of {process_delta:.3}s; threads: {end_threads:?})",
        coverage * 100.0
    );

    // ---- Acceptance bar 2: folded stacks parse as flamegraph.pl
    // input — `frame(;frame)* <weight>` per line — and name the
    // ingest pipeline.
    let (status, folded) = get(addr, "/v1/profile?range=3600");
    assert_eq!(status, 200);
    assert!(!folded.is_empty(), "the profile must not be empty");
    for line in folded.lines() {
        let (stack, weight) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("folded line must be 'stack weight': {line:?}"));
        weight
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("weight must be integer µs: {line:?}"));
        assert!(
            !stack.is_empty() && stack.split(';').all(|frame| !frame.is_empty()),
            "stack frames must be non-empty: {line:?}"
        );
    }
    for stage in ["feed_poll", "mrt_decode", "request_route"] {
        assert!(
            folded.lines().any(|l| l.contains(stage)),
            "folded stacks must include {stage}:\n{folded}"
        );
    }
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("feed_poll;") || l.starts_with("feed_poll ")),
        "ingest stacks must be rooted at feed_poll:\n{folded}"
    );

    // ---- Acceptance bar 3: per-stage profiler self-time reconciles
    // with the stage histogram sums within ± 10 %. The compared
    // stages are leaves of the ingest trace, so self-time and the
    // histogram's observed duration measure the same interval.
    let (status, body) = get(addr, "/v1/profile?range=3600&format=json");
    assert_eq!(status, 200);
    let doc = parse(&body);
    let mut profiled: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    for row in doc.get("stages").and_then(Value::as_array).expect("stages") {
        let stage = row.get("stage").and_then(Value::as_str).expect("stage");
        let self_us = row.get("self_us").and_then(Value::as_u64).expect("self_us");
        let total_us = row
            .get("total_us")
            .and_then(Value::as_u64)
            .expect("total_us");
        let count = row.get("count").and_then(Value::as_u64).expect("count");
        assert!(
            self_us <= total_us,
            "{stage}: self-time cannot exceed total time"
        );
        profiled.insert(stage.to_string(), (self_us, total_us, count));
    }
    let sums = scrape_stage_sums(addr);
    for stage in ["mrt_decode", "shard_apply", "event_append"] {
        let (self_us, _, count) = *profiled
            .get(stage)
            .unwrap_or_else(|| panic!("{stage} missing from profile: {profiled:?}"));
        assert!(count > 0, "{stage} must have folded occurrences");
        let hist_sum = *sums
            .get(stage)
            .unwrap_or_else(|| panic!("{stage} missing from histograms: {sums:?}"));
        let diff = self_us.abs_diff(hist_sum);
        assert!(
            diff as f64 <= 0.10 * hist_sum as f64,
            "{stage}: profiler self-time {self_us}µs vs histogram sum {hist_sum}µs \
             diverges more than 10% (dropped spans: {})",
            profiler.spans_dropped()
        );
    }

    // The resource ledger published through the same scrape.
    let (_, body) = get(addr, "/metrics");
    assert!(
        body.contains("moas_resource_bytes{component=\"store\"}"),
        "the store probe must publish"
    );
    assert!(body.contains("moas_process_rss_bytes"));
    assert!(body.contains("moas_build_info{"));
    assert!(body.contains("moas_process_start_time_seconds"));

    server.shutdown();
    follower.shutdown().expect("follower shutdown");
}

/// The workload analytics surface on a light server: the top-k
/// sketch, per-endpoint aggregates, and the slow-query log with trace
/// ids — plus the `format`/`top` parameter validation envelopes.
#[test]
fn workload_analytics_and_profile_formats_over_the_wire() {
    let _reg = moas_obs::prof::register_thread_as("test-workload");
    let service = light_service("workload-store");
    let registry = Arc::new(Registry::new());
    let profiler = Arc::new(Profiler::new(Arc::clone(&registry)));
    let query = Arc::new(
        QueryService::with_registry(
            service.reader(),
            ServerConfig {
                start_date: Date::ymd(2024, 1, 1),
                // 1 µs: every request lands in the slow-query log.
                slow_request_micros: 1,
                ..ServerConfig::default()
            },
            Arc::clone(&registry),
        )
        .with_profiler(Arc::clone(&profiler)),
    );
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind");
    let addr = server.local_addr();

    // A skewed workload: /v1/stats is the hot endpoint.
    for _ in 0..6 {
        let (status, _) = get(addr, "/v1/stats");
        assert_eq!(status, 200);
    }
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);

    let (status, body) = get(addr, "/v1/workload");
    assert_eq!(status, 200);
    let doc = parse(&body);
    assert!(doc.get("recorded").and_then(Value::as_u64).unwrap() >= 8);
    assert_eq!(
        doc.get("slow_threshold_us").and_then(Value::as_u64),
        Some(1)
    );
    let top = doc.get("top").and_then(Value::as_array).expect("top");
    assert_eq!(
        top[0].get("endpoint").and_then(Value::as_str),
        Some("/v1/stats"),
        "the hot endpoint leads the sketch: {body}"
    );
    assert!(top[0].get("count").and_then(Value::as_u64).unwrap() >= 6);
    let endpoints = doc
        .get("endpoints")
        .and_then(Value::as_array)
        .expect("endpoints");
    let stats_row = endpoints
        .iter()
        .find(|e| e.get("endpoint").and_then(Value::as_str) == Some("/v1/stats"))
        .expect("per-endpoint aggregate for /v1/stats");
    assert!(
        stats_row.get("p50_us").and_then(Value::as_u64).is_some(),
        "latency quantiles are served: {body}"
    );
    assert!(
        stats_row.get("p99_bytes").and_then(Value::as_u64).is_some(),
        "response-size quantiles are served: {body}"
    );
    // Every request crossed the 1 µs threshold, so the slow log is
    // populated and each row resolves to its span tree.
    let slow = doc.get("slow").and_then(Value::as_array).expect("slow");
    assert!(!slow.is_empty(), "slow log must be populated: {body}");
    let trace = slow
        .iter()
        .rev()
        .find_map(|s| s.get("trace").and_then(Value::as_str))
        .expect("slow rows carry trace ids");
    let (status, _) = get(addr, &format!("/v1/trace/{trace}"));
    assert_eq!(status, 200, "the slow-log trace id must resolve");

    // ?top= bounds the sketch answer; junk values get the envelope.
    let (status, body) = get(addr, "/v1/workload?top=1");
    assert_eq!(status, 200);
    assert_eq!(
        parse(&body)
            .get("top")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(1)
    );
    let (status, body) = get(addr, "/v1/workload?top=banana");
    assert_eq!(status, 400);
    assert_envelope(&body, "bad_request");

    // The profile endpoint's two shapes and its format validation.
    let (status, folded) = get(addr, "/v1/profile");
    assert_eq!(status, 200);
    assert!(
        folded.lines().any(|l| l.starts_with("request")),
        "request spans must fold: {folded:?}"
    );
    let (status, body) = get(addr, "/v1/profile?format=json");
    assert_eq!(status, 200);
    let doc = parse(&body);
    assert!(doc.get("range_secs").and_then(Value::as_u64).is_some());
    assert!(doc.get("spans_dropped").and_then(Value::as_u64).is_some());
    let stages: Vec<&str> = doc
        .get("stages")
        .and_then(Value::as_array)
        .expect("stages")
        .iter()
        .filter_map(|r| r.get("stage").and_then(Value::as_str))
        .collect();
    assert!(
        stages.contains(&"request_route"),
        "request stages must be profiled: {stages:?}"
    );
    let (status, body) = get(addr, "/v1/profile?format=xml");
    assert_eq!(status, 400);
    assert_envelope(&body, "bad_request");

    server.shutdown();
}

/// Error-envelope pins for the self-monitoring routes: every failure
/// answers the uniform `{"error":{code,message,retry_after}}` shape
/// with the right status.
#[test]
fn selfmon_routes_answer_uniform_error_envelopes() {
    let _reg = moas_obs::prof::register_thread_as("test-envelopes");
    let service = light_service("envelope-store");

    // A bare server: no tsdb, no profiler attached.
    let bare = Arc::new(QueryService::new(
        service.reader(),
        ServerConfig {
            start_date: Date::ymd(2024, 1, 1),
            slow_request_micros: 0,
            ..ServerConfig::default()
        },
    ));
    let bare_server = QueryServer::bind("127.0.0.1:0", Arc::clone(&bare)).expect("bind");
    let bare_addr = bare_server.local_addr();
    for (target, code) in [
        ("/v1/series?name=anything", "not_found"),
        ("/v1/profile", "not_found"),
    ] {
        let (status, body) = get(bare_addr, target);
        assert_eq!(status, 404, "{target} without the subsystem: {body}");
        assert_envelope(&body, code);
    }
    bare_server.shutdown();

    // A fully-attached server.
    let registry = Arc::new(Registry::new());
    let tsdb = Arc::new(Tsdb::default());
    let alerts = Arc::new(AlertEngine::new(Arc::clone(&registry), Arc::clone(&tsdb)));
    let query = Arc::new(
        QueryService::with_registry(
            service.reader(),
            ServerConfig {
                start_date: Date::ymd(2024, 1, 1),
                slow_request_micros: 0,
                ..ServerConfig::default()
            },
            Arc::clone(&registry),
        )
        .with_self_monitor(Arc::clone(&tsdb), Arc::clone(&alerts)),
    );
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind");
    let addr = server.local_addr();

    // One request then one sample, so a known series exists.
    let (status, _) = get(addr, "/v1/stats");
    assert_eq!(status, 200);
    tsdb.sample(&registry, unix_now());
    let (status, _) = get(addr, "/v1/series?name=moas_serve_requests_total&range=600");
    assert_eq!(status, 200, "the sampled series is queryable");

    for (target, want, code) in [
        // Missing and malformed parameters are 400s.
        ("/v1/series", 400, "bad_request"),
        (
            "/v1/series?name=moas_serve_requests_total&range=banana",
            400,
            "bad_request",
        ),
        // A series the tsdb never sampled is a loud 404, not an
        // empty 200.
        ("/v1/series?name=moas_no_such_series", 404, "not_found"),
        // Trace ids: non-hex is a 400, a hex id never sampled is a
        // 404, and the empty id falls through to the route-level 404.
        ("/v1/trace/zzzz", 400, "bad_request"),
        ("/v1/trace/fffffffffffffff1", 404, "not_found"),
        ("/v1/trace/", 404, "not_found"),
    ] {
        let (status, body) = get(addr, target);
        assert_eq!(status, want, "{target}: {body}");
        assert_envelope(&body, code);
    }

    server.shutdown();
}

/// The profiler and sampler lifecycle events land in the journal and
/// surface over both wire shapes: the `/v1/events/log` snapshot and
/// the `/v1/events/stream` SSE tail.
#[test]
fn profiler_and_sampler_events_surface_in_log_and_sse_tail() {
    let _reg = moas_obs::prof::register_thread_as("test-journal-events");
    let service = light_service("events-store");
    let registry = Arc::new(Registry::new());
    let query = Arc::new(QueryService::with_registry(
        service.reader(),
        ServerConfig {
            start_date: Date::ymd(2024, 1, 1),
            sse_poll_interval: Duration::from_millis(20),
            // Keep request noise out of the journal.
            slow_request_micros: 0,
            ..ServerConfig::default()
        },
        Arc::clone(&registry),
    ));
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind");
    let addr = server.local_addr();

    // Lifecycle: construction journals the start, drop the stop.
    let profiler = Profiler::new(Arc::clone(&registry));
    drop(profiler);

    // A wedged on_tick hook stalls the sampler past 2× its interval;
    // the loop must notice its own degradation and journal it.
    let tsdb = Arc::new(Tsdb::default());
    let stalls = Arc::new(AtomicBool::new(true));
    let hook_flag = Arc::clone(&stalls);
    let sampler = Sampler::spawn(
        Arc::clone(&registry),
        Arc::clone(&tsdb),
        Duration::from_millis(10),
        move |_| {
            if hook_flag.swap(false, Ordering::AcqRel) {
                std::thread::sleep(Duration::from_millis(60));
            }
        },
    )
    .expect("spawn sampler");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !registry
        .journal()
        .events()
        .iter()
        .any(|e| e.kind == "sampler_stall")
    {
        assert!(
            std::time::Instant::now() < deadline,
            "the induced stall must be journaled; got {:?}",
            registry.journal().events()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(sampler);

    // Wire shape 1: the journal snapshot.
    let (status, body) = get(addr, "/v1/events/log");
    assert_eq!(status, 200);
    let kinds: Vec<String> = parse(&body)
        .get("events")
        .and_then(Value::as_array)
        .expect("events")
        .iter()
        .filter_map(|e| e.get("kind").and_then(Value::as_str).map(str::to_string))
        .collect();
    for kind in ["profiler_started", "profiler_stopped", "sampler_stall"] {
        assert!(
            kinds.iter().any(|k| k == kind),
            "{kind} must appear in /v1/events/log: {kinds:?}"
        );
    }

    // Wire shape 2: a fresh SSE subscription replays the ring; the
    // same three kinds must stream as typed frames.
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer
        .write_all(b"GET /v1/events/stream HTTP/1.1\r\nhost: t\r\n\r\n")
        .expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("status");
    assert!(line.starts_with("HTTP/1.1 200"), "stream opens: {line:?}");
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        if header.trim_end().is_empty() {
            break;
        }
    }
    let mut seen: Vec<String> = Vec::new();
    'frames: for _ in 0..200 {
        // One frame: fields up to a blank line.
        let mut event = String::new();
        let mut saw_field = false;
        loop {
            let mut l = String::new();
            if reader.read_line(&mut l).expect("frame line") == 0 {
                break 'frames;
            }
            let l = l.trim_end_matches('\n');
            if l.is_empty() {
                if saw_field {
                    break;
                }
                continue;
            }
            if let Some(rest) = l.strip_prefix("event: ") {
                event = rest.to_string();
                saw_field = true;
            } else if l.starts_with("id: ") || l.starts_with("data: ") {
                saw_field = true;
            }
        }
        if !event.is_empty() && !seen.contains(&event) {
            seen.push(event.clone());
        }
        let done = ["profiler_started", "profiler_stopped", "sampler_stall"]
            .iter()
            .all(|k| seen.iter().any(|s| s == k));
        if done {
            break;
        }
    }
    for kind in ["profiler_started", "profiler_stopped", "sampler_stall"] {
        assert!(
            seen.iter().any(|s| s == kind),
            "{kind} must stream over SSE; saw {seen:?}"
        );
    }
    drop(reader);
    drop(writer);

    server.shutdown();
}
