//! Integration: the MRT path must be observation-equivalent to the
//! in-memory path — `snapshot → MRT bytes → parse → detect` gives the
//! same conflicts as `snapshot → detect`, in both dump formats.

use moas_core::detect::detect;
use moas_lab::study::{Study, StudyConfig};
use moas_mrt::snapshot::{records_to_snapshot, snapshot_to_records, DumpFormat};
use moas_mrt::{MrtReader, MrtWriter};
use moas_routeviews::{BackgroundMode, Collector};

fn study() -> Study {
    Study::build(StudyConfig::test(0.01))
}

fn roundtrip_day(study: &Study, idx: usize, format: DumpFormat) {
    let mut collector = Collector::new(&study.world, &study.peers);
    let snap = collector.snapshot_at(idx, BackgroundMode::Full);
    let direct = detect(&snap);

    // Serialize to MRT bytes and back through the streaming reader.
    let records = snapshot_to_records(&snap, format);
    let mut writer = MrtWriter::new(Vec::new());
    writer.write_all(&records).unwrap();
    let bytes = writer.finish().unwrap();
    let mut reader = MrtReader::new(&bytes[..]);
    let parsed: Vec<_> = reader.by_ref().collect();
    assert_eq!(reader.stats().records_skipped, 0);
    let back = records_to_snapshot(&parsed, Some(snap.date)).unwrap();
    let via_mrt = detect(&back);

    assert_eq!(
        via_mrt.conflict_count(),
        direct.conflict_count(),
        "{format:?}"
    );
    assert_eq!(via_mrt.total_prefixes, direct.total_prefixes);
    assert_eq!(via_mrt.as_set_prefixes.len(), direct.as_set_prefixes.len());
    let a: Vec<_> = direct
        .conflicts
        .iter()
        .map(|c| (c.prefix, c.origins.clone()))
        .collect();
    let b: Vec<_> = via_mrt
        .conflicts
        .iter()
        .map(|c| (c.prefix, c.origins.clone()))
        .collect();
    assert_eq!(a, b, "conflict sets differ through {format:?}");
}

#[test]
fn v1_roundtrip_is_observation_equivalent() {
    let study = study();
    for idx in [0usize, 400, 900, 1278] {
        roundtrip_day(&study, idx, DumpFormat::V1);
    }
}

#[test]
fn v2_roundtrip_is_observation_equivalent() {
    let study = study();
    for idx in [0usize, 400, 900, 1278] {
        roundtrip_day(&study, idx, DumpFormat::V2);
    }
}

#[test]
fn v2_archives_are_smaller_than_v1() {
    let study = study();
    let mut collector = Collector::new(&study.world, &study.peers);
    let snap = collector.snapshot_at(800, BackgroundMode::Full);
    let size = |format| -> usize {
        snapshot_to_records(&snap, format)
            .iter()
            .map(|r| r.encode().len())
            .sum()
    };
    let v1 = size(DumpFormat::V1);
    let v2 = size(DumpFormat::V2);
    assert!(
        v2 < v1,
        "TABLE_DUMP_V2 should deduplicate peers: v1={v1} v2={v2}"
    );
}

#[test]
fn archive_files_survive_disk_roundtrip() {
    let study = study();
    let dir = std::env::temp_dir().join("moas-it-archive");
    std::fs::create_dir_all(&dir).unwrap();
    let mut collector = Collector::new(&study.world, &study.peers);

    let mut files = Vec::new();
    let mut dates = Vec::new();
    for (k, idx) in (500..510).enumerate() {
        let snap = collector.snapshot_at(idx, BackgroundMode::Sample(10));
        let records = snapshot_to_records(&snap, DumpFormat::V2);
        let path = dir.join(format!("it-rib.{k}.mrt"));
        let mut w = MrtWriter::new(std::fs::File::create(&path).unwrap());
        w.write_all(&records).unwrap();
        w.finish().unwrap();
        files.push((k, path));
        dates.push(snap.date);
    }
    let (tl, skipped) = moas_core::pipeline::analyze_mrt_archive(dates, 10, &files).unwrap();
    assert_eq!(skipped, 0);
    assert_eq!(tl.days().count(), 10);
    assert!(tl.total_conflicts() > 0);
    for (_, p) in files {
        std::fs::remove_file(p).ok();
    }
}
