//! End-to-end integration: world → collector → detection → statistics
//! must reproduce the paper's *shape* at reduced scale.

use moas_core::stats;
use moas_lab::study::{Study, StudyConfig};
use moas_net::Date;
use moas_routeviews::BackgroundMode;

/// One shared study for the whole file (build is the expensive part).
fn study() -> Study {
    Study::build(StudyConfig::test(0.02))
}

#[test]
fn headline_totals_scale_with_calibration() {
    let study = study();
    let tl = study.analyze(2);
    let summary = stats::duration_summary(&tl);
    let expect = study.config.params.calibration.grand_total() as f64;
    // Detection may miss a small number of conflicts whose origins
    // happen to agree at every vantage; it must never exceed truth.
    assert!(summary.total as f64 >= expect * 0.85, "{}", summary.total);
    assert!(summary.total as f64 <= expect * 1.01, "{}", summary.total);

    // One-timers dominate the histogram, as in the paper (13 730 of
    // 38 225 ≈ 36 %).
    let share = summary.one_timers as f64 / summary.total as f64;
    assert!((0.25..0.50).contains(&share), "one-timer share {share:.2}");
}

#[test]
fn duration_expectations_increase_with_filter() {
    let study = study();
    let tl = study.analyze(2);
    let rows = stats::fig4_expectations(&tl, &[0, 1, 9, 29, 89]);
    assert_eq!(rows.len(), 5);
    for pair in rows.windows(2) {
        assert!(
            pair[1].expectation > pair[0].expectation,
            "expectation ladder must increase: {pair:?}"
        );
        assert!(pair[1].count < pair[0].count);
    }
    // The shape of the paper's ladder: E[>0] ≈ 31, E[>89] ≈ 282 —
    // ratios hold even at reduced scale (durations are unscaled).
    let ratio = rows[4].expectation / rows[0].expectation;
    assert!(
        (5.0..15.0).contains(&ratio),
        "E[>89]/E[>0] = {ratio:.1}, paper ≈ 9.1"
    );
}

#[test]
fn yearly_medians_grow_every_year() {
    let study = study();
    let tl = study.analyze(2);
    let rows = stats::fig2_yearly_medians(&tl, &[1998, 1999, 2000, 2001]);
    assert_eq!(rows.len(), 4);
    for pair in rows.windows(2) {
        assert!(
            pair[1].median > pair[0].median,
            "medians must rise: {} vs {}",
            pair[0].median,
            pair[1].median
        );
    }
    // Growth into 2001 is the largest, as in the paper (36.1 %).
    let growths: Vec<f64> = rows.iter().filter_map(|r| r.growth_pct).collect();
    assert_eq!(growths.len(), 3);
    assert!(
        growths[2] >= growths[1] * 0.8,
        "2001 growth should be large: {growths:?}"
    );
}

#[test]
fn slash24_dominates_every_year() {
    let study = study();
    let tl = study.analyze(2);
    let by_year = stats::fig5_masklen_by_year(&tl, &[1998, 1999, 2000, 2001]);
    for (year, medians) in &by_year {
        let m24 = medians[24];
        for (len, m) in medians.iter().enumerate() {
            if len != 24 {
                assert!(
                    *m <= m24,
                    "{year}: /{len} median {m} exceeds /24 median {m24}"
                );
            }
        }
        assert!(m24 > 0.0, "{year}: no /24 conflicts at all");
    }
}

#[test]
fn distinct_paths_dominates_classification() {
    let study = study();
    let tl = study.analyze(2);
    let shares = stats::fig6_shares(&tl, Date::ymd(2001, 5, 15), Date::ymd(2001, 8, 15));
    assert!(
        shares.distinct > shares.split_view,
        "distinct {} vs splitview {}",
        shares.distinct,
        shares.split_view
    );
    assert!(
        shares.distinct > shares.orig_tran,
        "distinct {} vs origtran {}",
        shares.distinct,
        shares.orig_tran
    );
    assert!(shares.split_view > 0.0, "SplitView class never observed");
    assert!(shares.orig_tran > 0.0, "OrigTranAS class never observed");
}

#[test]
fn incident_days_are_the_two_peaks() {
    let study = study();
    let tl = study.analyze(2);
    let peaks = stats::fig1_peaks(&tl, 2);
    let dates: Vec<Date> = peaks.iter().map(|p| p.date).collect();
    assert!(
        dates.contains(&Date::ymd(1998, 4, 7)),
        "1998-04-07 must be a peak, got {dates:?}"
    );
    assert!(
        dates
            .iter()
            .any(|d| *d >= Date::ymd(2001, 4, 6) && *d <= Date::ymd(2001, 4, 10)),
        "April 2001 must be a peak, got {dates:?}"
    );
}

#[test]
fn detection_matches_ground_truth_on_sampled_days() {
    let study = study();
    // Avoid incident days (their counts are dominated by the scripted
    // faults which are also in the ground truth, but keep the check
    // simple on quiet days).
    for idx in (50..1_250).step_by(171) {
        let truth = study.world.active_at(idx).len();
        let obs = study.observe_day(idx, BackgroundMode::Sample(30));
        let got = obs.conflict_count();
        assert!(
            got <= truth,
            "day {idx}: detected {got} > truth {truth} (false positives!)"
        );
        assert!(
            got as f64 >= truth as f64 * 0.8,
            "day {idx}: detected {got} of {truth}"
        );
    }
}

#[test]
fn exchange_points_last_almost_the_whole_window() {
    let study = study();
    let tl = study.analyze(2);
    let report = moas_core::causes::exchange_point_report(&tl, &study.xp_prefixes());
    assert!(report.conflicted > 0);
    assert_eq!(
        report.long_lived, report.conflicted,
        "every conflicted XP prefix should be long-lived"
    );
    assert_eq!(report.max_duration, 1_246, "the pinned longest duration");
}

#[test]
fn as_set_routes_are_excluded_not_conflicts() {
    let study = study();
    let obs = study.observe_day(100, BackgroundMode::None);
    let planted = study.world.as_set_routes.len();
    assert_eq!(obs.as_set_prefixes.len(), planted);
    // None of the AS-set prefixes may appear among conflicts.
    for (p, _) in &obs.as_set_prefixes {
        assert!(obs.conflicts.iter().all(|c| c.prefix != *p));
    }
}

#[test]
fn vantage_visibility_shrinks_with_locality() {
    let study = study();
    let (full, counts) = study
        .vantage_experiment(Date::ymd(2001, 6, 15), &[2, 3])
        .unwrap();
    assert!(full > 0);
    for c in &counts {
        assert!(
            *c < full / 2,
            "an ISP vantage should see well under half the collector's conflicts ({c} vs {full})"
        );
    }
}
