//! The paper-scale calibration test: the full 1279-day, 38 225-conflict
//! reproduction, checked against every headline number of the paper.
//!
//! Takes ~1–2 minutes in release mode; run with:
//!
//! ```sh
//! cargo test --release --test paper_scale -- --ignored
//! ```

use moas_core::stats;
use moas_lab::study::{Study, StudyConfig};
use moas_net::{Asn, Date};
use moas_routeviews::BackgroundMode;

fn within(measured: f64, paper: f64, tolerance: f64) -> bool {
    (measured - paper).abs() <= paper * tolerance
}

#[test]
#[ignore = "paper-scale run (~1-2 min in release); see EXPERIMENTS.md"]
fn full_scale_reproduction() {
    let study = Study::build(StudyConfig::paper());
    let tl = study.analyze(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2),
    );

    // §IV-A: totals.
    let summary = stats::duration_summary(&tl);
    assert!(
        within(summary.total as f64, 38_225.0, 0.02),
        "total conflicts {}",
        summary.total
    );
    assert!(
        within(summary.one_timers as f64, 13_730.0, 0.02),
        "one-timers {}",
        summary.one_timers
    );

    // Fig. 2: yearly medians.
    let medians = stats::fig2_yearly_medians(&tl, &[1998, 1999, 2000, 2001]);
    let paper_medians = [683.0, 810.5, 951.0, 1_294.0];
    for (row, paper) in medians.iter().zip(paper_medians) {
        assert!(
            within(row.median, paper, 0.05),
            "{}: median {} vs paper {paper}",
            row.year,
            row.median
        );
    }

    // Fig. 4: the expectation ladder.
    let ladder = stats::fig4_expectations(&tl, &[0, 1, 9, 29, 89]);
    let paper_ladder = [30.9, 47.7, 107.5, 175.3, 281.8];
    for (row, paper) in ladder.iter().zip(paper_ladder) {
        assert!(
            within(row.expectation, paper, 0.05),
            ">{}: E {} vs paper {paper}",
            row.longer_than,
            row.expectation
        );
    }
    assert!(
        within(ladder[2].count as f64, 10_177.0, 0.03),
        ">9 days count {}",
        ladder[2].count
    );

    // §IV-B extras.
    assert!(
        within(summary.over_300 as f64, 1_002.0, 0.05),
        ">300 days {}",
        summary.over_300
    );
    assert_eq!(summary.longest, 1_246, "longest duration");
    assert!(
        within(summary.ongoing as f64, 1_326.0, 0.10),
        "ongoing {}",
        summary.ongoing
    );

    // Fig. 1 peaks (the two incidents).
    let peaks = stats::fig1_peaks(&tl, 2);
    let peak_dates: Vec<Date> = peaks.iter().map(|p| p.date).collect();
    assert!(peak_dates.contains(&Date::ymd(1998, 4, 7)));
    let p98 = peaks
        .iter()
        .find(|p| p.date == Date::ymd(1998, 4, 7))
        .unwrap();
    assert!(
        within(p98.conflicts as f64, 11_842.0, 0.05),
        "1998 peak {}",
        p98.conflicts
    );

    // §VI-E involvement.
    let obs98 = study
        .observe_date(Date::ymd(1998, 4, 7), BackgroundMode::None)
        .unwrap();
    let inv = moas_core::causes::involvement_by_origin(&obs98);
    let c8584 = inv.get(&Asn::new(8584)).copied().unwrap_or(0);
    assert!(
        within(c8584 as f64, 11_357.0, 0.05),
        "AS 8584 involvement {c8584}"
    );

    let obs01 = study
        .observe_date(Date::ymd(2001, 4, 10), BackgroundMode::None)
        .unwrap();
    let pairs = moas_core::causes::involvement_by_tail_pair(&obs01);
    let pair = pairs
        .get(&(Asn::new(3561), Asn::new(15412)))
        .copied()
        .unwrap_or(0);
    assert!(
        within(pair as f64, 5_532.0, 0.08),
        "(3561,15412) involvement {pair}"
    );

    // Fig. 5: /24 dominance.
    let by_year = stats::fig5_masklen_by_year(&tl, &[2001]);
    let m2001 = &by_year[&2001];
    assert!(
        within(m2001[24], 750.0, 0.25),
        "/24 median in 2001: {} (paper figure ≈ 700–800)",
        m2001[24]
    );

    // Fig. 6: class dominance.
    let shares = stats::fig6_shares(&tl, Date::ymd(2001, 5, 15), Date::ymd(2001, 8, 15));
    assert!(shares.distinct > shares.split_view + shares.orig_tran);

    // §VI-A: exchange points.
    let xp = moas_core::causes::exchange_point_report(&tl, &study.xp_prefixes());
    assert_eq!(xp.conflicted, 30, "30 exchange-point prefixes");
    assert_eq!(xp.long_lived, 30, "all long-lived");
}
