//! Acceptance for replicated read-only serving: N `moas-serve`
//! replicas over one manifest-rooted store, written by a single
//! `FeedFollower`.
//!
//! * **Wire equivalence under live ingest:** while the follower
//!   ingests and epochs advance, two `HistoryService::open_read_only`
//!   replicas answer every `/v1` data route byte-identically to the
//!   writer's own server — bodies and `ETag`s — at each refreshed
//!   epoch.
//! * **Read-only means read-only:** the writer is quiesced, the store
//!   directory is snapshotted (file name → size), and a full replica
//!   lifecycle (open, refresh, serve, close, reopen) leaves the
//!   snapshot untouched; writer-only methods answer
//!   `PermissionDenied`.
//! * **Staleness surfaces:** a replica left behind by writer epoch
//!   swaps trips its `/readyz` (503 `not_ready`) under a zero lag
//!   budget, recovers after `refresh_now`, and `/v1/stats` reports
//!   the replica role and lag throughout.
//! * **Kill and reopen converges:** a closed replica reopened over
//!   the same store republishes the writer's current epoch without a
//!   single write.

use moas_feed::{FeedConfig, FeedFollower};
use moas_history::{HistoryService, RetentionPolicy, ServiceConfig, ServiceRole};
use moas_lab::study::{Study, StudyConfig};
use moas_monitor::{MonitorConfig, MonitorEvent, SeqEvent};
use moas_net::Date;
use moas_routeviews::{BackgroundMode, Collector, SimFeed};
use moas_serve::{QueryServer, QueryService, ServerConfig};
use serde::Value;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const DAYS: usize = 8;
const SHARDS: usize = 2;
const BACKGROUND: BackgroundMode = BackgroundMode::Sample(15);

fn fresh(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("moas-server-replica-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn service_config(start: Date) -> ServiceConfig {
    ServiceConfig {
        start_date: start,
        retention: RetentionPolicy::keep_everything(),
        watermark_segments: 100,
        daemon: false,
        ..ServiceConfig::default()
    }
}

/// One-shot GET returning status, headers, and body.
fn get_full(addr: SocketAddr, target: &str) -> (u16, Vec<(String, String)>, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    writer
        .write_all(
            format!("GET {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read status line");
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("read header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().expect("content-length");
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    (status, headers, String::from_utf8(body).expect("utf8 body"))
}

fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn parse(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("unparseable JSON ({e}): {body}"))
}

fn u(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 field {key:?} in {v:?}"))
}

/// Every address must answer `target` with the same 200 bytes and the
/// same `ETag`. Returns the shared body.
fn assert_identical(addrs: &[SocketAddr], target: &str) -> String {
    let (status, headers, body) = get_full(addrs[0], target);
    assert_eq!(status, 200, "{target} failed on writer: {body}");
    let etag = header(&headers, "etag")
        .unwrap_or_else(|| panic!("{target}: cacheable 200 must carry an etag"))
        .to_string();
    for &addr in &addrs[1..] {
        let (status, headers, replica_body) = get_full(addr, target);
        assert_eq!(status, 200, "{target} failed on replica: {replica_body}");
        assert_eq!(
            replica_body, body,
            "{target}: replica bytes diverged from the writer"
        );
        assert_eq!(
            header(&headers, "etag"),
            Some(etag.as_str()),
            "{target}: replica etag diverged from the writer"
        );
    }
    body
}

/// The store directory as seen by a nosy auditor: file name → size.
fn dir_snapshot(dir: &Path) -> BTreeMap<String, u64> {
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read store dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        let len = entry.metadata().expect("metadata").len();
        files.insert(name, len);
    }
    files
}

fn bind_replica(
    service: &HistoryService,
    start: Date,
) -> (Arc<QueryService>, QueryServer, SocketAddr) {
    let query = Arc::new(
        QueryService::new(
            service.reader(),
            ServerConfig {
                start_date: start,
                // Any lag at all must trip /readyz in this test.
                ready_max_replica_lag_epochs: 0,
                ..ServerConfig::default()
            },
        )
        .with_role(service.role_handle()),
    );
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind replica");
    let addr = server.local_addr();
    (query, server, addr)
}

#[test]
fn replicas_serve_byte_identical_under_live_ingest() {
    let study = Study::build(StudyConfig::test(0.004));
    let dates: Vec<Date> = study.world.window.all_days()[..DAYS]
        .iter()
        .map(|d| d.date())
        .collect();

    let archive = fresh("archive");
    let mut collector = Collector::new(&study.world, &study.peers);
    let mut feed =
        SimFeed::new(&mut collector, &archive, 0, DAYS, BACKGROUND).expect("open sim feed");

    // One writer ingesting via the feed follower; swaps happen
    // synchronously on this thread (daemon: false), so after each
    // poll the manifest on disk IS the writer's published epoch.
    let store = fresh("store");
    let service = Arc::new(HistoryService::open(&store, service_config(dates[0])).unwrap());
    assert_eq!(service.role(), ServiceRole::Writer);
    let mut follower = FeedFollower::open(
        FeedConfig {
            monitor: MonitorConfig::with_shards(SHARDS),
            checkpoint_bytes: 1 << 16,
            ..FeedConfig::new(&archive, dates[0])
        },
        Arc::clone(&service),
    )
    .expect("open follower");

    let writer_query = Arc::new(
        QueryService::new(
            service.reader(),
            ServerConfig {
                start_date: dates[0],
                ..ServerConfig::default()
            },
        )
        .with_role(service.role_handle()),
    );
    let writer_server =
        QueryServer::bind("127.0.0.1:0", Arc::clone(&writer_query)).expect("bind writer");
    let writer_addr = writer_server.local_addr();

    // Two read-only replicas over the same store, refreshed by hand
    // (daemon: false) so every comparison is at a known epoch.
    let replica_a =
        HistoryService::open_read_only(&store, service_config(dates[0])).expect("open replica a");
    let replica_b =
        HistoryService::open_read_only(&store, service_config(dates[0])).expect("open replica b");
    assert_eq!(replica_a.role(), ServiceRole::Replica);
    let (_query_a, server_a, addr_a) = bind_replica(&replica_a, dates[0]);
    let (_query_b, server_b, addr_b) = bind_replica(&replica_b, dates[0]);
    let addrs = [writer_addr, addr_a, addr_b];

    // Phase 1: live ingest, one collector day at a time. After the
    // follower drains each arrival, every epoch the writer swapped is
    // refreshed into both replicas and the wire answers must match.
    let reader = service.reader();
    let mut compared_epochs = 0u64;
    let mut last_epoch = reader.epoch();
    while let Some(_day) = feed.append_day().expect("append sim day") {
        for _ in 0..10_000 {
            if follower.poll_once().expect("poll").caught_up {
                break;
            }
        }
        let epoch = reader.epoch();
        if epoch != last_epoch {
            last_epoch = epoch;
            replica_a.refresh_now().expect("refresh a");
            replica_b.refresh_now().expect("refresh b");
            assert_identical(&addrs, "/v1/validity?limit=5");
            assert_identical(&addrs, "/v1/timeline?days=3");
            compared_epochs += 1;
        }
    }
    for _ in 0..10_000 {
        if follower.poll_once().expect("poll").caught_up {
            break;
        }
    }
    follower.finalize().expect("finalize");
    assert!(
        compared_epochs >= 3,
        "ingest must swap (and replicas track) several epochs, saw {compared_epochs}"
    );

    // Phase 2: settled. Full battery byte-identical across all three
    // servers, including a paginated page.
    replica_a.refresh_now().expect("refresh a");
    replica_b.refresh_now().expect("refresh b");
    let snap = service.reader().snapshot();
    let some_prefix = *snap
        .conflicts()
        .records()
        .keys()
        .next()
        .expect("window must contain conflicts");
    let battery = [
        "/v1/validity?limit=10000".to_string(),
        "/v1/validity?threshold_days=3&affinity_min=2&min_duration=60".to_string(),
        format!("/v1/conflicts?date={}", dates[2]),
        format!("/v1/conflicts?date={}&limit=3", dates[2]),
        format!("/v1/prefix/{some_prefix}"),
        format!("/v1/timeline?days={DAYS}"),
    ];
    for target in &battery {
        assert_identical(&addrs, target);
    }

    // A cursor minted by the writer pages identically on a replica.
    let page = parse(&assert_identical(
        &addrs,
        &format!("/v1/conflicts?date={}&limit=3", dates[2]),
    ));
    if let Some(cursor) = page.get("next_cursor").and_then(Value::as_str) {
        assert_identical(
            &addrs,
            &format!("/v1/conflicts?date={}&limit=3&cursor={cursor}", dates[2]),
        );
    }

    // /v1/stats reports the role split: same store-level numbers,
    // writer vs replica role block.
    let writer_stats = parse(&get_full(writer_addr, "/v1/stats").2);
    let replica_stats = parse(&get_full(addr_a, "/v1/stats").2);
    for key in [
        "epoch",
        "horizon_day",
        "last_event_at",
        "events_replayed",
        "records",
        "open_conflicts",
        "truncated_prefixes",
        "affinity_pairs",
        "tail_events",
    ] {
        assert_eq!(
            u(&writer_stats, key),
            u(&replica_stats, key),
            "stats field {key:?} diverged between writer and replica"
        );
    }
    let writer_store = writer_stats.get("store").expect("writer store counters");
    let replica_store = replica_stats.get("store").expect("replica store counters");
    for key in [
        "segments_written",
        "segments_expired",
        "tables_written",
        "retained_bytes",
        "lifetime_bytes",
        "bytes_expired",
        "events_appended",
    ] {
        assert_eq!(
            u(writer_store, key),
            u(replica_store, key),
            "store counter {key:?} diverged between writer and replica"
        );
    }
    let writer_role = writer_stats.get("role").expect("writer role block");
    assert_eq!(
        writer_role.get("mode").and_then(Value::as_str),
        Some("writer")
    );
    let replica_role = replica_stats.get("role").expect("replica role block");
    assert_eq!(
        replica_role.get("mode").and_then(Value::as_str),
        Some("replica")
    );
    assert_eq!(u(replica_role, "epoch_lag"), 0);
    assert_eq!(
        u(replica_role, "published_epoch"),
        u(&writer_stats, "epoch")
    );

    // Phase 3: staleness. The writer swaps more epochs; the replicas,
    // not yet refreshed, keep serving the old epoch and trip their
    // zero-budget /readyz until refreshed.
    let (status, _, _) = get_full(addr_a, "/readyz");
    assert_eq!(status, 200, "refreshed replica must be ready");
    let stale_epoch = replica_a.reader().epoch();
    let stray = SeqEvent {
        shard: 0,
        seq: u64::MAX,
        event: MonitorEvent::ConflictClosed {
            prefix: "203.0.113.0/24".parse().expect("prefix"),
            opened_at: 0,
            at: 1,
        },
    };
    service.append(&[stray]).expect("append stray event");
    service.mark_day(DAYS).expect("mark day");
    assert!(
        service.reader().epoch() > stale_epoch,
        "day mark must advance the writer epoch"
    );
    assert_eq!(
        replica_a.reader().epoch(),
        stale_epoch,
        "unrefreshed replica must keep serving its pinned epoch"
    );
    assert!(replica_a.role_handle().epoch_lag() > 0);
    let (status, _, body) = get_full(addr_a, "/readyz");
    assert_eq!(status, 503, "stale replica must answer 503: {body}");
    let err = parse(&body);
    let env = err.get("error").expect("error envelope");
    assert_eq!(env.get("code").and_then(Value::as_str), Some("not_ready"));
    assert!(
        env.get("message")
            .and_then(Value::as_str)
            .is_some_and(|m| m.contains("replica epoch lag")),
        "message must name the replica lag: {body}"
    );
    let (status, _, _) = get_full(writer_addr, "/readyz");
    assert_eq!(status, 200, "the writer is never replica-stale");

    assert!(replica_a.refresh_now().expect("refresh a"));
    assert!(replica_b.refresh_now().expect("refresh b"));
    assert_eq!(replica_a.role_handle().epoch_lag(), 0);
    let (status, _, _) = get_full(addr_a, "/readyz");
    assert_eq!(status, 200, "refreshed replica must be ready again");
    for target in &battery {
        assert_identical(&addrs, target);
    }

    // Phase 4: writer-only methods are rejected on a replica.
    let probe = SeqEvent {
        shard: 0,
        seq: u64::MAX,
        event: MonitorEvent::ConflictClosed {
            prefix: "192.0.2.0/24".parse().expect("prefix"),
            opened_at: 0,
            at: 1,
        },
    };
    for (what, result) in [
        ("append", replica_a.append(&[probe]).map(|_| ())),
        ("checkpoint", replica_a.checkpoint().map(|_| ())),
        ("mark_day", replica_a.mark_day(DAYS).map(|_| ())),
        ("maintain_now", replica_a.maintain_now().map(|_| ())),
    ] {
        let err = result.expect_err("replica must refuse writer methods");
        assert_eq!(
            err.kind(),
            std::io::ErrorKind::PermissionDenied,
            "{what} on a replica must be PermissionDenied"
        );
    }

    // Phase 5: kill and reopen. With the writer quiesced, snapshot the
    // store directory, run a full replica lifecycle — close, reopen,
    // serve the battery, close again — and the directory must not
    // change by a single byte.
    let writer_epoch = service.reader().epoch();
    let before = dir_snapshot(&store);
    server_b.shutdown();
    replica_b.close().expect("close replica b");

    let reopened =
        HistoryService::open_read_only(&store, service_config(dates[0])).expect("reopen replica b");
    assert_eq!(
        reopened.reader().epoch(),
        writer_epoch,
        "a reopened replica must converge to the writer's current epoch"
    );
    let (_query_b2, server_b2, addr_b2) = bind_replica(&reopened, dates[0]);
    for target in &battery {
        assert_identical(&[writer_addr, addr_a, addr_b2], target);
    }
    server_b2.shutdown();
    reopened.close().expect("close reopened replica");

    let after = dir_snapshot(&store);
    assert_eq!(
        before, after,
        "replica lifecycle must not write to the store directory"
    );

    // Teardown.
    writer_server.shutdown();
    server_a.shutdown();
    replica_a.close().expect("close replica a");
    let (_cursor, _report) = follower.shutdown().expect("shutdown follower");
    drop(writer_query);
    Arc::try_unwrap(service)
        .ok()
        .expect("sole service handle")
        .close()
        .unwrap();
    std::fs::remove_dir_all(&archive).ok();
    std::fs::remove_dir_all(&store).ok();
}

/// A replica opened before the store exists publishes the empty epoch,
/// never creates the directory, and converges once a writer appears.
#[test]
fn replica_opened_before_writer_converges_without_creating_store() {
    let start = Date::ymd(2024, 1, 1);
    let store = fresh("early-store");

    let replica =
        HistoryService::open_read_only(&store, service_config(start)).expect("open early replica");
    assert_eq!(replica.role(), ServiceRole::Replica);
    assert_eq!(replica.reader().epoch(), 0);
    assert!(
        !store.exists(),
        "a replica must not create the store directory"
    );

    let writer = HistoryService::open(&store, service_config(start)).expect("open writer");
    let stray = SeqEvent {
        shard: 0,
        seq: 1,
        event: MonitorEvent::ConflictClosed {
            prefix: "198.51.100.0/24".parse().expect("prefix"),
            opened_at: 0,
            at: 1,
        },
    };
    writer.append(&[stray]).expect("append");
    writer.mark_day(1).expect("mark day");
    let writer_epoch = writer.reader().epoch();
    assert!(writer_epoch > 0);

    assert!(replica.refresh_now().expect("refresh"));
    assert_eq!(replica.reader().epoch(), writer_epoch);
    assert_eq!(
        replica.stats().events_appended,
        writer.stats().events_appended,
        "replica stats must mirror the writer's"
    );

    replica.close().expect("close replica");
    writer.close().expect("close writer");
    std::fs::remove_dir_all(&store).ok();
}
