//! Property tests for the conflict-history store.
//!
//! (1) Random open/close/flap event sequences round-trip through the
//!     segmented log (append → rotate → scan) byte-exactly, and their
//!     compaction into [`ConflictRecord`]s yields per-prefix day
//!     durations identical to
//!     [`moas_monitor::fold_events_into_timeline`] — the same fold the
//!     monitor/batch equivalence tests anchor on.
//!
//! (2) Corrupting a random byte inside a random segment's frames is
//!     *recovered from*: the scan skips exactly that segment, reports
//!     it, keeps every other segment's events, and never panics.

use moas_history::{ConflictStore, HistoryStore};
use moas_monitor::{fold_events_into_timeline, MonitorEvent, SeqEvent};
use moas_net::{Asn, Date, Prefix};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const WINDOW_DAYS: usize = 14;

fn dates() -> Vec<Date> {
    (0..WINDOW_DAYS as i64)
        .map(|i| Date::ymd(1970, 1, 1).plus_days(i))
        .collect()
}

fn unique_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "moas-history-prop-{tag}-{}-{n}",
        std::process::id()
    ))
}

/// One conflict's scripted life: a prefix, an origin pair, and a list
/// of (open offset, optional close offset, flaps) episodes.
#[derive(Debug, Clone)]
struct Script {
    prefix_octet: u8,
    episodes: Vec<(u32, Option<u32>, u8)>,
}

fn arb_script() -> impl Strategy<Value = Script> {
    let episode = (
        0u32..(WINDOW_DAYS as u32 + 2) * 86_400,
        prop::option::of(0u32..5 * 86_400),
        0u8..3,
    );
    (any::<u8>(), prop::collection::vec(episode, 1..4)).prop_map(|(prefix_octet, mut eps)| {
        // Episodes are laid out in time order, non-overlapping: each
        // opens after the previous closed. Only the last may stay open.
        eps.sort_by_key(|(open, _, _)| *open);
        let mut cursor = 0u32;
        let mut episodes = Vec::new();
        for (i, (open, close, flaps)) in eps.iter().enumerate() {
            let open_at = cursor.max(*open);
            let last = i == eps.len() - 1;
            let close_at = if last && close.is_none() {
                None
            } else {
                Some(open_at + 1 + close.unwrap_or(3_600))
            };
            cursor = close_at.map_or(u32::MAX, |c| c + 1);
            episodes.push((open_at, close_at, *flaps));
            if close_at.is_none() {
                break;
            }
        }
        Script {
            prefix_octet,
            episodes,
        }
    })
}

/// Renders scripts into a well-formed per-prefix event log (timestamps
/// non-decreasing per prefix, as a causally ordered drain produces).
fn events_from_scripts(scripts: &[Script]) -> Vec<SeqEvent> {
    let mut events = Vec::new();
    let mut seq = 0u64;
    for (i, script) in scripts.iter().enumerate() {
        // Distinct prefix per script even when octets collide.
        let prefix: Prefix = format!("10.{}.{}.0/24", i, script.prefix_octet)
            .parse()
            .unwrap();
        let a = Asn::new(100 + i as u32);
        let b = Asn::new(200 + i as u32);
        let c = Asn::new(300 + i as u32);
        for (open_at, close_at, flaps) in &script.episodes {
            let mut push = |event: MonitorEvent| {
                events.push(SeqEvent {
                    shard: i % 3,
                    seq: {
                        seq += 1;
                        seq
                    },
                    event,
                });
            };
            push(MonitorEvent::ConflictOpened {
                prefix,
                origins: vec![a, b],
                at: *open_at,
            });
            let span = close_at.map_or(3_600, |cl| cl.saturating_sub(*open_at));
            for f in 0..*flaps {
                let at = open_at + 1 + (f as u32) % span.max(1);
                push(MonitorEvent::OriginAdded {
                    prefix,
                    origin: c,
                    at,
                });
                push(MonitorEvent::OriginWithdrawn {
                    prefix,
                    origin: c,
                    at,
                });
            }
            if let Some(cl) = close_at {
                push(MonitorEvent::ConflictClosed {
                    prefix,
                    opened_at: *open_at,
                    at: *cl,
                });
            }
        }
    }
    events
}

proptest! {
    #[test]
    fn log_compaction_matches_timeline_fold(
        scripts in prop::collection::vec(arb_script(), 1..8),
        rotate_every in 1usize..10,
    ) {
        let events = events_from_scripts(&scripts);
        let dates = dates();

        // Through the on-disk log, rotating every few appends.
        let dir = unique_dir("fold");
        let mut store = HistoryStore::open(&dir).unwrap();
        for (k, chunk) in events.chunks(rotate_every.max(1)).enumerate() {
            store.append(chunk).unwrap();
            if k % 2 == 0 {
                store.mark_day(k % WINDOW_DAYS).unwrap();
            }
        }
        store.seal().unwrap();

        let scan = store.scan().unwrap();
        prop_assert!(scan.corrupt.is_empty());
        prop_assert_eq!(scan.events.len(), events.len());

        // The reference fold over the raw (in-memory) events.
        let tl = fold_events_into_timeline(&events, &dates, WINDOW_DAYS);

        // Compaction from the scanned log: per-prefix durations match
        // the fold's Timeline exactly.
        let (conflicts, _) = store.compact().unwrap();
        prop_assert_eq!(
            conflicts.total_conflicts(&dates, WINDOW_DAYS),
            tl.total_conflicts()
        );
        let mut got = conflicts.durations(&dates, WINDOW_DAYS);
        let mut want = tl.durations();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // And per prefix, not just in aggregate.
        let cuts = ConflictStore::cuts(&dates);
        for (prefix, rec) in tl.prefixes() {
            if rec.core_days == 0 {
                continue;
            }
            let stored = &conflicts.records()[prefix];
            prop_assert_eq!(
                stored.days_at_cuts(&cuts),
                rec.core_days,
                "prefix {}",
                prefix
            );
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_segment_is_skipped_and_reported(
        scripts in prop::collection::vec(arb_script(), 2..6),
        victim_pick in any::<u16>(),
        byte_pick in any::<u16>(),
        flip in 1u8..=255,
    ) {
        let events = events_from_scripts(&scripts);
        let dir = unique_dir("crc");
        let mut store = HistoryStore::open(&dir).unwrap();
        // Split the log across several segments on disk.
        for (day, chunk) in events.chunks(events.len().div_ceil(3).max(1)).enumerate() {
            store.append(chunk).unwrap();
            store.mark_day(day).unwrap();
        }
        store.seal().unwrap();

        let segments = store.segments().unwrap();
        prop_assert!(!segments.is_empty());
        let victim = &segments[victim_pick as usize % segments.len()];
        let mut bytes = std::fs::read(victim).unwrap();
        // Flip one byte strictly inside the frame region.
        let lo = 16usize;
        let hi = bytes.len() - 16;
        prop_assert!(hi > lo, "segment has frames");
        let pos = lo + (byte_pick as usize) % (hi - lo);
        bytes[pos] ^= flip;
        std::fs::write(victim, &bytes).unwrap();

        // Never a panic: the bad segment is skipped and reported, the
        // others' events survive intact.
        let scan = store.scan().unwrap();
        prop_assert_eq!(scan.corrupt.len(), 1);
        prop_assert_eq!(&scan.corrupt[0].0, victim);
        prop_assert_eq!(scan.segments_ok, segments.len() - 1);
        let surviving: Vec<&SeqEvent> = events
            .iter()
            .filter(|e| scan.events.contains(e))
            .collect();
        prop_assert_eq!(surviving.len(), scan.events.len());
        prop_assert!(scan.events.len() < events.len());

        // Compaction over the partial log still works (no panic).
        let (conflicts, scan2) = store.compact().unwrap();
        prop_assert_eq!(scan2.corrupt.len(), 1);
        prop_assert_eq!(conflicts.events_replayed, scan.events.len() as u64);

        std::fs::remove_dir_all(&dir).ok();
    }
}
