//! Integration: the subMOAS extension against ground truth — faulty
//! aggregates planted by the simulator shadow *innocent neighbor*
//! prefixes inside the aggregate, discoverable by the covering-prefix
//! analysis while remaining invisible to exact-prefix MOAS detection.

use moas_core::submoas::detect_submoas;
use moas_lab::study::{Study, StudyConfig};
use moas_net::{Ipv4Prefix, Prefix};
use moas_routeviews::{BackgroundMode, Collector};
use std::collections::HashSet;

fn study() -> Study {
    Study::build(StudyConfig::test(0.05))
}

/// A day with at least one active faulty aggregate that covers at
/// least one other alive prefix (so a shadowing victim exists).
fn aggregate_day(study: &Study) -> (usize, Vec<Ipv4Prefix>) {
    for idx in (10..1_250).step_by(13) {
        let day = study.world.window.day_at(idx);
        let aggregates: Vec<Ipv4Prefix> = study
            .world
            .conflicts
            .iter()
            .filter(|c| c.active.is_active(idx as u32))
            .filter_map(|c| c.aggregate)
            .collect();
        if aggregates.is_empty() {
            continue;
        }
        let victims = study
            .world
            .plan
            .alive_at(day)
            .iter()
            .filter(|a| aggregates.iter().any(|agg| agg.contains(&a.prefix)))
            .count();
        if victims > 0 {
            return (idx, aggregates);
        }
    }
    panic!("no shadowing aggregate day at this scale");
}

#[test]
fn shadowed_neighbors_are_found() {
    let study = study();
    let (idx, aggregates) = aggregate_day(&study);
    let mut collector = Collector::new(&study.world, &study.peers);
    let snap = collector.snapshot_at(idx, BackgroundMode::CoveredByAggregates);
    let report = detect_submoas(&snap);
    assert!(
        !report.pairs.is_empty(),
        "day {idx}: no subMOAS pairs despite active aggregates"
    );
    let planted: HashSet<Ipv4Prefix> = aggregates.into_iter().collect();
    for p in &report.pairs {
        assert!(
            planted.contains(&p.covering),
            "unexpected covering prefix {}",
            p.covering
        );
        // Victims' origins never include the faulty aggregator.
        assert!(p
            .covering_origins
            .iter()
            .all(|o| !p.specific_origins.contains(o)));
    }
}

#[test]
fn own_victim_is_a_consistent_cover_not_a_pair() {
    // The conflicted prefix itself shares the faulty origin with the
    // aggregate (the faulty AS announces both), so it must be counted
    // as a consistent cover, not a subMOAS pair.
    let study = study();
    let (idx, _) = aggregate_day(&study);
    let mut collector = Collector::new(&study.world, &study.peers);
    let snap = collector.snapshot_at(idx, BackgroundMode::None);
    let report = detect_submoas(&snap);
    assert!(report.pairs.is_empty());
    assert!(report.consistent_covers > 0);
}

#[test]
fn exact_match_detection_cannot_see_the_aggregate() {
    let study = study();
    let (idx, aggregates) = aggregate_day(&study);
    let mut collector = Collector::new(&study.world, &study.peers);
    let snap = collector.snapshot_at(idx, BackgroundMode::CoveredByAggregates);
    let obs = moas_core::detect(&snap);
    let conflicted: HashSet<Prefix> = obs.conflicts.iter().map(|c| c.prefix).collect();
    for agg in aggregates {
        assert!(
            !conflicted.contains(&Prefix::V4(agg)),
            "aggregate {agg} wrongly flagged as exact-prefix MOAS"
        );
    }
}

#[test]
fn quiet_tables_have_no_submoas() {
    // A snapshot restricted to background only (no conflicts, no
    // aggregates) must produce zero pairs: the allocator's pools are
    // nested-free by construction.
    let study = Study::build(StudyConfig::test(0.01));
    let idx = (10..1_200)
        .find(|&idx| {
            study
                .world
                .conflicts
                .iter()
                .all(|c| c.aggregate.is_none() || !c.active.is_active(idx as u32))
        })
        .expect("quiet day exists");
    let mut collector = Collector::new(&study.world, &study.peers);
    let snap = collector.snapshot_at(idx, BackgroundMode::Full);
    let report = detect_submoas(&snap);
    assert!(
        report.pairs.is_empty(),
        "unexpected pairs on quiet day {idx}: {:?}",
        report.pairs.first()
    );
}
