//! Integration: `day N snapshot + synthesized update stream = day N+1
//! snapshot`, through real BGP4MP wire bytes — the strongest
//! correctness check on the UPDATE path (message encoding, attribute
//! round-trip, RIB semantics) all at once.

use moas_core::replay::StreamReplayer;
use moas_lab::study::{Study, StudyConfig};
use moas_mrt::{MrtReader, MrtRecord, MrtWriter};
use moas_net::Prefix;
use moas_routeviews::updates::day_transition;
use moas_routeviews::{BackgroundMode, Collector};
use std::collections::BTreeSet;

fn study() -> Study {
    Study::build(StudyConfig::test(0.01))
}

/// Canonical comparable form of a table: sorted (peer AS, prefix, path).
fn table_key(snap: &moas_bgp::TableSnapshot) -> BTreeSet<String> {
    snap.entries
        .iter()
        .map(|e| {
            let p = &snap.peers[e.peer_idx as usize];
            format!("{}|{}|{}|{}", p.addr, p.asn, e.route.prefix, e.route.path)
        })
        .collect()
}

#[test]
fn replayed_stream_reconstructs_next_day() {
    let study = study();
    let mut collector = Collector::new(&study.world, &study.peers);
    // Day pairs crossing interesting territory: quiet days, the 1998
    // incident onset and its clearing.
    let incident = study
        .world
        .window
        .snapshot_index(moas_net::Date::ymd(1998, 4, 7).day_index())
        .unwrap();
    for (a, b) in [
        (300, 301),
        (incident - 1, incident),
        (incident, incident + 1),
    ] {
        let (prev, next, stream) = day_transition(&mut collector, a, b, BackgroundMode::Sample(25));
        let mut replayer = StreamReplayer::new();
        replayer.seed(&prev);
        replayer.apply_all(&stream);
        let rebuilt = replayer.table(next.date);
        assert_eq!(
            table_key(&rebuilt),
            table_key(&next),
            "transition {a}→{b} diverged"
        );
        assert_eq!(replayer.stats().spurious_withdrawals, 0);
    }
}

#[test]
fn replay_detection_equals_snapshot_detection() {
    let study = study();
    let mut collector = Collector::new(&study.world, &study.peers);
    let (prev, next, stream) = day_transition(&mut collector, 700, 701, BackgroundMode::None);
    let mut replayer = StreamReplayer::new();
    replayer.seed(&prev);
    replayer.apply_all(&stream);
    let via_replay = replayer.detect_now(next.date);
    let direct = moas_core::detect(&next);
    assert_eq!(via_replay.conflict_count(), direct.conflict_count());
    let a: BTreeSet<Prefix> = via_replay.conflicts.iter().map(|c| c.prefix).collect();
    let b: BTreeSet<Prefix> = direct.conflicts.iter().map(|c| c.prefix).collect();
    assert_eq!(a, b);
}

#[test]
fn update_stream_survives_disk_roundtrip() {
    let study = study();
    let mut collector = Collector::new(&study.world, &study.peers);
    let (prev, next, stream) = day_transition(&mut collector, 500, 501, BackgroundMode::Sample(10));

    // Through MRT bytes on the wire.
    let mut w = MrtWriter::new(Vec::new());
    w.write_all(&stream).unwrap();
    let bytes = w.finish().unwrap();
    let mut reader = MrtReader::new(&bytes[..]);
    let parsed: Vec<MrtRecord> = reader.by_ref().collect();
    assert_eq!(parsed.len(), stream.len());
    assert_eq!(reader.stats().records_skipped, 0);

    let mut replayer = StreamReplayer::new();
    replayer.seed(&prev);
    replayer.apply_all(&parsed);
    assert_eq!(table_key(&replayer.table(next.date)), table_key(&next));
}

#[test]
fn incident_onset_produces_announcement_burst() {
    let study = study();
    let mut collector = Collector::new(&study.world, &study.peers);
    let incident = study
        .world
        .window
        .snapshot_index(moas_net::Date::ymd(1998, 4, 7).day_index())
        .unwrap();
    let quiet = day_transition(&mut collector, 300, 301, BackgroundMode::None).2;
    let burst = day_transition(&mut collector, incident - 1, incident, BackgroundMode::None).2;
    let count_announced = |stream: &[MrtRecord]| -> usize {
        stream
            .iter()
            .filter_map(|r| match &r.body {
                moas_mrt::record::MrtBody::Bgp4mpMessage(m) => match &m.message {
                    moas_bgp::message::BgpMessage::Update(u) => Some(u.announced.len()),
                    _ => None,
                },
                _ => None,
            })
            .sum()
    };
    let quiet_n = count_announced(&quiet);
    let burst_n = count_announced(&burst);
    assert!(
        burst_n > quiet_n * 5,
        "incident onset should dominate: quiet {quiet_n}, burst {burst_n}"
    );
}
