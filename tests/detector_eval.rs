//! Integration: the §VII-extension detectors evaluated against ground
//! truth — the detector sees only routing data; truth only scores it.

use moas_core::causes::score_duration_heuristic;
use moas_core::detector::{Anomaly, MoasMonitor, OriginProfiler, ProfilerConfig};
use moas_lab::study::{Study, StudyConfig};
use moas_net::{Asn, Date};
use moas_routeviews::BackgroundMode;

fn study() -> Study {
    Study::build(StudyConfig::test(0.05))
}

#[test]
fn origin_profiler_catches_both_incidents() {
    let study = study();
    let windows = [
        (
            Date::ymd(1998, 3, 1),
            Date::ymd(1998, 4, 10),
            Asn::new(8584),
        ),
        (
            Date::ymd(2001, 3, 15),
            Date::ymd(2001, 4, 8),
            Asn::new(15412),
        ),
    ];
    for (from, to, culprit) in windows {
        let mut profiler = OriginProfiler::new(ProfilerConfig {
            // Scaled world → scaled min_count.
            min_count: 10,
            ..ProfilerConfig::default()
        });
        let mut caught = false;
        for date in from.iter_to(to) {
            let Some(obs) = study.observe_date(date, BackgroundMode::None) else {
                continue;
            };
            for a in profiler.observe(&obs) {
                if let Anomaly::OriginSurge { asn, .. } = a {
                    if asn == culprit {
                        caught = true;
                    }
                }
            }
        }
        assert!(caught, "AS {culprit} not flagged in {from}..{to}");
    }
}

#[test]
fn origin_profiler_is_quiet_on_quiet_weeks() {
    let study = study();
    let mut profiler = OriginProfiler::new(ProfilerConfig {
        min_count: 10,
        ..ProfilerConfig::default()
    });
    let mut surge_days = 0usize;
    let mut days = 0usize;
    // A fault-free stretch (no scripted incidents in late 1999).
    for date in Date::ymd(1999, 9, 1).iter_to(Date::ymd(1999, 11, 30)) {
        let Some(obs) = study.observe_date(date, BackgroundMode::None) else {
            continue;
        };
        days += 1;
        if !profiler.observe(&obs).is_empty() {
            surge_days += 1;
        }
    }
    assert!(days > 50, "window mostly present");
    assert!(
        surge_days * 10 <= days,
        "false-alarm days {surge_days}/{days} exceed 10%"
    );
}

#[test]
fn moas_monitor_alarm_volume_decays_after_learning() {
    let study = study();
    let mut monitor = MoasMonitor::new(3);
    let mut weekly: Vec<usize> = Vec::new();
    let mut acc = 0usize;
    let mut day_count = 0usize;
    for date in Date::ymd(1999, 1, 1).iter_to(Date::ymd(1999, 3, 31)) {
        let Some(obs) = study.observe_date(date, BackgroundMode::None) else {
            continue;
        };
        acc += monitor.observe(&obs).len();
        day_count += 1;
        if day_count.is_multiple_of(7) {
            weekly.push(acc);
            acc = 0;
        }
    }
    assert!(weekly.len() >= 8);
    // After the first weeks (learning the standing conflicts), alarms
    // must settle far below the initial burst.
    let first = weekly[0].max(1);
    let tail_avg: f64 = weekly[weekly.len() - 4..].iter().sum::<usize>() as f64 / 4.0;
    assert!(
        tail_avg < first as f64 * 0.5,
        "alarms did not decay: first week {first}, tail {tail_avg:.1}"
    );
}

#[test]
fn duration_heuristic_helps_but_cannot_be_exact() {
    // The paper's §VI-F / §VII conclusion, quantified: a duration
    // threshold separates valid from invalid conflicts far better than
    // chance, but never perfectly.
    let study = study();
    let tl = study.analyze(2);
    let score = score_duration_heuristic(&tl, 9, |p| study.ground_truth_valid(p));
    let total = score.true_valid + score.true_invalid + score.false_valid + score.false_invalid;
    assert!(total > 100, "too few scored conflicts: {total}");
    assert!(
        score.accuracy() > 0.7,
        "duration heuristic should beat chance clearly: {:.2}",
        score.accuracy()
    );
    assert!(
        score.accuracy() < 0.999,
        "a perfect duration heuristic contradicts the paper"
    );
    // Both error modes must exist: short valid conflicts (transitions)
    // and long-lived invalid ones.
    assert!(score.false_invalid > 0, "no short-lived valid conflicts?");
}

#[test]
fn threshold_sweep_shows_tradeoff() {
    let study = study();
    let tl = study.analyze(2);
    let mut accs = Vec::new();
    for t in [1u32, 9, 29, 89] {
        let s = score_duration_heuristic(&tl, t, |p| study.ground_truth_valid(p));
        accs.push((t, s.accuracy()));
    }
    // Accuracy varies with threshold — the knob matters.
    let min = accs.iter().map(|(_, a)| *a).fold(f64::MAX, f64::min);
    let max = accs.iter().map(|(_, a)| *a).fold(f64::MIN, f64::max);
    assert!(max - min > 0.02, "threshold has no effect? sweep: {accs:?}");
}
