//! Cross-crate property tests: detector invariants on arbitrary tables,
//! classification consistency, and replay-vs-model equivalence.

use moas_bgp::attrs::Attrs;
use moas_bgp::message::{BgpMessage, UpdateMsg};
use moas_bgp::{PeerInfo, TableSnapshot};
use moas_core::classify::{classify, classify_pair, ConflictClass};
use moas_core::detect::detect;
use moas_core::replay::StreamReplayer;
use moas_mrt::bgp4mp::{Bgp4mpMessage, PeeringHeader};
use moas_mrt::record::{MrtBody, MrtRecord};
use moas_net::{AsPath, Asn, Date, Ipv4Prefix, Prefix};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::net::{IpAddr, Ipv4Addr};

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    // A small pool so prefixes collide across routes (conflicts form).
    (0u32..64, 20u8..26).prop_map(|(i, len)| Ipv4Prefix::from_bits(i << 16, len.min(16 + 10)))
}

fn arb_path() -> impl Strategy<Value = AsPath> {
    prop::collection::vec(1u32..40, 1..5)
        .prop_map(|v| AsPath::from_sequence(v.into_iter().map(Asn::new)))
}

fn arb_table() -> impl Strategy<Value = TableSnapshot> {
    prop::collection::vec((arb_prefix(), arb_path(), 0u8..6), 0..60).prop_map(|routes| {
        let mut t = TableSnapshot::new(Date::ymd(2001, 1, 1));
        for p in 0..6u8 {
            t.add_peer(PeerInfo::v4(
                Ipv4Addr::new(10, 0, 0, p + 1),
                Asn::new(100 + p as u32),
            ));
        }
        for (prefix, path, peer) in routes {
            t.push_path(peer as u16, Prefix::V4(prefix), path);
        }
        t
    })
}

proptest! {
    /// A reference (brute-force) MOAS detector must agree with the real
    /// one on which prefixes conflict.
    #[test]
    fn detector_matches_reference_model(table in arb_table()) {
        let obs = detect(&table);

        // Reference: group single-origin routes by prefix; conflict iff
        // ≥2 distinct origins and no AS-set route on the prefix.
        let mut origins: HashMap<Prefix, HashSet<Asn>> = HashMap::new();
        let mut set_prefixes: HashSet<Prefix> = HashSet::new();
        for e in &table.entries {
            match e.route.path.origin() {
                moas_net::Origin::Single(o) => {
                    origins.entry(e.route.prefix).or_default().insert(o);
                }
                moas_net::Origin::Set(_) => {
                    set_prefixes.insert(e.route.prefix);
                }
                moas_net::Origin::None => {}
            }
        }
        let expected: HashSet<Prefix> = origins
            .iter()
            .filter(|(p, o)| o.len() >= 2 && !set_prefixes.contains(*p))
            .map(|(p, _)| *p)
            .collect();
        let got: HashSet<Prefix> = obs.conflicts.iter().map(|c| c.prefix).collect();
        prop_assert_eq!(got, expected);

        // Excluded prefixes reported exactly.
        let got_sets: HashSet<Prefix> =
            obs.as_set_prefixes.iter().map(|(p, _)| *p).collect();
        prop_assert_eq!(got_sets, set_prefixes);
    }

    /// Detector output invariants: sorted distinct origins, ≥2 of them,
    /// deduplicated paths, every origin backed by a path.
    #[test]
    fn conflict_outputs_are_well_formed(table in arb_table()) {
        let obs = detect(&table);
        for c in &obs.conflicts {
            prop_assert!(c.origins.len() >= 2);
            let mut sorted = c.origins.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(&sorted, &c.origins, "origins not sorted/distinct");
            // Every origin must come from some recorded path.
            let path_origins: HashSet<Asn> = c
                .paths
                .iter()
                .filter_map(|(_, p)| p.origin().as_single())
                .collect();
            for o in &c.origins {
                prop_assert!(path_origins.contains(o));
            }
            // Paths are pairwise distinct.
            for i in 0..c.paths.len() {
                for j in (i + 1)..c.paths.len() {
                    prop_assert!(c.paths[i].1 != c.paths[j].1);
                }
            }
        }
    }

    /// Classification is permutation-invariant in the path order.
    #[test]
    fn classification_is_order_invariant(table in arb_table(), seed in any::<u64>()) {
        let obs = detect(&table);
        for c in &obs.conflicts {
            let base = classify(c);
            let mut shuffled = c.clone();
            // Deterministic shuffle from the seed.
            let mut rng = moas_net::rng::DetRng::new(seed);
            rng.shuffle(&mut shuffled.paths);
            prop_assert_eq!(classify(&shuffled), base);
        }
    }

    /// Pair classification is symmetric.
    #[test]
    fn classify_pair_symmetric(a in arb_path(), b in arb_path()) {
        prop_assert_eq!(classify_pair(&a, &b), classify_pair(&b, &a));
    }

    /// Replaying an arbitrary announce/withdraw sequence matches a
    /// per-session map model exactly.
    #[test]
    fn replay_matches_model(
        ops in prop::collection::vec(
            (0u8..3, arb_prefix(), arb_path(), any::<bool>()),
            0..80,
        )
    ) {
        let mut replayer = StreamReplayer::new();
        let mut model: HashMap<(IpAddr, Asn), HashMap<Prefix, AsPath>> = HashMap::new();
        for (peer_sel, prefix, path, announce) in ops {
            let (addr, asn) = match peer_sel {
                0 => (Ipv4Addr::new(10, 0, 0, 1), Asn::new(701)),
                1 => (Ipv4Addr::new(10, 0, 0, 2), Asn::new(1239)),
                _ => (Ipv4Addr::new(10, 0, 0, 3), Asn::new(3561)),
            };
            let header = PeeringHeader {
                peer_as: asn,
                local_as: Asn::new(6447),
                if_index: 0,
                peer_addr: IpAddr::V4(addr),
                local_addr: IpAddr::V4(Ipv4Addr::new(198, 32, 162, 250)),
            };
            let update = if announce {
                UpdateMsg {
                    withdrawn: vec![],
                    attrs: Attrs::announcement(path.clone(), addr),
                    announced: vec![prefix],
                }
            } else {
                UpdateMsg {
                    withdrawn: vec![prefix],
                    attrs: Attrs::default(),
                    announced: vec![],
                }
            };
            replayer.apply(&MrtRecord {
                timestamp: 0,
                body: MrtBody::Bgp4mpMessage(Bgp4mpMessage {
                    header,
                    message: BgpMessage::Update(update),
                    as4: false,
                }),
            });
            let slot = model.entry((IpAddr::V4(addr), asn)).or_default();
            if announce {
                slot.insert(Prefix::V4(prefix), path);
            } else {
                slot.remove(&Prefix::V4(prefix));
            }
        }
        let total: usize = model.values().map(HashMap::len).sum();
        prop_assert_eq!(replayer.route_count(), total);
        for ((addr, asn), routes) in &model {
            for (prefix, path) in routes {
                let got = replayer.route_of(*addr, *asn, prefix);
                prop_assert!(got.is_some(), "missing {prefix} at {asn}");
                prop_assert_eq!(&got.unwrap().path, path);
            }
        }
    }

    /// SubMOAS never reports a pair whose origin sets intersect, and
    /// never pairs a prefix with itself.
    #[test]
    fn submoas_pairs_are_disjoint_strict_covers(
        routes in prop::collection::vec((any::<u32>(), 8u8..30, 1u32..50), 0..50)
    ) {
        let mut t = TableSnapshot::new(Date::ymd(2001, 1, 1));
        let p0 = t.add_peer(PeerInfo::v4(Ipv4Addr::new(10, 0, 0, 1), Asn::new(100)));
        for (bits, len, origin) in routes {
            // Narrow the space so covers actually occur.
            let prefix = Ipv4Prefix::from_bits(bits & 0x0F0F_0000, len);
            t.push_path(
                p0,
                Prefix::V4(prefix),
                AsPath::from_sequence([Asn::new(100), Asn::new(origin)]),
            );
        }
        let report = moas_core::submoas::detect_submoas(&t);
        for pair in &report.pairs {
            prop_assert!(pair.covering.len() < pair.specific.len());
            prop_assert!(pair.covering.contains(&pair.specific));
            for o in &pair.specific_origins {
                prop_assert!(!pair.covering_origins.contains(o));
            }
        }
    }

    /// Distinct pairs really share no ASes; OrigTran pairs share all of
    /// the shorter path.
    #[test]
    fn class_definitions_hold(a in arb_path(), b in arb_path()) {
        match classify_pair(&a, &b) {
            ConflictClass::DistinctPaths => {
                prop_assert!(a.is_disjoint_from(&b));
            }
            ConflictClass::OrigTranAS => {
                prop_assert!(a.is_proper_prefix_of(&b) || b.is_proper_prefix_of(&a));
            }
            ConflictClass::SplitView => {
                prop_assert_eq!(a.first_hop(), b.first_hop());
            }
            ConflictClass::Other => {
                prop_assert!(!a.is_disjoint_from(&b));
                prop_assert!(a.first_hop() != b.first_hop());
            }
        }
    }
}
