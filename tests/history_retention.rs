//! Retention edge cases: expiry exactly at a day-mark boundary, open
//! episodes straddling (or outliving) the horizon, a daemon crash
//! mid-rewrite leaving a partial table, and the size cap — each
//! driven deterministically through a daemonless [`HistoryService`]
//! with [`HistoryService::maintain_now`].

use moas_history::{HistoryService, RetentionPolicy, ServiceConfig, ValidityConfig, Verdict};
use moas_monitor::{MonitorEvent, SeqEvent};
use moas_mrt::snapshot::midnight_timestamp;
use moas_net::{Asn, Date, Prefix};
use std::path::PathBuf;

fn start() -> Date {
    Date::ymd(2001, 1, 1)
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("moas-history-ret-{}-{name}", std::process::id()))
}

fn config(retention: RetentionPolicy) -> ServiceConfig {
    ServiceConfig {
        start_date: start(),
        retention,
        // High watermark: compaction only runs when retention forces
        // it (or maintain_now decides it must) — deterministic tests.
        watermark_segments: 100,
        daemon: false,
        ..ServiceConfig::default()
    }
}

fn dates(n: usize) -> Vec<Date> {
    (0..n as i64).map(|i| start().plus_days(i)).collect()
}

/// Stream timestamp `secs` into day position `d`.
fn at(d: u32, secs: u32) -> u32 {
    midnight_timestamp(start()) + d * 86_400 + secs
}

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

struct EventFeed {
    seq: u64,
    events: Vec<SeqEvent>,
}

impl EventFeed {
    fn new() -> Self {
        EventFeed {
            seq: 0,
            events: Vec::new(),
        }
    }

    fn open(&mut self, prefix: Prefix, origins: &[u32], at: u32) {
        self.push(MonitorEvent::ConflictOpened {
            prefix,
            origins: origins.iter().map(|&o| Asn::new(o)).collect(),
            at,
        });
    }

    fn close(&mut self, prefix: Prefix, opened_at: u32, at: u32) {
        self.push(MonitorEvent::ConflictClosed {
            prefix,
            opened_at,
            at,
        });
    }

    fn push(&mut self, event: MonitorEvent) {
        self.events.push(SeqEvent {
            shard: 0,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    fn drain(&mut self) -> Vec<SeqEvent> {
        std::mem::take(&mut self.events)
    }
}

/// Feeds one short conflict per day for days `0..n`, marking each
/// day. Each conflict straddles its day's midnight (closes early the
/// next day) so it covers exactly one snapshot cut — the same reason
/// the daily-snapshot pipeline can see short conflicts at all.
fn feed_daily_conflicts(service: &HistoryService, n: u32) {
    let mut feed = EventFeed::new();
    for d in 0..n {
        let prefix = p(&format!("10.0.{d}.0/24"));
        let opened = at(d, 1_000);
        feed.open(prefix, &[100 + d, 200 + d], opened);
        feed.close(prefix, opened, at(d + 1, 1_000));
        service.append(&feed.drain()).unwrap();
        service.mark_day(d as usize).unwrap();
    }
}

/// Expiry is whole-segment at day granularity: with the horizon at
/// day `h`, day `h-1` is expired and day `h` is retained — the
/// boundary day itself survives.
#[test]
fn expiry_exactly_at_day_mark_boundary() {
    let dir = tmp("boundary");
    std::fs::remove_dir_all(&dir).ok();
    let service = HistoryService::open(&dir, config(RetentionPolicy::keep_days(4))).unwrap();
    feed_daily_conflicts(&service, 6); // days 0..=5, next_day = 6
    assert!(service.maintain_now().unwrap());

    let snap = service.reader().snapshot();
    assert_eq!(snap.horizon_day(), 2, "6 days seen, keep 4: horizon at 2");
    let stats = service.stats();
    assert_eq!(
        stats.segments_expired, 2,
        "days 0 and 1 expired, day 2 kept"
    );

    // Day 2's conflict — exactly at the boundary — is still
    // answerable; days 0 and 1 are gone.
    let window = dates(6);
    let durations = snap.durations(&window[2..]);
    assert_eq!(durations.len(), 4, "days 2..=5 each contribute a conflict");
    let records = snap.conflicts().records();
    assert!(records.contains_key(&p("10.0.2.0/24")), "boundary day kept");
    assert!(
        records.contains_key(&p("10.0.1.0/24")),
        "closes during the first retained day: episode intersects the window"
    );
    assert!(
        !records.contains_key(&p("10.0.0.0/24")),
        "fully pre-horizon: dropped"
    );

    // The boundary is stable: another sweep changes nothing.
    assert!(!service.maintain_now().unwrap());
    assert_eq!(service.stats().segments_expired, 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// An episode still open when the horizon passes it is never lost:
/// the segment that recorded its opening may be expired (it is
/// covered by the table first), but the open episode survives in the
/// table's live block — episode reconstruction is unbroken and the
/// conflict's §VI longevity keeps accruing from the true opening.
#[test]
fn open_episode_survives_expiry_of_its_opening_segment() {
    let dir = tmp("open-episode");
    std::fs::remove_dir_all(&dir).ok();
    let service = HistoryService::open(&dir, config(RetentionPolicy::keep_days(3))).unwrap();

    let long = p("192.0.2.0/24");
    let mut feed = EventFeed::new();
    feed.open(long, &[7, 9], at(0, 500));
    service.append(&feed.drain()).unwrap();
    service.mark_day(0).unwrap();
    for d in 1..9u32 {
        // Quiet days: conflict stays open; still mark the days.
        service.mark_day(d as usize).unwrap();
    }
    // A late unrelated conflict sets the log's clock (validity values
    // still-open episodes at the last event timestamp).
    let clock = p("203.0.113.0/24");
    feed.open(clock, &[30, 31], at(9, 1_000));
    feed.close(clock, at(9, 1_000), at(9, 2_000));
    service.append(&feed.drain()).unwrap();
    service.mark_day(9).unwrap();
    assert!(service.maintain_now().unwrap());

    let snap = service.reader().snapshot();
    assert_eq!(snap.horizon_day(), 7);
    assert_eq!(
        service.stats().segments_expired,
        1,
        "the opening day's segment is expired"
    );
    let rec = &snap.conflicts().records()[&long];
    assert!(rec.is_open());
    assert_eq!(rec.first_opened_at(), at(0, 500), "true opening preserved");
    assert!(
        !snap.conflicts().truncated_prefixes().contains(&long),
        "an open episode kept whole is not truncated"
    );
    // Longevity: open across every retained cut.
    assert_eq!(snap.durations(&dates(10)[7..]), vec![3]);
    // §VI: it counts as long-lived valid practice.
    let report = snap.validity(ValidityConfig::with_threshold_days(7));
    assert_eq!(report.verdict_of(&long), Some(Verdict::LikelyValid));
    std::fs::remove_dir_all(&dir).ok();
}

/// A record that loses pre-horizon episodes but keeps later ones is
/// recorded as truncated; a record that loses everything is dropped.
#[test]
fn pruned_records_marked_truncated() {
    let dir = tmp("truncated");
    std::fs::remove_dir_all(&dir).ok();
    let service = HistoryService::open(&dir, config(RetentionPolicy::keep_days(3))).unwrap();

    let recurring = p("192.0.2.0/24");
    let early_only = p("198.51.100.0/24");
    let mut feed = EventFeed::new();
    // Both conflict on day 0; only `recurring` comes back on day 8.
    feed.open(recurring, &[7, 9], at(0, 100));
    feed.close(recurring, at(0, 100), at(0, 4_000));
    feed.open(early_only, &[5, 6], at(0, 200));
    feed.close(early_only, at(0, 200), at(0, 5_000));
    service.append(&feed.drain()).unwrap();
    service.mark_day(0).unwrap();
    for d in 1..8 {
        service.mark_day(d).unwrap();
    }
    feed.open(recurring, &[7, 9], at(8, 100));
    feed.close(recurring, at(8, 100), at(8, 4_000)); // within day 8: retained
    service.append(&feed.drain()).unwrap();
    service.mark_day(8).unwrap();
    for d in 9..11 {
        service.mark_day(d).unwrap();
    }
    assert!(service.maintain_now().unwrap());

    let snap = service.reader().snapshot();
    assert_eq!(snap.horizon_day(), 8);
    let records = snap.conflicts().records();
    assert!(
        !records.contains_key(&early_only),
        "fully pre-horizon: dropped"
    );
    let rec = &records[&recurring];
    assert_eq!(rec.episode_count(), 1, "day-0 episode pruned");
    assert_eq!(
        snap.conflicts().truncated_prefixes(),
        &[recurring],
        "incomplete history is recorded as truncated"
    );
    // Affinity memory survives retention by design: the pair is still
    // known to have co-announced twice.
    assert_eq!(
        snap.conflicts()
            .affinity()
            .co_announcements(recurring, Asn::new(7), Asn::new(9)),
        2
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A daemon crash mid-rewrite leaves a partial table (a `.tmp` build
/// file, or a fully named table the manifest never committed to).
/// Startup must detect and discard both, and the store must still
/// answer from segments and recompact cleanly.
#[test]
fn partial_table_from_crashed_rewrite_discarded_at_startup() {
    let dir = tmp("crash");
    std::fs::remove_dir_all(&dir).ok();
    let service = HistoryService::open(&dir, config(RetentionPolicy::keep_everything())).unwrap();
    feed_daily_conflicts(&service, 4);
    let want = {
        let snap = service.reader().snapshot();
        let mut d = snap.durations(&dates(4));
        d.sort_unstable();
        d
    };
    service.close().unwrap();

    // Crash shape 1: torn `.tmp` build file.
    std::fs::write(dir.join("tab-build.tmp"), b"MHTAB001 torn mid-write").unwrap();
    // Crash shape 2: renamed into place but manifest never swapped —
    // content is garbage from an interrupted copy.
    std::fs::write(dir.join("tab-00000042.mht"), b"MHTAB001 also garbage").unwrap();

    let service = HistoryService::open(&dir, config(RetentionPolicy::keep_everything())).unwrap();
    let report = service.open_report();
    assert_eq!(report.discarded.len(), 2, "both crash leftovers discarded");
    assert!(!dir.join("tab-build.tmp").exists());
    assert!(!dir.join("tab-00000042.mht").exists());

    let snap = service.reader().snapshot();
    let mut got = snap.durations(&dates(4));
    got.sort_unstable();
    assert_eq!(got, want, "answers unaffected by the crash leftovers");

    // And a fresh compaction still succeeds after the cleanup.
    service.close().unwrap();
    let mut eager = config(RetentionPolicy::keep_everything());
    eager.watermark_segments = 1;
    let service = HistoryService::open(&dir, eager).unwrap();
    feed_daily_conflicts_from(&service, 4, 6);
    assert!(service.maintain_now().unwrap());
    assert!(service.stats().tables_written >= 1);
    let snap = service.reader().snapshot();
    let mut full = snap.durations(&dates(6));
    full.sort_unstable();
    assert_eq!(full.len(), 6, "all six days answerable after recompaction");
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupt *committed* table (bit rot) is dropped at startup and the
/// covered segments — still on disk — are recompacted, so answers
/// survive.
#[test]
fn corrupt_committed_table_dropped_and_rebuilt() {
    let dir = tmp("bitrot");
    std::fs::remove_dir_all(&dir).ok();
    let mut cfg = config(RetentionPolicy::keep_everything());
    cfg.watermark_segments = 1; // compact eagerly
    let service = HistoryService::open(&dir, cfg).unwrap();
    feed_daily_conflicts(&service, 4);
    assert!(service.maintain_now().unwrap());
    let want = {
        let snap = service.reader().snapshot();
        assert!(snap.stats().tables_written >= 1);
        let mut d = snap.durations(&dates(4));
        d.sort_unstable();
        d
    };
    service.close().unwrap();

    // Rot a byte in the committed table.
    let table = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().and_then(|s| s.to_str()) == Some("mht"))
        .expect("a committed table");
    let mut bytes = std::fs::read(&table).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&table, &bytes).unwrap();

    let service = HistoryService::open(&dir, cfg).unwrap();
    let report = service.open_report();
    assert!(report.dropped_table.is_some(), "bit rot detected at open");
    let snap = service.reader().snapshot();
    let mut got = snap.durations(&dates(4));
    got.sort_unstable();
    assert_eq!(got, want, "recovered from raw segments");
    // The next sweep rebuilds the table.
    assert!(service.maintain_now().unwrap());
    assert!(service.reader().snapshot().stats().tables_written >= 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// The size cap deletes oldest raw segments (day-whole) once the
/// table covers them, without changing answers — and the counters
/// make the reclamation observable: retained + expired = lifetime.
#[test]
fn size_cap_expires_raw_segments_without_changing_answers() {
    let dir = tmp("sizecap");
    std::fs::remove_dir_all(&dir).ok();
    let mut cfg = config(RetentionPolicy {
        max_age_days: None,
        max_bytes: Some(600),
    });
    cfg.watermark_segments = 1;
    let service = HistoryService::open(&dir, cfg).unwrap();
    feed_daily_conflicts(&service, 8);
    let before = {
        let snap = service.reader().snapshot();
        let mut d = snap.durations(&dates(8));
        d.sort_unstable();
        d
    };
    assert!(service.maintain_now().unwrap());

    let stats = service.stats();
    assert!(stats.segments_expired > 0, "size cap reclaimed segments");
    assert!(stats.retained_bytes < stats.lifetime_bytes);
    assert_eq!(
        stats.retained_bytes,
        stats.lifetime_bytes - stats.bytes_expired
    );

    let snap = service.reader().snapshot();
    assert_eq!(
        snap.horizon_day(),
        0,
        "size cap expires raw logs, not history"
    );
    let mut after = snap.durations(&dates(8));
    after.sort_unstable();
    assert_eq!(after, before, "answers unchanged by size-cap expiry");
    std::fs::remove_dir_all(&dir).ok();
}

/// Continues the daily-conflict feed at a later day range.
fn feed_daily_conflicts_from(service: &HistoryService, from: u32, to: u32) {
    let mut feed = EventFeed::new();
    feed.seq = 10_000; // past any seq the earlier feed used
    for d in from..to {
        let prefix = p(&format!("10.0.{d}.0/24"));
        let opened = at(d, 1_000);
        feed.open(prefix, &[100 + d, 200 + d], opened);
        feed.close(prefix, opened, at(d + 1, 1_000));
        service.append(&feed.drain()).unwrap();
        service.mark_day(d as usize).unwrap();
    }
}
