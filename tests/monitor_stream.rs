//! Acceptance: the streaming monitor and the batch pipeline agree.
//!
//! A multi-day synthetic update stream (cold-start announcement of the
//! first table, then day-transition diffs) is ingested by the sharded
//! engine; the emitted event log, folded into a [`Timeline`], must
//! match the batch pipeline's `total_conflicts()` and sorted
//! `durations()` exactly — for shard counts 1, 4 and 8 — and every
//! marked day's merged conflict set must equal batch `detect()` on the
//! materialized snapshot.

use moas_core::detect::detect;
use moas_core::detector::{Anomaly, OriginProfiler, ProfilerConfig};
use moas_core::timeline::Timeline;
use moas_lab::study::{Study, StudyConfig};
use moas_monitor::{MonitorConfig, MonitorEngine};
use moas_net::{Asn, Date, Prefix};
use moas_routeviews::{BackgroundMode, Collector, WindowStream};

const START: usize = 0;
const DAYS: usize = 48;
const BACKGROUND: BackgroundMode = BackgroundMode::Sample(15);

fn study() -> Study {
    Study::build(StudyConfig::test(0.004))
}

/// A day's conflicts, compared as `(prefix, origins)` pairs.
type ConflictSet = Vec<(Prefix, Vec<Asn>)>;

/// The batch reference: detect() on each materialized day, recorded
/// into a Timeline, plus each day's conflict set.
fn batch_reference(study: &Study) -> (Timeline, Vec<ConflictSet>) {
    let mut collector = Collector::new(&study.world, &study.peers);
    let dates = window_dates(study);
    let mut tl = Timeline::new(dates, DAYS);
    let mut daily_sets = Vec::new();
    for i in 0..DAYS {
        let snap = collector.snapshot_at(START + i, BACKGROUND);
        let obs = detect(&snap);
        daily_sets.push(
            obs.conflicts
                .iter()
                .map(|c| (c.prefix, c.origins.clone()))
                .collect(),
        );
        tl.record(i, &obs);
    }
    (tl, daily_sets)
}

fn window_dates(study: &Study) -> Vec<Date> {
    study.world.window.all_days()[START..START + DAYS]
        .iter()
        .map(|d| d.date())
        .collect()
}

fn run_monitor_with(study: &Study, config: MonitorConfig) -> moas_monitor::MonitorReport {
    let mut collector = Collector::new(&study.world, &study.peers);
    let mut engine = MonitorEngine::new(config);
    let mut stream = WindowStream::new(&mut collector, START, START + DAYS, BACKGROUND);
    for day in &mut stream {
        engine.ingest_all(&day.records);
        engine.mark_day(day.idx - START, day.snapshot.date);
    }
    engine.finish()
}

fn run_monitor(study: &Study, shards: usize) -> moas_monitor::MonitorReport {
    run_monitor_with(study, MonitorConfig::with_shards(shards))
}

#[test]
fn streaming_batch_equivalence_across_shard_counts() {
    let study = study();
    let (batch_tl, batch_daily) = batch_reference(&study);
    let dates = window_dates(&study);
    assert!(
        batch_tl.total_conflicts() > 0,
        "study window must contain conflicts for the test to mean anything"
    );

    for shards in [1usize, 4, 8] {
        let report = run_monitor(&study, shards);

        // (1) Event log folded into a Timeline matches batch exactly.
        let folded = report.fold_into_timeline(&dates, DAYS);
        assert_eq!(
            folded.total_conflicts(),
            batch_tl.total_conflicts(),
            "total_conflicts diverged at {shards} shards"
        );
        let mut batch_durations = batch_tl.durations();
        let mut folded_durations = folded.durations();
        batch_durations.sort_unstable();
        folded_durations.sort_unstable();
        assert_eq!(
            folded_durations, batch_durations,
            "durations diverged at {shards} shards"
        );

        // (2) Every marked day's merged conflict set equals detect().
        for (i, batch_set) in batch_daily.iter().enumerate() {
            let obs = report
                .day_observation(i)
                .expect("every marked day has slices");
            let monitor_set: ConflictSet = obs
                .conflicts
                .iter()
                .map(|c| (c.prefix, c.origins.clone()))
                .collect();
            assert_eq!(&monitor_set, batch_set, "day {i} at {shards} shards");
        }
    }
}

/// Cross-shard §VII profiler aggregation: the monitor's origin-surge
/// alarms must exactly match a batch [`OriginProfiler`] run over each
/// day's full observation — per-shard involvement counts are merged at
/// day marks before the (single, global) profiler sees them, so the
/// alarm stream is identical at every shard count.
#[test]
fn origin_surge_alarms_match_batch_profiler() {
    let study = study();
    // Sensitive thresholds so the synthetic window actually surges
    // (top per-day involvement in this window is 2).
    let profiler_config = ProfilerConfig {
        alpha: 0.1,
        surge_factor: 1.5,
        min_count: 2,
    };

    // Batch reference: one profiler over each materialized day.
    let mut collector = Collector::new(&study.world, &study.peers);
    let mut batch_profiler = OriginProfiler::new(profiler_config);
    let mut batch_surges: Vec<(usize, Anomaly)> = Vec::new();
    for i in 0..DAYS {
        let snap = collector.snapshot_at(START + i, BACKGROUND);
        let obs = detect(&snap);
        for a in batch_profiler.observe(&obs) {
            batch_surges.push((i, a));
        }
    }
    assert!(
        !batch_surges.is_empty(),
        "thresholds must trip in-window for the test to mean anything"
    );

    for shards in [1usize, 4, 8] {
        let config = MonitorConfig {
            profiler: profiler_config,
            ..MonitorConfig::with_shards(shards)
        };
        let report = run_monitor_with(&study, config);
        let monitor_surges: Vec<(usize, Anomaly)> = report
            .alarms
            .iter()
            .filter(|(_, a)| matches!(a, Anomaly::OriginSurge { .. }))
            .cloned()
            .collect();
        assert_eq!(
            monitor_surges, batch_surges,
            "surge alarms diverged at {shards} shards"
        );
    }
}

#[test]
fn monitor_emits_real_time_durations_and_metrics() {
    let study = study();
    let report = run_monitor(&study, 4);

    // The stream window must have produced lifecycle events, and every
    // close must postdate its open.
    assert!(!report.events.is_empty(), "no events over {DAYS} days");
    for e in &report.events {
        if let Some(d) = e.event.duration_secs() {
            assert!(d < (DAYS as u32 + 2) * 86_400);
        }
    }
    // The engine accounted for every routed update.
    assert_eq!(
        report.metrics.updates_routed,
        report.metrics.updates_applied
    );
    assert_eq!(report.metrics.day_marks, DAYS as u64);
    assert!(report.metrics.batches_sent > 0);
}

#[test]
fn epoch_snapshot_matches_day_state() {
    let study = study();
    let mut collector = Collector::new(&study.world, &study.peers);
    let mut engine = MonitorEngine::new(MonitorConfig::with_shards(4));

    let mut stream = WindowStream::new(&mut collector, START, START + 6, BACKGROUND);
    let mut last_date = None;
    for day in &mut stream {
        engine.ingest_all(&day.records);
        last_date = Some(day.snapshot.date);
    }
    // Query without stopping ingestion, then compare against batch
    // detection on the same day's table.
    let snap = engine.snapshot();
    let mut collector2 = Collector::new(&study.world, &study.peers);
    let table = collector2.snapshot_at(START + 5, BACKGROUND);
    assert_eq!(Some(table.date), last_date);
    let obs = detect(&table);
    let live: Vec<(Prefix, Vec<Asn>)> = snap
        .open_conflicts()
        .iter()
        .map(|c| (c.prefix, c.origins.clone()))
        .collect();
    let batch: Vec<(Prefix, Vec<Asn>)> = obs
        .conflicts
        .iter()
        .map(|c| (c.prefix, c.origins.clone()))
        .collect();
    assert_eq!(live, batch);
    // Epochs are monotone across consecutive snapshots of an idle
    // engine.
    let again = engine.snapshot();
    assert_eq!(snap.epochs(), again.epochs());
    let report = engine.finish();
    assert_eq!(report.metrics.queries_served, 8);
}
