//! Acceptance for the query-serving subsystem: the HTTP surface must
//! answer exactly what the pinned `HistorySnapshot` answers
//! in-process, while ingestion and compaction run underneath.
//!
//! * ≥8 concurrent client threads hammer every endpoint mid-ingest,
//!   checking epoch monotonicity and internal consistency;
//! * once the epoch settles, every JSON answer is pinned against the
//!   equivalent direct snapshot computation, and the wire bytes are
//!   pinned byte-for-byte against `QueryService::respond`;
//! * an epoch advance invalidates the response cache;
//! * malformed requests map to 400/404/405, backpressure to 503;
//! * and a server holding `HistoryReader`s keeps serving the last
//!   published epoch after `HistoryService::close` (regression).

use moas_history::pipeline::{analyze_mrt_archive_service, StreamingArchiveConfig};
use moas_history::{HistoryService, RetentionPolicy, ServiceConfig, ValidityConfig};
use moas_lab::study::{Study, StudyConfig};
use moas_monitor::{MonitorEvent, SeqEvent};
use moas_mrt::snapshot::DumpFormat;
use moas_net::Date;
use moas_routeviews::{write_window_archive, BackgroundMode, Collector};
use moas_serve::{QueryServer, QueryService, Request, ServerConfig};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const DAYS: usize = 8;
const CLIENT_THREADS: usize = 8;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("moas-server-api-{}-{name}", std::process::id()))
}

/// A keep-alive HTTP/1.1 test client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set client timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn get(&mut self, target: &str) -> (u16, String) {
        self.writer
            .write_all(format!("GET {target} HTTP/1.1\r\nhost: test\r\n\r\n").as_bytes())
            .expect("send request");
        read_response(&mut self.reader)
    }
}

fn read_response<R: BufRead>(reader: &mut R) -> (u16, String) {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read status line");
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("read header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

/// One-shot GET over a fresh connection.
fn get_once(addr: SocketAddr, target: &str) -> (u16, String) {
    Client::connect(addr).get(target)
}

/// The same request routed in-process, bypassing the sockets.
fn respond_direct(service: &QueryService, target: &str) -> (u16, String) {
    let (path, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let query = query_raw
        .map(|q| {
            q.split('&')
                .map(|pair| {
                    let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                    (k.to_string(), v.to_string())
                })
                .collect()
        })
        .unwrap_or_default();
    let resp = service.respond(&Request {
        method: "GET".to_string(),
        path: path.to_string(),
        query,
        headers: Vec::new(),
        body: Vec::new(),
        keep_alive: true,
    });
    (resp.status, resp.body.clone())
}

fn parse(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("unparseable JSON ({e}): {body}"))
}

fn u(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 field {key:?} in {v:?}"))
}

#[test]
fn served_answers_match_snapshot_under_concurrency() {
    let study = Study::build(StudyConfig::test(0.004));
    let dates: Vec<Date> = study.world.window.all_days()[..DAYS]
        .iter()
        .map(|d| d.date())
        .collect();

    let archive_dir = tmp("archive");
    std::fs::remove_dir_all(&archive_dir).ok();
    let files = {
        let mut collector = Collector::new(&study.world, &study.peers);
        write_window_archive(
            &mut collector,
            &archive_dir,
            0,
            DAYS,
            BackgroundMode::Sample(15),
            DumpFormat::V2,
        )
        .expect("write synthetic archive")
    };

    let store_dir = tmp("store");
    std::fs::remove_dir_all(&store_dir).ok();
    let service = HistoryService::open(
        &store_dir,
        ServiceConfig {
            start_date: dates[0],
            retention: RetentionPolicy::keep_everything(),
            watermark_segments: 2,
            poll_interval: Duration::from_millis(50),
            daemon: true,
        },
    )
    .expect("open service");

    let query = Arc::new(QueryService::new(
        service.reader(),
        ServerConfig {
            workers: 8,
            keep_alive_requests: u32::MAX,
            start_date: dates[0],
            ..ServerConfig::default()
        },
    ));
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind server");
    let addr = server.local_addr();

    // Phase 1: ≥8 client threads hammer the API while the writer
    // ingests and the daemon compacts underneath.
    let done = AtomicBool::new(false);
    let total_rounds = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..CLIENT_THREADS {
            let done = &done;
            let dates = &dates;
            let total_rounds = &total_rounds;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                let mut last_epoch = 0u64;
                let mut rounds = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let (status, body) = client.get("/v1/stats");
                    assert_eq!(status, 200, "stats failed: {body}");
                    let stats = parse(&body);
                    let epoch = u(&stats, "epoch");
                    assert!(
                        epoch >= last_epoch,
                        "epoch went backwards: {last_epoch} then {epoch}"
                    );
                    last_epoch = epoch;

                    let (status, body) = client.get(&format!("/v1/validity?limit={}", t % 5));
                    assert_eq!(status, 200, "validity failed: {body}");
                    let val = parse(&body);
                    let tally = val.get("tally").expect("tally");
                    assert_eq!(
                        u(tally, "likely_valid")
                            + u(tally, "recurring_valid")
                            + u(tally, "likely_invalid"),
                        u(&val, "total"),
                        "tally must cover every scored conflict"
                    );

                    let date = dates[(t + rounds as usize) % DAYS];
                    let (status, body) = client.get(&format!("/v1/conflicts?date={date}"));
                    assert_eq!(status, 200, "conflicts failed: {body}");
                    let con = parse(&body);
                    assert_eq!(
                        u(&con, "count"),
                        con.get("prefixes")
                            .and_then(Value::as_array)
                            .expect("prefixes array")
                            .len() as u64
                    );

                    let (status, body) = client.get("/v1/timeline?days=3");
                    assert_eq!(status, 200, "timeline failed: {body}");
                    let (status, body) = client.get("/v1/metrics");
                    assert_eq!(status, 200, "metrics failed: {body}");
                    let metrics = parse(&body);
                    assert!(metrics.get("server").is_some());
                    rounds += 1;
                }
                total_rounds.fetch_add(rounds, Ordering::Relaxed);
            });
        }

        let report = analyze_mrt_archive_service(
            &dates,
            &files,
            &StreamingArchiveConfig::with_shards(4),
            &service,
        )
        .expect("streaming service scan");
        service.wait_idle();
        done.store(true, Ordering::Relaxed);
        assert_eq!(report.days, DAYS);
        assert!(report.events_stored > 0);
    });
    assert!(
        total_rounds.load(Ordering::Relaxed) > 0,
        "clients must have completed rounds during ingestion"
    );

    // Phase 2: the epoch is stable — pin every served answer against
    // the direct snapshot, and the wire bytes against the in-process
    // router.
    let snap = service.reader().snapshot();
    let store = snap.conflicts();
    assert!(!store.records().is_empty(), "window must contain conflicts");

    let some_prefix = *store.records().keys().next().expect("at least one record");
    let targets = [
        "/v1/stats".to_string(),
        "/v1/validity?limit=10000".to_string(),
        "/v1/validity?threshold_days=3&affinity_min=2&min_duration=60".to_string(),
        format!("/v1/conflicts?date={}", dates[2]),
        format!("/v1/prefix/{some_prefix}"),
        format!("/v1/timeline?days={DAYS}"),
    ];
    for target in &targets {
        let (wire_status, wire_body) = get_once(addr, target);
        let (direct_status, direct_body) = respond_direct(&query, target);
        assert_eq!(wire_status, 200, "{target} failed: {wire_body}");
        assert_eq!(wire_status, direct_status, "{target}: status diverged");
        assert_eq!(
            wire_body, direct_body,
            "{target}: wire bytes diverged from the in-process router"
        );
    }

    // /v1/stats vs direct snapshot calls.
    let stats = parse(&get_once(addr, "/v1/stats").1);
    assert_eq!(u(&stats, "epoch"), snap.epoch());
    assert_eq!(u(&stats, "records"), store.records().len() as u64);
    assert_eq!(u(&stats, "last_event_at"), store.last_event_at as u64);
    assert_eq!(u(&stats, "events_replayed"), store.events_replayed);
    assert_eq!(
        u(&stats, "open_conflicts"),
        store.records().values().filter(|r| r.is_open()).count() as u64
    );

    // /v1/conflicts vs the snapshot's per-day answer.
    for date in &dates {
        let body = parse(&get_once(addr, &format!("/v1/conflicts?date={date}")).1);
        assert_eq!(
            u(&body, "count"),
            snap.total_conflicts(&[*date]) as u64,
            "conflict count diverged on {date}"
        );
    }

    // /v1/timeline: each day equals the single-day conflict count.
    let timeline = parse(&get_once(addr, &format!("/v1/timeline?days={DAYS}")).1);
    let days = timeline
        .get("days")
        .and_then(Value::as_array)
        .expect("days");
    assert_eq!(days.len(), DAYS);
    for (i, day) in days.iter().enumerate() {
        assert_eq!(
            day.get("date").and_then(Value::as_str),
            Some(dates[i].to_string().as_str())
        );
        assert_eq!(
            u(day, "conflicts"),
            snap.total_conflicts(&[dates[i]]) as u64,
            "timeline diverged on day {i}"
        );
    }

    // /v1/validity vs the snapshot's §VI report (same ordering rule).
    let config = ValidityConfig::default();
    let report = snap.validity(config);
    let (lv, rv, li) = report.tally();
    let validity = parse(&get_once(addr, "/v1/validity?limit=10000").1);
    let tally = validity.get("tally").expect("tally");
    assert_eq!(u(tally, "likely_valid"), lv as u64);
    assert_eq!(u(tally, "recurring_valid"), rv as u64);
    assert_eq!(u(tally, "likely_invalid"), li as u64);
    assert_eq!(u(&validity, "total"), report.conflicts.len() as u64);
    let rows = validity
        .get("conflicts")
        .and_then(Value::as_array)
        .expect("conflicts rows");
    assert_eq!(rows.len(), report.conflicts.len());
    let mut expected: Vec<_> = report.conflicts.iter().collect();
    expected.sort_by(|a, b| b.open_secs.cmp(&a.open_secs).then(a.prefix.cmp(&b.prefix)));
    for (row, want) in rows.iter().zip(&expected) {
        assert_eq!(
            row.get("prefix").and_then(Value::as_str),
            Some(want.prefix.to_string().as_str())
        );
        assert_eq!(u(row, "open_secs"), want.open_secs);
        assert_eq!(
            row.get("longevity_percentile").and_then(Value::as_f64),
            Some(want.longevity_percentile)
        );
    }

    // /v1/prefix point lookup vs the direct record + single-row score.
    let rec = snap.record(&some_prefix).expect("record");
    let row = snap.validity_of(&some_prefix, config).expect("scores");
    let body = parse(&get_once(addr, &format!("/v1/prefix/{some_prefix}")).1);
    assert_eq!(
        body.get("prefix").and_then(Value::as_str),
        Some(some_prefix.to_string().as_str())
    );
    assert_eq!(u(&body, "flap_count"), rec.flap_count as u64);
    assert_eq!(
        body.get("episodes")
            .and_then(Value::as_array)
            .unwrap()
            .len(),
        rec.episodes.len()
    );
    let served_row = body.get("validity").expect("validity row");
    assert_eq!(u(served_row, "open_secs"), row.open_secs);
    assert_eq!(
        served_row
            .get("longevity_percentile")
            .and_then(Value::as_f64),
        Some(row.longevity_percentile)
    );

    // Phase 3: cache behavior. Repeats hit; an epoch advance misses
    // and re-renders against the new epoch.
    let hits_before = query.cache_stats().hits;
    let (_, first) = get_once(addr, "/v1/validity?limit=7");
    let (_, second) = get_once(addr, "/v1/validity?limit=7");
    assert_eq!(first, second);
    assert!(
        query.cache_stats().hits > hits_before,
        "repeat query must hit the cache"
    );

    let epoch_before = snap.epoch();
    let stray = SeqEvent {
        shard: 0,
        seq: u64::MAX,
        event: MonitorEvent::ConflictClosed {
            prefix: "203.0.113.0/24".parse().expect("prefix"),
            opened_at: 0,
            at: 1,
        },
    };
    service.append(&[stray]).expect("append stray event");
    service.mark_day(DAYS).expect("mark day");
    service.wait_idle();
    let invalidations_before = query.cache_stats().invalidations;
    let stats = parse(&get_once(addr, "/v1/stats").1);
    assert!(
        u(&stats, "epoch") > epoch_before,
        "day mark must advance the epoch"
    );
    // A cacheable route re-rendered under the new epoch flushes the
    // old epoch's entries (stats itself is uncached: its role/lag
    // block tracks on-disk state, not the pinned epoch).
    let (_, third) = get_once(addr, "/v1/validity?limit=7");
    assert_ne!(first, third, "new epoch must re-render, not reuse");
    assert!(
        query.cache_stats().invalidations > invalidations_before,
        "epoch advance must flush the cache"
    );
    // Served answers re-pin against the new epoch.
    let snap2 = service.reader().snapshot();
    assert_eq!(u(&stats, "epoch"), snap2.epoch());
    assert_eq!(
        u(&stats, "records"),
        snap2.conflicts().records().len() as u64
    );

    // Phase 4: error mapping over the wire — every error path answers
    // the uniform envelope {"error":{code, message, retry_after}}.
    for (target, want, code) in [
        ("/nope", 404, "not_found"),
        ("/v1/prefix/", 404, "not_found"),
        // stray Closed never opened a record
        ("/v1/prefix/203.0.113.0/24", 404, "not_found"),
        ("/v1/prefix/999.999.0.0%2F99", 400, "bad_request"),
        ("/v1/conflicts", 400, "bad_request"),
        ("/v1/conflicts?date=banana", 400, "bad_request"),
        ("/v1/timeline", 400, "bad_request"),
        ("/v1/timeline?days=0", 400, "bad_request"),
        ("/v1/validity?limit=minus", 400, "bad_request"),
    ] {
        let (status, body) = get_once(addr, target);
        assert_eq!(status, want, "{target} must map to {want}: {body}");
        let err = parse(&body);
        let env = err.get("error").expect("error envelope");
        assert_eq!(
            env.get("code").and_then(Value::as_str),
            Some(code),
            "{target}: wrong error code: {body}"
        );
        assert!(
            env.get("message")
                .and_then(Value::as_str)
                .is_some_and(|m| !m.is_empty()),
            "{target}: envelope must carry a message: {body}"
        );
    }
    {
        let mut client = Client::connect(addr);
        client
            .writer
            .write_all(b"POST /v1/stats HTTP/1.1\r\nhost: t\r\ncontent-length: 0\r\n\r\n")
            .expect("send post");
        let (status, _) = read_response(&mut client.reader);
        assert_eq!(status, 405, "non-GET must be rejected");
    }
    {
        let mut client = Client::connect(addr);
        client
            .writer
            .write_all(b"this is not http\r\n\r\n")
            .expect("send garbage");
        let (status, _) = read_response(&mut client.reader);
        assert_eq!(status, 400, "garbage must map to 400");
    }

    // Phase 5 (regression): the server outlives the service. Readers
    // keep serving the last published epoch after close().
    let final_epoch = service.reader().epoch();
    service.close().expect("close service");
    let (status, body) = get_once(addr, "/v1/stats");
    assert_eq!(status, 200, "server must keep serving after close()");
    assert_eq!(u(&parse(&body), "epoch"), final_epoch);
    let (status, _) = get_once(addr, "/v1/validity?limit=1");
    assert_eq!(status, 200);

    server.shutdown();
    std::fs::remove_dir_all(&store_dir).ok();
    std::fs::remove_dir_all(&archive_dir).ok();
}

/// Backpressure: with one worker pinned by an idle connection and the
/// queue at capacity, further connections are answered 503 inline by
/// the accept loop.
#[test]
fn full_queue_rejects_with_503() {
    let store_dir = tmp("backpressure");
    std::fs::remove_dir_all(&store_dir).ok();
    let service = HistoryService::open(
        &store_dir,
        ServiceConfig {
            daemon: false,
            ..ServiceConfig::default()
        },
    )
    .expect("open service");

    let query = Arc::new(QueryService::new(
        service.reader(),
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout: Duration::from_secs(2),
            ..ServerConfig::default()
        },
    ));
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind server");
    let addr = server.local_addr();

    // Pin the single worker with an idle connection, fill the queue
    // with another, then expect a 503 on the next. The inline
    // rejection must carry the full overload contract: `Connection:
    // close`, a `Retry-After`, and a tally in the status metrics —
    // not just a bare status line.
    let _pin = TcpStream::connect(addr).expect("pin connection");
    let _queued = TcpStream::connect(addr).expect("queued connection");
    let mut rejected = None;
    for _ in 0..50 {
        let extra = TcpStream::connect(addr).expect("extra connection");
        extra
            .set_read_timeout(Some(Duration::from_millis(500)))
            .expect("timeout");
        let mut reader = BufReader::new(extra);
        let mut head = Vec::new();
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(n) if n > 0 && line.trim_end() != "" => head.push(line.trim_end().to_string()),
                _ => break,
            }
        }
        if head.first().is_some_and(|l| l.contains("503")) {
            rejected = Some(head);
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let head = rejected.expect("some connection must be rejected with 503");
    assert!(head[0].starts_with("HTTP/1.1 503"), "got {:?}", head[0]);
    let has = |needle: &str| head.iter().any(|l| l.eq_ignore_ascii_case(needle));
    assert!(
        has("connection: close"),
        "503 must shed the connection: {head:?}"
    );
    assert!(
        has("retry-after: 1"),
        "503 must tell the client when to retry: {head:?}"
    );
    let metrics = query.metrics();
    assert!(metrics.connections_rejected.get() >= 1);
    assert!(
        metrics.responses_server_error.get() >= metrics.connections_rejected.get(),
        "inline 503s must be tallied like worker-path statuses"
    );

    server.shutdown();
    service.close().expect("close service");
    std::fs::remove_dir_all(&store_dir).ok();
}

/// Regression for the close/shutdown ordering: a reader (and a server
/// built over it) taken before `close()` keeps answering afterwards,
/// serving the last published epoch.
#[test]
fn reader_and_server_outlive_service_close() {
    let store_dir = tmp("outlive");
    std::fs::remove_dir_all(&store_dir).ok();
    let service = HistoryService::open(
        &store_dir,
        ServiceConfig {
            daemon: false,
            ..ServiceConfig::default()
        },
    )
    .expect("open service");

    let events: Vec<SeqEvent> = (0..4u64)
        .map(|i| SeqEvent {
            shard: 0,
            seq: i,
            event: if i % 2 == 0 {
                MonitorEvent::ConflictOpened {
                    prefix: format!("10.0.{i}.0/24").parse().expect("prefix"),
                    origins: vec![moas_net::Asn::new(7), moas_net::Asn::new(9)],
                    at: 100 + i as u32,
                }
            } else {
                MonitorEvent::ConflictClosed {
                    prefix: format!("10.0.{}.0/24", i - 1).parse().expect("prefix"),
                    opened_at: 100 + (i - 1) as u32,
                    at: 900 + i as u32,
                }
            },
        })
        .collect();
    service.append(&events).expect("append");
    service.mark_day(0).expect("mark day");

    let reader = service.reader();
    let epoch_before = reader.epoch();
    let records_before = reader.snapshot().conflicts().records().len();
    assert!(records_before > 0);

    let query = Arc::new(QueryService::new(reader.clone(), ServerConfig::default()));
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind server");
    let addr = server.local_addr();

    service.close().expect("close service");

    // The bare reader still snapshots the last published epoch...
    let snap = reader.snapshot();
    assert!(snap.epoch() >= epoch_before);
    assert_eq!(snap.conflicts().records().len(), records_before);

    // ...and so does the server built over it.
    let (status, body) = get_once(addr, "/v1/stats");
    assert_eq!(status, 200);
    let stats = parse(&body);
    assert_eq!(u(&stats, "records"), records_before as u64);
    assert_eq!(u(&stats, "epoch"), snap.epoch());

    server.shutdown();
    std::fs::remove_dir_all(&store_dir).ok();
}
