//! Acceptance for the self-monitoring layer: one trace id must follow
//! an MRT file from feed discovery to the published epoch as a single
//! connected span tree; sampling 0 must silence the tracer without
//! touching the stage histograms; and an injected feed stall must
//! drive the full operational loop observably over the wire — the lag
//! series at `/v1/series`, the alert walking pending → firing →
//! resolved across `/v1/alerts` polls, the transitions in
//! `/v1/events/log`, readiness failing while the page rule fires, and
//! a slow request's journal entry resolving to its span tree at
//! `/v1/trace/{id}`.

use moas_feed::{FeedConfig, FeedFollower};
use moas_history::{HistoryService, RetentionPolicy, ServiceConfig};
use moas_lab::study::{Study, StudyConfig};
use moas_net::Date;
use moas_obs::tsdb::unix_now;
use moas_obs::{AlertEngine, Registry, Tsdb};
use moas_routeviews::{write_update_archive, BackgroundMode, Collector};
use moas_serve::{QueryServer, QueryService, ServerConfig};
use serde::Value;
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const DAYS: usize = 3;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("moas-obs-selfmon-{}-{name}", std::process::id()))
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(
            format!("GET {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line.split(' ').nth(1).and_then(|s| s.parse().ok()).unwrap();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8"))
}

fn parse(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"))
}

fn write_archive(name: &str, dates: &mut Vec<Date>) -> PathBuf {
    let study = Study::build(StudyConfig::test(0.004));
    *dates = study.world.window.all_days()[..DAYS]
        .iter()
        .map(|d| d.date())
        .collect();
    let archive_dir = tmp(name);
    std::fs::remove_dir_all(&archive_dir).ok();
    let mut collector = Collector::new(&study.world, &study.peers);
    write_update_archive(
        &mut collector,
        &archive_dir,
        0,
        DAYS,
        BackgroundMode::Sample(15),
    )
    .expect("write synthetic archive");
    archive_dir
}

fn open_service(dir: &PathBuf, start: Date) -> Arc<HistoryService> {
    std::fs::remove_dir_all(dir).ok();
    Arc::new(
        HistoryService::open(
            dir,
            ServiceConfig {
                start_date: start,
                retention: RetentionPolicy::keep_everything(),
                watermark_segments: 2,
                poll_interval: Duration::from_millis(50),
                daemon: true,
            },
        )
        .expect("open service"),
    )
}

/// Ingests the archive through a follower on `registry`, returning
/// after the service is idle (every epoch published).
fn ingest(
    archive_dir: &PathBuf,
    service: &Arc<HistoryService>,
    registry: &Arc<Registry>,
    start: Date,
) -> FeedFollower {
    let mut follower = FeedFollower::open_with_registry(
        FeedConfig::new(archive_dir, start),
        Arc::clone(service),
        Arc::clone(registry),
    )
    .expect("open follower");
    while !follower.poll_once().expect("poll").caught_up {}
    follower.finalize().expect("finalize");
    service.wait_idle();
    follower
}

/// The names of every span in one trace, asserting along the way that
/// the spans form a single connected tree (one root, every other
/// span's parent is a span of the same trace).
fn trace_stage_names(registry: &Registry, trace: u64) -> BTreeSet<&'static str> {
    let spans = registry.tracer().trace_spans(trace);
    let ids: BTreeSet<u64> = spans.iter().map(|s| s.span).collect();
    let roots: Vec<_> = spans.iter().filter(|s| s.parent == 0).collect();
    assert_eq!(
        roots.len(),
        1,
        "trace {trace:x} must have exactly one root, got {roots:?}"
    );
    for s in &spans {
        assert!(
            s.parent == 0 || ids.contains(&s.parent),
            "span {} ({}) is orphaned from trace {trace:x}",
            s.span,
            s.name
        );
    }
    spans.iter().map(|s| s.name).collect()
}

/// One trace id follows an MRT file across every subsystem: some
/// feed-poll root span's tree must contain the feed, decode, monitor,
/// and history stages — discovery to published epoch, one connected
/// tree.
#[test]
fn one_trace_follows_a_file_from_poll_to_published_epoch() {
    let mut dates = Vec::new();
    let archive_dir = write_archive("trace-archive", &mut dates);
    let service = open_service(&tmp("trace-store"), dates[0]);
    let registry = Arc::new(Registry::new());
    let follower = ingest(&archive_dir, &service, &registry, dates[0]);

    let roots = registry.tracer().slowest_roots(100);
    assert!(!roots.is_empty(), "ingest must record root spans");
    let polls: Vec<_> = roots.iter().filter(|r| r.name == "feed_poll").collect();
    assert!(!polls.is_empty(), "feed polls must be traced: {roots:?}");

    // The catch-up poll drags files through decode, shard apply,
    // append, seal, and epoch publish — all inside its own trace.
    let required = [
        "feed_poll",
        "feed_tail",
        "mrt_decode",
        "shard_apply",
        "event_append",
        "epoch_publish",
    ];
    let mut best: BTreeSet<&'static str> = BTreeSet::new();
    let connected = polls.iter().any(|root| {
        let names = trace_stage_names(&registry, root.trace);
        let all = required.iter().all(|stage| names.contains(stage));
        if names.len() > best.len() {
            best = names;
        }
        all
    });
    assert!(
        connected,
        "no feed_poll trace covers the whole pipeline; best saw {best:?}"
    );

    follower.shutdown().expect("follower shutdown");
}

/// Sampling 0 silences the tracer completely — zero recorded spans
/// for a full ingest — while the stage histograms on the same
/// registry keep observing every stage.
#[test]
fn sampling_zero_records_no_spans_but_histograms_still_observe() {
    let mut dates = Vec::new();
    let archive_dir = write_archive("nosample-archive", &mut dates);
    let service = open_service(&tmp("nosample-store"), dates[0]);
    let registry = Arc::new(Registry::new());
    registry.tracer().set_sampling(0);
    let follower = ingest(&archive_dir, &service, &registry, dates[0]);

    assert_eq!(
        registry.tracer().recorded(),
        0,
        "sampling 0 must record nothing"
    );

    // The metrics path is independent of the trace path: stage
    // histograms observed the same ingest.
    let text = registry.render_prometheus();
    for stage in ["feed_poll", "shard_apply", "event_append"] {
        let needle = format!("moas_stage_duration_us_count{{stage=\"{stage}\"}}");
        let line = text
            .lines()
            .find(|l| l.starts_with(&needle))
            .unwrap_or_else(|| panic!("missing {needle} in scrape:\n{text}"));
        let count: u64 = line
            .rsplit(' ')
            .next()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        assert!(count > 0, "{stage} histogram must still observe: {line}");
    }

    follower.shutdown().expect("follower shutdown");
}

/// Kind strings of every journaled event served at `/v1/events/log`.
fn journal_kinds(addr: SocketAddr) -> Vec<String> {
    let (status, body) = get(addr, "/v1/events/log");
    assert_eq!(status, 200);
    match parse(&body).get("events") {
        Some(Value::Array(rows)) => rows
            .iter()
            .filter_map(|e| match e.get("kind") {
                Some(Value::String(s)) => Some(s.clone()),
                _ => None,
            })
            .collect(),
        other => panic!("events must be an array, got {other:?}"),
    }
}

/// The `/v1/alerts` state of one rule.
fn alert_state(addr: SocketAddr, rule: &str) -> String {
    let (status, body) = get(addr, "/v1/alerts");
    assert_eq!(status, 200);
    let doc = parse(&body);
    let rows = match doc.get("alerts") {
        Some(Value::Array(rows)) => rows.clone(),
        other => panic!("alerts must be an array, got {other:?}"),
    };
    rows.iter()
        .find(|r| matches!(r.get("name"), Some(Value::String(s)) if s == rule))
        .and_then(|r| r.get("state"))
        .and_then(|s| match s {
            Value::String(s) => Some(s.clone()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("rule {rule} missing from /v1/alerts: {body}"))
}

/// An injected feed stall drives the whole operational loop, checked
/// entirely over the wire: the lag series lands in `/v1/series`, the
/// feed-lag page rule walks pending → firing → resolved across
/// `/v1/alerts` polls, each transition is journaled, readiness fails
/// while the page rule fires and recovers when it resolves, and a
/// slow request's journal entry carries a trace id that resolves to
/// its span tree at `/v1/trace/{id}`.
#[test]
fn injected_feed_stall_drives_the_alert_loop_over_the_wire() {
    let mut dates = Vec::new();
    let archive_dir = write_archive("stall-archive", &mut dates);
    let service = open_service(&tmp("stall-store"), dates[0]);
    let registry = Arc::new(Registry::new());
    let follower = ingest(&archive_dir, &service, &registry, dates[0]);

    let tsdb = Arc::new(Tsdb::default());
    let alerts = Arc::new(AlertEngine::new(Arc::clone(&registry), Arc::clone(&tsdb)));
    let query = Arc::new(
        QueryService::with_registry(
            service.reader(),
            ServerConfig {
                start_date: dates[0],
                // Journal every request, so each one is traceable.
                slow_request_micros: 1,
                // Keep the plain feed-lag readiness check out of the
                // way: only the page alert may flip /readyz here.
                ready_max_feed_lag_secs: u64::MAX,
                ..ServerConfig::default()
            },
            Arc::clone(&registry),
        )
        .with_engine_metrics(service.metrics_handle().expect("engine attached"))
        .with_feed_status(follower.status())
        .with_self_monitor(Arc::clone(&tsdb), Arc::clone(&alerts)),
    );
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind");
    let addr = server.local_addr();

    // The injection handle: the same gauge the follower publishes its
    // lag through (same name + labels ⇒ same series). The test ticks
    // the sampler and engine by hand — deterministic, no background
    // Sampler thread — at wall-clock-adjacent instants so the
    // real-time range query in /v1/series sees the points.
    let lag = registry.gauge(
        "moas_feed_lag_seconds",
        "Seconds the ingest position trails the newest discovered file.",
    );
    let mut now = unix_now().saturating_sub(80);

    // Calm baseline: the rule learns lag ≈ 5 s and stays ok.
    lag.set(5);
    for _ in 0..3 {
        tsdb.sample(&registry, now);
        alerts.tick(now);
        now += 10;
    }
    assert_eq!(alert_state(addr, "feed_lag"), "ok");
    let (status, _) = get(addr, "/readyz");
    assert_eq!(status, 200, "calm feed, ready");

    // The stall: lag jumps two ticks past the surge bound.
    lag.set(5_000);
    tsdb.sample(&registry, now);
    alerts.tick(now);
    now += 10;
    assert_eq!(alert_state(addr, "feed_lag"), "pending");
    let (status, _) = get(addr, "/readyz");
    assert_eq!(status, 200, "pending does not page yet");

    tsdb.sample(&registry, now);
    alerts.tick(now);
    now += 10;
    assert_eq!(alert_state(addr, "feed_lag"), "firing");
    let (status, body) = get(addr, "/readyz");
    assert_eq!(status, 503, "a firing page alert fails readiness");
    assert!(
        body.contains("feed_lag"),
        "503 must name the firing rule: {body}"
    );

    // The stalled samples are queryable as a series over the wire.
    let (status, body) = get(addr, "/v1/series?name=moas_feed_lag_seconds&range=600");
    assert_eq!(status, 200);
    let doc = parse(&body);
    let series = match doc.get("series") {
        Some(Value::Array(rows)) => rows.clone(),
        other => panic!("series must be an array, got {other:?}"),
    };
    assert!(!series.is_empty(), "lag series must be sampled: {body}");
    let points = match series[0].get("points") {
        Some(Value::Array(pts)) => pts.clone(),
        other => panic!("points must be an array, got {other:?}"),
    };
    let values: Vec<f64> = points
        .iter()
        .filter_map(|p| match p {
            Value::Array(pair) => pair.get(1).and_then(|v| match v {
                Value::F64(f) => Some(*f),
                Value::U64(u) => Some(*u as f64),
                _ => None,
            }),
            _ => None,
        })
        .collect();
    assert!(
        values.contains(&5.0) && values.contains(&5_000.0),
        "series must hold the calm and stalled samples: {values:?}"
    );

    // Recovery: clean ticks walk firing → resolved and readiness
    // returns.
    lag.set(0);
    for _ in 0..2 {
        tsdb.sample(&registry, now);
        alerts.tick(now);
        now += 10;
    }
    assert_eq!(alert_state(addr, "feed_lag"), "resolved");
    let (status, _) = get(addr, "/readyz");
    assert_eq!(status, 200, "resolved alert no longer pages");

    // Every transition was journaled, in order.
    let kinds = journal_kinds(addr);
    let alert_kinds: Vec<&String> = kinds.iter().filter(|k| k.starts_with("alert_")).collect();
    assert_eq!(
        alert_kinds,
        ["alert_pending", "alert_firing", "alert_resolved"],
        "full journal: {kinds:?}"
    );

    // Slow-request forensics: the 1 µs threshold journals every
    // request with its trace id; the id must resolve to a span tree
    // naming the request pipeline stages.
    let (status, _) = get(addr, "/v1/stats");
    assert_eq!(status, 200);
    let (status, body) = get(addr, "/v1/events/log");
    assert_eq!(status, 200);
    let events = match parse(&body).get("events") {
        Some(Value::Array(rows)) => rows.clone(),
        other => panic!("events must be an array, got {other:?}"),
    };
    let trace_id = events
        .iter()
        .rev()
        .find(|e| matches!(e.get("kind"), Some(Value::String(k)) if k == "slow_request"))
        .and_then(|e| e.get("trace"))
        .and_then(|t| match t {
            Value::String(s) => Some(s.clone()),
            _ => None,
        })
        .expect("a journaled slow request carries its trace id");
    let (status, body) = get(addr, &format!("/v1/trace/{trace_id}"));
    assert_eq!(status, 200, "the journaled id resolves: {body}");
    let spans = match parse(&body).get("spans") {
        Some(Value::Array(rows)) => rows.clone(),
        other => panic!("spans must be an array, got {other:?}"),
    };
    let names: BTreeSet<String> = spans
        .iter()
        .filter_map(|s| match s.get("name") {
            Some(Value::String(n)) => Some(n.clone()),
            _ => None,
        })
        .collect();
    for stage in ["request", "request_parse", "request_route"] {
        assert!(names.contains(stage), "trace must name {stage}: {names:?}");
    }
    assert!(
        spans.len() >= 3,
        "the span tree resolves at least three stages: {spans:?}"
    );

    server.shutdown();
    follower.shutdown().expect("follower shutdown");
}
