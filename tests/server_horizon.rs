//! Regression: day-cut queries at the retention horizon.
//!
//! Once retention has expired a day's segments, the store can no
//! longer distinguish "no conflicts that day" from "data deleted".
//! `/v1/timeline` and `/v1/conflicts` must therefore report expired
//! days as *truncated/absent* — `conflicts: null` with a `truncated`
//! marker — never as zero conflicts, which would silently skew any
//! §VI longevity statistic computed from the answers.

use moas_history::{HistoryService, RetentionPolicy, ServiceConfig};
use moas_monitor::{MonitorEvent, SeqEvent};
use moas_mrt::snapshot::midnight_timestamp;
use moas_net::{Asn, Date, Prefix};
use moas_serve::{QueryService, Request, Response, ServerConfig};
use serde::Value;
use std::path::PathBuf;
use std::sync::Arc;

fn start() -> Date {
    Date::ymd(2001, 1, 1)
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("moas-server-horizon-{}-{name}", std::process::id()))
}

/// Stream timestamp `secs` into day position `d`.
fn at(d: u32, secs: u32) -> u32 {
    midnight_timestamp(start()) + d * 86_400 + secs
}

fn parse(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("unparseable JSON ({e}): {body}"))
}

fn u(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 field {key:?} in {v:?}"))
}

fn b(v: &Value, key: &str) -> bool {
    v.get(key)
        .and_then(Value::as_bool)
        .unwrap_or_else(|| panic!("missing bool field {key:?} in {v:?}"))
}

fn get(service: &QueryService, target: &str) -> Arc<Response> {
    let (path, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let query = query_raw
        .map(|q| {
            q.split('&')
                .map(|pair| {
                    let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                    (k.to_string(), v.to_string())
                })
                .collect()
        })
        .unwrap_or_default();
    service.respond(&Request {
        method: "GET".to_string(),
        path: path.to_string(),
        query,
        headers: Vec::new(),
        body: Vec::new(),
        keep_alive: true,
    })
}

/// One short conflict per day for days `0..n`, each straddling its
/// day's midnight so it covers exactly one snapshot cut.
fn feed_daily_conflicts(service: &HistoryService, n: u32) {
    let mut seq = 0u64;
    for d in 0..n {
        let prefix: Prefix = format!("10.0.{d}.0/24").parse().unwrap();
        let opened = at(d, 1_000);
        let events = vec![
            SeqEvent {
                shard: 0,
                seq,
                event: MonitorEvent::ConflictOpened {
                    prefix,
                    origins: vec![Asn::new(100 + d), Asn::new(200 + d)],
                    at: opened,
                },
            },
            SeqEvent {
                shard: 0,
                seq: seq + 1,
                event: MonitorEvent::ConflictClosed {
                    prefix,
                    opened_at: opened,
                    at: at(d + 1, 1_000),
                },
            },
        ];
        seq += 2;
        service.append(&events).unwrap();
        service.mark_day(d as usize).unwrap();
    }
}

#[test]
fn timeline_and_conflicts_report_expired_days_as_truncated() {
    let dir = tmp("truncated");
    std::fs::remove_dir_all(&dir).ok();
    let service = HistoryService::open(
        &dir,
        ServiceConfig {
            start_date: start(),
            retention: RetentionPolicy::keep_days(4),
            watermark_segments: 100,
            daemon: false,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    feed_daily_conflicts(&service, 6); // days 0..=5; keep 4 → horizon 2
    assert!(service.maintain_now().unwrap());
    let snap = service.reader().snapshot();
    assert_eq!(snap.horizon_day(), 2, "days 0 and 1 must be expired");

    let query = QueryService::new(
        service.reader(),
        ServerConfig {
            start_date: start(),
            ..ServerConfig::default()
        },
    );

    // Timeline spanning the horizon: expired days are absent, not 0.
    let resp = get(&query, "/v1/timeline?days=6");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let tl = parse(&resp.body);
    assert_eq!(u(&tl, "horizon_day"), 2);
    assert_eq!(u(&tl, "truncated_days"), 2);
    let days = tl.get("days").and_then(Value::as_array).unwrap();
    assert_eq!(days.len(), 6);
    for (i, day) in days.iter().enumerate() {
        let expired = i < 2;
        assert_eq!(
            b(day, "truncated"),
            expired,
            "day {i} truncation flag wrong: {day:?}"
        );
        if expired {
            assert_eq!(
                day.get("conflicts"),
                Some(&Value::Null),
                "expired day {i} must be absent, not a count"
            );
        } else {
            assert_eq!(u(day, "conflicts"), 1, "retained day {i} has its conflict");
        }
    }

    // Point query for an expired day: truncated, count absent.
    let resp = get(&query, "/v1/conflicts?date=2001-01-01");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let body = parse(&resp.body);
    assert!(b(&body, "truncated"));
    assert_eq!(body.get("count"), Some(&Value::Null));
    assert_eq!(u(&body, "horizon_day"), 2);

    // A retained day still answers a real count.
    let resp = get(&query, "/v1/conflicts?date=2001-01-03");
    let body = parse(&resp.body);
    assert!(!b(&body, "truncated"));
    assert_eq!(u(&body, "count"), 1);

    // The boundary day itself (horizon) is retained, not truncated.
    let resp = get(&query, "/v1/conflicts?date=2001-01-05");
    assert!(!b(&parse(&resp.body), "truncated"));

    // A date before the window ever began is just as unanswerable as
    // an expired one, and gets the same marker.
    let resp = get(&query, "/v1/conflicts?date=2000-12-31");
    let body = parse(&resp.body);
    assert!(b(&body, "truncated"));
    assert_eq!(body.get("count"), Some(&Value::Null));

    service.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
