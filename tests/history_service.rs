//! Acceptance: the long-running history service is exact under
//! retention, background compaction, and concurrent readers.
//!
//! A multi-day synthetic archive is driven through
//! [`moas_history::pipeline::analyze_mrt_archive_service`] with the
//! compaction daemon enabled and an age-based retention policy, while
//! reader threads take validity snapshots throughout the ingest. At
//! the end, days below the horizon have been expired from disk (raw
//! segments deleted, cold history served from the record table), and
//! the service's `total_conflicts` / `durations` answers on the
//! retained window must equal batch `analyze_mrt_archive` restricted
//! to that window — the §VI longevity answers survive expiry exactly.

use moas_core::pipeline::{analyze_mrt_archive, restrict_archive_window};
use moas_history::pipeline::{analyze_mrt_archive_service, StreamingArchiveConfig};
use moas_history::{HistoryService, RetentionPolicy, ServiceConfig, ValidityConfig};
use moas_lab::study::{Study, StudyConfig};
use moas_mrt::snapshot::DumpFormat;
use moas_net::Date;
use moas_routeviews::{write_window_archive, BackgroundMode, Collector};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

const DAYS: usize = 12;
const RETAIN_DAYS: u32 = 6;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("moas-history-svc-{}-{name}", std::process::id()))
}

#[test]
fn service_with_retention_and_daemon_matches_batch_on_retained_window() {
    let study = Study::build(StudyConfig::test(0.004));
    let dates: Vec<Date> = study.world.window.all_days()[..DAYS]
        .iter()
        .map(|d| d.date())
        .collect();

    let archive_dir = tmp("archive");
    std::fs::remove_dir_all(&archive_dir).ok();
    let files = {
        let mut collector = Collector::new(&study.world, &study.peers);
        write_window_archive(
            &mut collector,
            &archive_dir,
            0,
            DAYS,
            BackgroundMode::Sample(15),
            DumpFormat::V2,
        )
        .expect("write synthetic archive")
    };

    let store_dir = tmp("store");
    std::fs::remove_dir_all(&store_dir).ok();
    let service = HistoryService::open(
        &store_dir,
        ServiceConfig {
            start_date: dates[0],
            retention: RetentionPolicy::keep_days(RETAIN_DAYS),
            watermark_segments: 2,
            poll_interval: Duration::from_millis(50),
            daemon: true,
        },
    )
    .expect("open service");

    // Concurrent readers: snapshot and score §VI validity while the
    // writer ingests and the daemon compacts/expires underneath.
    let stop = AtomicBool::new(false);
    let snapshots_taken = AtomicU64::new(0);
    let report = std::thread::scope(|scope| {
        for reader in [service.reader(), service.reader()] {
            let stop = &stop;
            let snapshots_taken = &snapshots_taken;
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = reader.snapshot();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epochs must be monotonic: {} then {}",
                        last_epoch,
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    // Scoring a mid-ingest snapshot must always work;
                    // the answer evolves but never tears.
                    let report = snap.validity(ValidityConfig::default());
                    let (v, r, i) = report.tally();
                    assert_eq!(v + r + i, report.conflicts.len());
                    snapshots_taken.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        let report = analyze_mrt_archive_service(
            &dates,
            &files,
            &StreamingArchiveConfig::with_shards(4),
            &service,
        )
        .expect("streaming service scan");
        service.wait_idle();
        stop.store(true, Ordering::Relaxed);
        report
    });

    assert_eq!(report.days, DAYS);
    assert_eq!(report.records_skipped, 0);
    assert!(report.events_stored > 0);
    assert!(
        snapshots_taken.load(Ordering::Relaxed) > 0,
        "readers must have snapshotted during ingestion"
    );

    // Retention actually happened: days below the horizon were expired
    // from disk, cold history lives in the record table.
    let stats = service.stats();
    assert!(stats.tables_written >= 1, "daemon never compacted");
    assert!(stats.segments_expired > 0, "retention never expired");
    assert!(stats.bytes_expired > 0);
    assert!(stats.retained_bytes < stats.lifetime_bytes);
    assert_eq!(
        stats.retained_bytes,
        stats.lifetime_bytes - stats.bytes_expired,
        "retained/lifetime/expired must reconcile"
    );

    let snap = service.reader().snapshot();
    let horizon = snap.horizon_day();
    assert_eq!(horizon, DAYS as u32 - RETAIN_DAYS, "age horizon applied");

    // The pinned answers on the retained window equal the batch
    // timeline restricted to that window.
    let (retained_dates, retained_files) =
        restrict_archive_window(&dates, &files, horizon as usize);
    assert_eq!(retained_dates.len(), RETAIN_DAYS as usize);
    let (batch_tl, batch_skipped) = analyze_mrt_archive(
        retained_dates.clone(),
        retained_dates.len(),
        &retained_files,
    )
    .expect("batch scan of retained window");
    assert_eq!(batch_skipped, 0);
    assert!(
        batch_tl.total_conflicts() > 0,
        "retained window must contain conflicts for the test to mean anything"
    );

    assert_eq!(
        snap.total_conflicts(&retained_dates),
        batch_tl.total_conflicts(),
        "total_conflicts diverged on the retained window"
    );
    let mut got = snap.durations(&retained_dates);
    got.sort_unstable();
    let mut want = batch_tl.durations();
    want.sort_unstable();
    assert_eq!(got, want, "durations diverged on the retained window");

    // Longevity answers are part of the same replay: the §VI scoring
    // over the snapshot is deterministic per epoch.
    let snap2 = service.reader().snapshot();
    assert_eq!(snap2.epoch(), snap.epoch());
    assert_eq!(
        snap.validity(ValidityConfig::default()).tally(),
        snap2.validity(ValidityConfig::default()).tally(),
        "same epoch, same answers"
    );

    // Restart: the manifest-rooted state survives, and the answers on
    // the retained window are unchanged.
    let stats_before = service.stats();
    service.close().expect("close service");
    let reopened = HistoryService::open(
        &store_dir,
        ServiceConfig {
            start_date: dates[0],
            retention: RetentionPolicy::keep_days(RETAIN_DAYS),
            daemon: false,
            ..ServiceConfig::default()
        },
    )
    .expect("reopen service");
    let snap3 = reopened.reader().snapshot();
    assert_eq!(
        snap3.total_conflicts(&retained_dates),
        batch_tl.total_conflicts()
    );
    let mut got3 = snap3.durations(&retained_dates);
    got3.sort_unstable();
    assert_eq!(got3, want);
    assert_eq!(reopened.stats().lifetime_bytes, stats_before.lifetime_bytes);

    std::fs::remove_dir_all(&store_dir).ok();
    std::fs::remove_dir_all(&archive_dir).ok();
}
