//! Acceptance for the live collector-feed subsystem (`moas-feed`).
//!
//! * **Catch-up exactness:** a follower driven by the simulated
//!   collector produces, after catch-up, exactly the same
//!   `total_conflicts`/`durations` as batch `analyze_mrt_archive`
//!   over the same window, while `moas-serve` answers `/v1/feed`
//!   with a live cursor and epochs advance.
//! * **Restart/resume exactness:** kill the feed mid-file (durable
//!   cursor inside an in-flight update file), restart over the same
//!   store, and the final history *and* the final cursor equal an
//!   uninterrupted run, byte for byte — no re-ingestion, no double
//!   counting. The in-flight file is written truncated mid-record
//!   first, so tailing-without-poisoning is on the path.
//! * **Gap surfacing:** a skipped archive day is marked through the
//!   pipeline and surfaces as a `FeedGap` in `/v1/feed`.

use moas_core::pipeline::analyze_mrt_archive;
use moas_feed::{FeedConfig, FeedCursor, FeedFollower};
use moas_history::{HistoryService, RetentionPolicy, ServiceConfig};
use moas_lab::study::{Study, StudyConfig};
use moas_monitor::MonitorConfig;
use moas_mrt::snapshot::DumpFormat;
use moas_net::Date;
use moas_routeviews::{
    update_file_name, write_update_archive, write_window_archive, BackgroundMode, Collector,
    SimFeed,
};
use moas_serve::{QueryServer, QueryService, ServerConfig};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

const DAYS: usize = 10;
const SHARDS: usize = 2;
const BACKGROUND: BackgroundMode = BackgroundMode::Sample(15);

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("moas-feed-accept-{}-{name}", std::process::id()))
}

fn fresh(name: &str) -> PathBuf {
    let dir = tmp(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn window_dates(study: &Study) -> Vec<Date> {
    study.world.window.all_days()[..DAYS]
        .iter()
        .map(|d| d.date())
        .collect()
}

fn service_config(start: Date) -> ServiceConfig {
    ServiceConfig {
        start_date: start,
        retention: RetentionPolicy::keep_everything(),
        watermark_segments: 100,
        daemon: false,
        ..ServiceConfig::default()
    }
}

fn feed_config(archive: &std::path::Path, start: Date, checkpoint_bytes: u64) -> FeedConfig {
    FeedConfig {
        monitor: MonitorConfig::with_shards(SHARDS),
        checkpoint_bytes,
        ..FeedConfig::new(archive, start)
    }
}

/// Polls until the follower has consumed everything on disk.
fn catch_up(follower: &mut FeedFollower) {
    for _ in 0..10_000 {
        if follower.poll_once().expect("poll").caught_up {
            return;
        }
    }
    panic!("follower never caught up");
}

/// The batch reference over the same window: per-day table dumps.
fn batch_reference(study: &Study, dates: &[Date], name: &str) -> (usize, Vec<u32>) {
    let dir = fresh(name);
    let files = {
        let mut collector = Collector::new(&study.world, &study.peers);
        write_window_archive(&mut collector, &dir, 0, DAYS, BACKGROUND, DumpFormat::V2)
            .expect("write rib archive")
    };
    let (tl, skipped) = analyze_mrt_archive(dates.to_vec(), DAYS, &files).expect("batch scan");
    assert_eq!(skipped, 0);
    assert!(tl.total_conflicts() > 0, "window must contain conflicts");
    let mut durations = tl.durations();
    durations.sort_unstable();
    let total = tl.total_conflicts();
    std::fs::remove_dir_all(&dir).ok();
    (total, durations)
}

fn assert_history_matches_batch(
    service: &HistoryService,
    dates: &[Date],
    batch: &(usize, Vec<u32>),
    context: &str,
) {
    let snap = service.reader().snapshot();
    assert_eq!(
        snap.total_conflicts(dates),
        batch.0,
        "total_conflicts diverged: {context}"
    );
    let mut durations = snap.durations(dates);
    durations.sort_unstable();
    assert_eq!(durations, batch.1, "durations diverged: {context}");
}

fn get_json(addr: std::net::SocketAddr, target: &str) -> (u16, Value) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer
        .write_all(
            format!("GET {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line.split(' ').nth(1).unwrap().parse().unwrap();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(&mut reader, &mut body).expect("body");
    let body = String::from_utf8(body).expect("utf8");
    let json = serde_json::from_str(&body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"));
    (status, json)
}

fn u(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 {key:?} in {v:?}"))
}

/// Catch-up equivalence + `/v1/feed` served live.
#[test]
fn feed_catchup_matches_batch_and_serves_status() {
    let study = Study::build(StudyConfig::test(0.004));
    let dates = window_dates(&study);
    let batch = batch_reference(&study, &dates, "catchup-ribs");

    let archive = fresh("catchup-archive");
    {
        let mut collector = Collector::new(&study.world, &study.peers);
        write_update_archive(&mut collector, &archive, 0, DAYS, BACKGROUND)
            .expect("write update archive");
    }

    let store = fresh("catchup-store");
    let service = Arc::new(HistoryService::open(&store, service_config(dates[0])).unwrap());
    let mut follower = FeedFollower::open(
        feed_config(&archive, dates[0], 1 << 16),
        Arc::clone(&service),
    )
    .expect("open follower");

    let reader = service.reader();
    let epoch_before = reader.epoch();
    catch_up(&mut follower);
    let final_progress = follower.finalize().expect("finalize");
    assert!(final_progress.days_marked >= 1, "last day must be marked");
    assert!(
        reader.epoch() > epoch_before,
        "epochs must advance as the feed ingests"
    );

    // The follower's status is served live under /v1/feed.
    let query = Arc::new(
        QueryService::new(
            reader.clone(),
            ServerConfig {
                start_date: dates[0],
                ..ServerConfig::default()
            },
        )
        .with_feed_status(follower.status()),
    );
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind");
    let (status, feed) = get_json(server.local_addr(), "/v1/feed");
    assert_eq!(status, 200);
    assert_eq!(feed.get("running").and_then(Value::as_bool), Some(true));
    assert_eq!(feed.get("caught_up").and_then(Value::as_bool), Some(true));
    let cursor = feed.get("cursor").expect("cursor object");
    assert_eq!(
        cursor.get("file").and_then(Value::as_str),
        Some(update_file_name(dates[DAYS - 1], 0).as_str()),
        "live cursor must sit in the last update file"
    );
    assert!(u(cursor, "offset") > 0);
    assert_eq!(u(&feed, "gap_count"), 0);
    assert_eq!(u(&feed, "files_done"), DAYS as u64 - 1);
    assert!(u(&feed, "records") > 0);

    // And the history equals the batch scan exactly.
    let (cursor, report) = follower.shutdown().expect("shutdown");
    assert_eq!(cursor.next_day, DAYS as u32);
    assert!(report.routes > 0);
    assert_history_matches_batch(&service, &dates, &batch, "catch-up vs batch");

    server.shutdown();
    drop(query);
    Arc::try_unwrap(service)
        .ok()
        .expect("sole service handle")
        .close()
        .unwrap();
    std::fs::remove_dir_all(&archive).ok();
    std::fs::remove_dir_all(&store).ok();
}

/// Kill mid-file, restart, and both the history and the cursor equal
/// an uninterrupted run.
#[test]
fn mid_file_restart_resumes_byte_exact() {
    let study = Study::build(StudyConfig::test(0.004));
    let dates = window_dates(&study);
    let batch = batch_reference(&study, &dates, "restart-ribs");

    // Reference: one uninterrupted follower over the full archive.
    let reference_cursor: FeedCursor = {
        let archive = fresh("ref-archive");
        {
            let mut collector = Collector::new(&study.world, &study.peers);
            write_update_archive(&mut collector, &archive, 0, DAYS, BACKGROUND).unwrap();
        }
        let store = fresh("ref-store");
        let service = Arc::new(HistoryService::open(&store, service_config(dates[0])).unwrap());
        let mut follower =
            FeedFollower::open(feed_config(&archive, dates[0], 1), Arc::clone(&service)).unwrap();
        catch_up(&mut follower);
        follower.finalize().unwrap();
        let (cursor, _) = follower.shutdown().unwrap();
        assert_history_matches_batch(&service, &dates, &batch, "reference run vs batch");
        std::fs::remove_dir_all(&archive).ok();
        std::fs::remove_dir_all(&store).ok();
        cursor
    };

    // Interrupted: the simulated collector lands days 0..=3, then
    // leaves day 4 truncated mid-record; the follower checkpoints on
    // every poll, is killed mid-file, and a fresh process resumes.
    let archive = fresh("kill-archive");
    let store = fresh("kill-store");
    let mut collector = Collector::new(&study.world, &study.peers);
    let mut sim = SimFeed::new(&mut collector, &archive, 0, DAYS, BACKGROUND).unwrap();
    for _ in 0..4 {
        sim.append_day().unwrap().expect("day in window");
    }

    let killed_cursor: FeedCursor = {
        let service = Arc::new(HistoryService::open(&store, service_config(dates[0])).unwrap());
        let mut follower =
            FeedFollower::open(feed_config(&archive, dates[0], 1), Arc::clone(&service)).unwrap();
        catch_up(&mut follower);

        // Day 4 lands truncated mid-record; the follower must ingest
        // the complete records and keep the partial tail pending.
        let day4 = sim.begin_day().unwrap().expect("day 4 in window");
        catch_up(&mut follower);
        let cursor = follower.cursor().clone();
        assert_eq!(
            cursor.file,
            day4.path.file_name().unwrap().to_str().unwrap()
        );
        assert!(
            cursor.offset > 0 && cursor.offset < day4.bytes,
            "cursor must sit mid-file: offset {} of {}",
            cursor.offset,
            day4.bytes
        );
        // Kill: no shutdown, no finalize — engine and service dropped
        // with whatever the last checkpoint made durable.
        drop(follower);
        cursor
    };

    // The collector finishes day 4 and lands the rest of the window.
    sim.finish_day().unwrap();
    while sim.append_day().unwrap().is_some() {}

    // Restart over the same store: rebuild to the cursor, resume.
    let service = Arc::new(HistoryService::open(&store, service_config(dates[0])).unwrap());
    let mut follower =
        FeedFollower::open(feed_config(&archive, dates[0], 1), Arc::clone(&service)).unwrap();
    let resumed = follower.status().snapshot();
    assert_eq!(resumed.resumes, 1, "follower must resume from the cursor");
    assert_eq!(
        follower.cursor(),
        &killed_cursor,
        "resume starts at the kill point"
    );
    catch_up(&mut follower);
    follower.finalize().unwrap();
    let (final_cursor, _) = follower.shutdown().unwrap();

    // Byte-for-byte cursor exactness against the uninterrupted run.
    assert_eq!(final_cursor, reference_cursor);
    // And the history is exactly the batch answer — nothing lost,
    // nothing double-counted across the kill.
    assert_history_matches_batch(&service, &dates, &batch, "killed+resumed run vs batch");
    let suppressed = Arc::try_unwrap(service)
        .ok()
        .expect("sole service handle")
        .close()
        .unwrap();
    assert!(suppressed.events_appended > 0);

    std::fs::remove_dir_all(&archive).ok();
    std::fs::remove_dir_all(&store).ok();
}

/// The seal-vs-cursor crash window: the durable log holds events
/// *beyond* the persisted cursor (a crash between sealing and the
/// cursor rename). Resume must suppress the regenerated duplicates
/// via the per-shard sequence watermarks — totals stay exact, and
/// the suppression is visible in the status counters.
#[test]
fn stale_cursor_resume_suppresses_duplicates() {
    let study = Study::build(StudyConfig::test(0.004));
    let dates = window_dates(&study);
    let batch = batch_reference(&study, &dates, "stale-ribs");

    let archive = fresh("stale-archive");
    let store = fresh("stale-store");
    let mut collector = Collector::new(&study.world, &study.peers);
    let mut sim = SimFeed::new(&mut collector, &archive, 0, DAYS, BACKGROUND).unwrap();
    for _ in 0..3 {
        sim.append_day().unwrap();
    }

    // First life: consume three days, remember the cursor, consume
    // two more (their events get sealed), then die — and roll the
    // on-disk cursor back, as if the final rename never happened.
    let stale_cursor: FeedCursor = {
        let service = Arc::new(HistoryService::open(&store, service_config(dates[0])).unwrap());
        let mut follower =
            FeedFollower::open(feed_config(&archive, dates[0], 1), Arc::clone(&service)).unwrap();
        catch_up(&mut follower);
        let stale = follower.cursor().clone();
        sim.append_day().unwrap();
        sim.append_day().unwrap();
        catch_up(&mut follower);
        assert!(follower.cursor().records > stale.records);
        drop(follower);
        stale.persist(store.as_path()).unwrap();
        stale
    };

    // The collector lands the rest of the window.
    while sim.append_day().unwrap().is_some() {}

    // Second life: the log is ahead of the cursor; the watermarks
    // must absorb the overlap.
    let service = Arc::new(HistoryService::open(&store, service_config(dates[0])).unwrap());
    let mut follower =
        FeedFollower::open(feed_config(&archive, dates[0], 1), Arc::clone(&service)).unwrap();
    assert_eq!(follower.cursor(), &stale_cursor);
    catch_up(&mut follower);
    follower.finalize().unwrap();
    let snapshot = follower.status().snapshot();
    assert!(
        snapshot.suppressed_duplicates > 0,
        "the re-ingested overlap must be suppressed, not re-appended"
    );
    follower.shutdown().unwrap();

    assert_history_matches_batch(&service, &dates, &batch, "stale-cursor resume vs batch");
    Arc::try_unwrap(service)
        .ok()
        .expect("sole service handle")
        .close()
        .unwrap();
    std::fs::remove_dir_all(&archive).ok();
    std::fs::remove_dir_all(&store).ok();
}

/// A missing archive day is marked through the pipeline and surfaced
/// as a gap in `/v1/feed`.
#[test]
fn gap_day_is_marked_and_surfaced() {
    let study = Study::build(StudyConfig::test(0.004));
    let dates = window_dates(&study);

    let archive = fresh("gap-archive");
    let store = fresh("gap-store");
    let mut collector = Collector::new(&study.world, &study.peers);
    let mut sim = SimFeed::new(&mut collector, &archive, 0, 5, BACKGROUND).unwrap();
    sim.append_day().unwrap();
    sim.append_day().unwrap();
    let skipped = sim.skip_day().unwrap().expect("day 2 skipped");
    assert_eq!(skipped, dates[2]);
    sim.append_day().unwrap();
    sim.append_day().unwrap();

    let service = Arc::new(HistoryService::open(&store, service_config(dates[0])).unwrap());
    let mut follower =
        FeedFollower::open(feed_config(&archive, dates[0], 0), Arc::clone(&service)).unwrap();
    catch_up(&mut follower);
    let progress = follower.finalize().unwrap();
    assert_eq!(follower.cursor().gaps, 1);
    assert_eq!(progress.days_marked, 1, "finalize marks the last day");

    let snapshot = follower.status().snapshot();
    assert_eq!(snapshot.gap_count, 1);
    assert_eq!(snapshot.gaps.len(), 1);
    assert_eq!(snapshot.gaps[0].date, dates[2]);
    assert_eq!(snapshot.gaps[0].day, 2);

    // Served under /v1/feed.
    let query = Arc::new(
        QueryService::new(service.reader(), ServerConfig::default())
            .with_feed_status(follower.status()),
    );
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind");
    let (status, feed) = get_json(server.local_addr(), "/v1/feed");
    assert_eq!(status, 200);
    assert_eq!(u(&feed, "gap_count"), 1);
    let gaps = feed
        .get("gaps")
        .and_then(Value::as_array)
        .expect("gaps array");
    assert_eq!(gaps.len(), 1);
    assert_eq!(
        gaps[0].get("date").and_then(Value::as_str),
        Some(dates[2].to_string().as_str())
    );
    assert_eq!(u(&gaps[0], "day"), 2);

    // All five day positions were marked despite the hole: the gap
    // day got its (empty) mark so the store's day accounting is not
    // silently skewed.
    assert_eq!(follower.cursor().next_day, 5);

    // Without a feed attached, the route answers 404.
    let bare = QueryService::new(service.reader(), ServerConfig::default());
    let resp = bare.respond(&moas_serve::Request {
        method: "GET".into(),
        path: "/v1/feed".into(),
        query: Vec::new(),
        headers: Vec::new(),
        body: Vec::new(),
        keep_alive: false,
    });
    assert_eq!(resp.status, 404);

    server.shutdown();
    drop(query);
    follower.shutdown().unwrap();
    Arc::try_unwrap(service)
        .ok()
        .expect("sole service handle")
        .close()
        .unwrap();
    std::fs::remove_dir_all(&archive).ok();
    std::fs::remove_dir_all(&store).ok();
}
