//! Property test: streaming/batch equivalence on random day
//! transitions.
//!
//! For random window positions and background modes, the monitor —
//! seeded with the previous day's table and fed the
//! `day_transition` update stream — must report exactly the conflict
//! set batch `detect()` finds on the materialized next-day snapshot,
//! at several shard counts.

use moas_core::detect::detect;
use moas_lab::study::{Study, StudyConfig};
use moas_monitor::{MonitorConfig, MonitorEngine};
use moas_mrt::snapshot::midnight_timestamp;
use moas_net::{Asn, Prefix};
use moas_routeviews::updates::day_transition;
use moas_routeviews::{BackgroundMode, Collector};
use proptest::prelude::*;
use std::sync::OnceLock;

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::build(StudyConfig::test(0.004)))
}

fn conflict_set(conflicts: &[(Prefix, Vec<Asn>)]) -> &[(Prefix, Vec<Asn>)] {
    conflicts
}

fn arb_background() -> impl Strategy<Value = BackgroundMode> {
    prop_oneof![
        Just(BackgroundMode::None),
        (5usize..30).prop_map(BackgroundMode::Sample),
    ]
}

proptest! {
    #[test]
    fn monitor_matches_batch_on_random_transitions(
        pos in 0usize..600,
        background in arb_background(),
        shards in 1usize..=6,
    ) {
        let study = study();
        let mut collector = Collector::new(&study.world, &study.peers);
        let (prev, next, stream) =
            day_transition(&mut collector, pos, pos + 1, background);

        let mut engine = MonitorEngine::new(MonitorConfig::with_shards(shards));
        engine.seed_snapshot(&prev, midnight_timestamp(prev.date));
        engine.ingest_all(&stream);
        let live = engine.snapshot();
        let report = engine.finish();

        let batch = detect(&next);
        let expected: Vec<(Prefix, Vec<Asn>)> = batch
            .conflicts
            .iter()
            .map(|c| (c.prefix, c.origins.clone()))
            .collect();
        let got: Vec<(Prefix, Vec<Asn>)> = live
            .open_conflicts()
            .iter()
            .map(|c| (c.prefix, c.origins.clone()))
            .collect();
        prop_assert_eq!(
            conflict_set(&got),
            conflict_set(&expected),
            "transition {}→{} at {} shards",
            pos,
            pos + 1,
            shards
        );

        // The engine's route/prefix totals must match the snapshot's.
        prop_assert_eq!(report.routes as usize, next.len());
        prop_assert_eq!(report.prefixes, next.distinct_prefixes());
    }
}
