//! Acceptance for the observability registry: the record path must
//! stay exact under concurrency while a scraper renders, and the
//! Prometheus exposition must be byte-stable (label escaping,
//! histogram `_bucket`/`_sum`/`_count` invariants, type lines).

use moas_obs::Registry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Pulls every value for `series` (exact name match, any labels) out
/// of a rendered exposition, in document order.
fn series_values(body: &str, series: &str) -> Vec<u64> {
    body.lines()
        .filter_map(|line| {
            let rest = line.strip_prefix(series)?;
            if !(rest.starts_with('{') || rest.starts_with(' ')) {
                return None;
            }
            line.rsplit(' ').next()?.parse().ok()
        })
        .collect()
}

/// Threads hammer a shared counter and histogram while a scraper
/// renders continuously: every render must be internally consistent
/// (cumulative buckets monotone, `+Inf` equal to `_count`), and the
/// final totals must be exact — no lost updates, no torn reads.
#[test]
fn record_path_is_exact_while_scraper_renders() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;

    let registry = Arc::new(Registry::new());
    let counter = registry.counter("hammer_ops_total", "Operations performed.");
    let hist = registry.histogram("hammer_lat_us", "Synthetic latency.");
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let hammers: Vec<_> = (0..THREADS)
            .map(|t| {
                let counter = counter.clone();
                let hist = hist.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        counter.add(1);
                        hist.observe((t as u64 * 7 + i) % 5_000);
                    }
                })
            })
            .collect();

        let scraper = {
            let registry = Arc::clone(&registry);
            let done = &done;
            scope.spawn(move || {
                let mut renders = 0u32;
                while !done.load(Ordering::Relaxed) || renders == 0 {
                    let body = registry.render_prometheus();
                    let buckets = series_values(&body, "hammer_lat_us_bucket");
                    assert!(
                        buckets.windows(2).all(|w| w[0] <= w[1]),
                        "cumulative buckets must never decrease: {buckets:?}"
                    );
                    let count = series_values(&body, "hammer_lat_us_count");
                    assert_eq!(
                        buckets.last().copied(),
                        count.first().copied(),
                        "+Inf bucket must equal _count in every render"
                    );
                    let ops = series_values(&body, "hammer_ops_total");
                    assert!(ops[0] <= THREADS as u64 * PER_THREAD);
                    renders += 1;
                }
            })
        };

        for h in hammers {
            h.join().expect("hammer thread");
        }
        done.store(true, Ordering::Relaxed);
        scraper.join().expect("scraper thread");
    });

    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(counter.get(), total, "counter adds must be exact");
    let snap = hist.snapshot();
    assert_eq!(snap.count(), total, "histogram observations must be exact");
    let body = registry.render_prometheus();
    assert_eq!(series_values(&body, "hammer_ops_total"), vec![total]);
    assert_eq!(series_values(&body, "hammer_lat_us_count"), vec![total]);
}

/// The exposition format, pinned byte-for-byte: `# HELP`/`# TYPE`
/// once per family, label values escaped (backslash, quote, newline),
/// cumulative histogram buckets with trailing empties elided, `+Inf`
/// always present and equal to `_count`.
#[test]
fn exposition_format_is_pinned() {
    let r = Registry::new();
    let g = r.gauge("demo_depth", "Queue depth.");
    g.set(7);
    let h = r.histogram("demo_lat_us", "Latency in microseconds.");
    h.observe(1);
    h.observe(3);
    h.observe(300);
    let c = r.counter_with(
        "demo_requests_total",
        &[("path", "a\\b\"c\nd")],
        "Requests by path.",
    );
    c.add(2);

    let expected = concat!(
        "# HELP demo_depth Queue depth.\n",
        "# TYPE demo_depth gauge\n",
        "demo_depth 7\n",
        "# HELP demo_lat_us Latency in microseconds.\n",
        "# TYPE demo_lat_us histogram\n",
        "demo_lat_us_bucket{le=\"1\"} 1\n",
        "demo_lat_us_bucket{le=\"2\"} 1\n",
        "demo_lat_us_bucket{le=\"4\"} 2\n",
        "demo_lat_us_bucket{le=\"8\"} 2\n",
        "demo_lat_us_bucket{le=\"16\"} 2\n",
        "demo_lat_us_bucket{le=\"32\"} 2\n",
        "demo_lat_us_bucket{le=\"64\"} 2\n",
        "demo_lat_us_bucket{le=\"128\"} 2\n",
        "demo_lat_us_bucket{le=\"256\"} 2\n",
        "demo_lat_us_bucket{le=\"512\"} 3\n",
        "demo_lat_us_bucket{le=\"+Inf\"} 3\n",
        "demo_lat_us_sum 304\n",
        "demo_lat_us_count 3\n",
        "# HELP demo_requests_total Requests by path.\n",
        "# TYPE demo_requests_total counter\n",
        "demo_requests_total{path=\"a\\\\b\\\"c\\nd\"} 2\n",
        // Every registry pre-registers its journal's eviction counter
        // so dropped events are visible without any journal traffic.
        "# HELP moas_journal_dropped_total Journal events evicted by ring overflow before being read.\n",
        "# TYPE moas_journal_dropped_total counter\n",
        "moas_journal_dropped_total 0\n",
    );
    assert_eq!(r.render_prometheus(), expected);
}

/// Labeled series of one family share a single `# TYPE` declaration,
/// and an empty histogram still renders `+Inf`/`_sum`/`_count`.
#[test]
fn families_group_and_empty_histograms_render() {
    let r = Registry::new();
    r.counter_with("multi_total", &[("k", "a")], "Multi.").inc();
    r.counter_with("multi_total", &[("k", "b")], "Multi.")
        .add(2);
    let _empty = r.histogram("quiet_us", "Never observed.");

    let body = r.render_prometheus();
    assert_eq!(body.matches("# TYPE multi_total counter").count(), 1);
    assert!(body.contains("multi_total{k=\"a\"} 1\n"));
    assert!(body.contains("multi_total{k=\"b\"} 2\n"));
    assert!(body.contains("quiet_us_bucket{le=\"+Inf\"} 0\n"));
    assert!(body.contains("quiet_us_sum 0\n"));
    assert!(body.contains("quiet_us_count 0\n"));
}

/// The shared stage family keeps every pipeline stage one label
/// apart, and quantile estimation answers "no data" explicitly.
#[test]
fn stage_family_and_quantile_no_data_rule() {
    let r = Registry::new();
    let a = r.stage_histogram("alpha");
    let b = r.stage_histogram("beta");
    assert_eq!(a.snapshot().quantile(0.99), None, "no data is None, not 0");
    a.observe(100);
    b.observe(1_000_000);
    let body = r.render_prometheus();
    assert_eq!(
        body.matches("# TYPE moas_stage_duration_us histogram")
            .count(),
        1,
        "stages are labels, not families"
    );
    assert!(body.contains("moas_stage_duration_us_count{stage=\"alpha\"} 1\n"));
    assert!(body.contains("moas_stage_duration_us_count{stage=\"beta\"} 1\n"));
    assert!(a.snapshot().quantile(0.5).unwrap() <= 128);
    assert!(b.snapshot().quantile(0.5).unwrap() > 65_536);
}
