//! Acceptance for the `/v1` protocol redesign: conditional requests,
//! cursor pagination, the uniform error envelope, and the SSE tail.
//!
//! * **Cursor crawl exactness:** paging `/v1/conflicts` and
//!   `/v1/validity` with `limit=` + `cursor=` reassembles exactly the
//!   unpaginated answer, page fields (`offset`, `returned`,
//!   `next_cursor`) are consistent, and a cursor minted at an older
//!   epoch answers a typed `410 cursor_expired`.
//! * **Conditional requests:** every cacheable 200 carries an `ETag`;
//!   replaying it via `If-None-Match` (exact, weak, or in a list)
//!   answers `304` with an empty body, counted in
//!   `responses_not_modified`; a non-matching validator re-renders.
//! * **Error envelope:** every error path — 400, 404, 405 (with
//!   `Allow`), 410 — answers
//!   `{"error":{"code","message","retry_after"}}`.
//! * **SSE tail:** `/v1/events/stream` frames journal events as
//!   `id:`/`event:`/`data:`, pushes events recorded mid-stream,
//!   resumes from `Last-Event-ID`, ends the stream cleanly at
//!   `sse_max_events`, and keeps idle connections alive with comment
//!   pings — all visible in the SSE server counters.

use moas_history::pipeline::{analyze_mrt_archive_service, StreamingArchiveConfig};
use moas_history::{HistoryService, RetentionPolicy, ServiceConfig};
use moas_lab::study::{Study, StudyConfig};
use moas_monitor::{MonitorEvent, SeqEvent};
use moas_mrt::snapshot::DumpFormat;
use moas_net::Date;
use moas_routeviews::{write_window_archive, BackgroundMode, Collector};
use moas_serve::{QueryServer, QueryService, Request, ServerConfig};
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const DAYS: usize = 8;

fn fresh(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "moas-server-protocol-{}-{name}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// One-shot request from raw head lines; returns status, headers
/// (lowercased names), and body.
fn raw_request(addr: SocketAddr, head: &str) -> (u16, Vec<(String, String)>, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    writer.write_all(head.as_bytes()).expect("send request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read status line");
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("read header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().expect("content-length");
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    (status, headers, String::from_utf8(body).expect("utf8 body"))
}

fn get_full(addr: SocketAddr, target: &str) -> (u16, Vec<(String, String)>, String) {
    raw_request(
        addr,
        &format!("GET {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"),
    )
}

fn get_conditional(
    addr: SocketAddr,
    target: &str,
    validator: &str,
) -> (u16, Vec<(String, String)>, String) {
    raw_request(
        addr,
        &format!(
            "GET {target} HTTP/1.1\r\nhost: t\r\nif-none-match: {validator}\r\nconnection: close\r\n\r\n"
        ),
    )
}

fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn parse(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("unparseable JSON ({e}): {body}"))
}

fn u(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 field {key:?} in {v:?}"))
}

fn strings(v: &Value, key: &str) -> Vec<String> {
    v.get(key)
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("missing array {key:?} in {v:?}"))
        .iter()
        .map(|s| s.as_str().expect("string element").to_string())
        .collect()
}

/// Asserts the body is the uniform error envelope and returns it.
fn assert_envelope(body: &str, code: &str) -> Value {
    let err = parse(body);
    let env = err
        .get("error")
        .unwrap_or_else(|| panic!("missing error envelope: {body}"))
        .clone();
    assert_eq!(
        env.get("code").and_then(Value::as_str),
        Some(code),
        "wrong error code: {body}"
    );
    assert!(
        env.get("message")
            .and_then(Value::as_str)
            .is_some_and(|m| !m.is_empty()),
        "envelope must carry a message: {body}"
    );
    assert!(
        env.get("retry_after").is_some(),
        "envelope must carry the retry_after key: {body}"
    );
    env
}

#[test]
fn cursors_etags_and_error_envelope() {
    let study = Study::build(StudyConfig::test(0.004));
    let dates: Vec<Date> = study.world.window.all_days()[..DAYS]
        .iter()
        .map(|d| d.date())
        .collect();

    let archive_dir = fresh("archive");
    let files = {
        let mut collector = Collector::new(&study.world, &study.peers);
        write_window_archive(
            &mut collector,
            &archive_dir,
            0,
            DAYS,
            BackgroundMode::Sample(15),
            DumpFormat::V2,
        )
        .expect("write synthetic archive")
    };

    let store_dir = fresh("store");
    let service = HistoryService::open(
        &store_dir,
        ServiceConfig {
            start_date: dates[0],
            retention: RetentionPolicy::keep_everything(),
            watermark_segments: 100,
            daemon: false,
            ..ServiceConfig::default()
        },
    )
    .expect("open service");
    analyze_mrt_archive_service(
        &dates,
        &files,
        &StreamingArchiveConfig::with_shards(4),
        &service,
    )
    .expect("streaming service scan");

    let query = Arc::new(QueryService::new(
        service.reader(),
        ServerConfig {
            start_date: dates[0],
            ..ServerConfig::default()
        },
    ));
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind server");
    let addr = server.local_addr();

    // A day with enough conflicts to need several pages at limit=2.
    let (date, unpaged) = dates
        .iter()
        .find_map(|date| {
            let (status, _, body) = get_full(addr, &format!("/v1/conflicts?date={date}"));
            assert_eq!(status, 200, "conflicts failed: {body}");
            let parsed = parse(&body);
            (u(&parsed, "count") >= 5).then_some((*date, parsed))
        })
        .expect("some day must hold at least 5 conflicts");
    let all_prefixes = strings(&unpaged, "prefixes");

    // A full cursor crawl of /v1/conflicts reassembles the
    // unpaginated body exactly.
    let mut crawled: Vec<String> = Vec::new();
    let mut cursor: Option<String> = None;
    for _ in 0..1_000 {
        let target = match &cursor {
            None => format!("/v1/conflicts?date={date}&limit=2"),
            Some(c) => format!("/v1/conflicts?date={date}&limit=2&cursor={c}"),
        };
        let (status, _, body) = get_full(addr, &target);
        assert_eq!(status, 200, "{target} failed: {body}");
        let page = parse(&body);
        assert_eq!(u(&page, "epoch"), u(&unpaged, "epoch"));
        assert_eq!(u(&page, "count"), all_prefixes.len() as u64);
        assert_eq!(u(&page, "offset"), crawled.len() as u64);
        let prefixes = strings(&page, "prefixes");
        assert_eq!(u(&page, "returned"), prefixes.len() as u64);
        assert!(prefixes.len() <= 2, "page must respect limit");
        crawled.extend(prefixes);
        match page.get("next_cursor").and_then(Value::as_str) {
            Some(c) => cursor = Some(c.to_string()),
            None => {
                cursor = None;
                break;
            }
        }
    }
    assert!(cursor.is_none(), "crawl must terminate");
    assert_eq!(
        crawled, all_prefixes,
        "cursor crawl must reassemble the unpaginated prefix list"
    );

    // Same protocol on /v1/validity: the paged rows reassemble the
    // single-page answer.
    let (_, _, body) = get_full(addr, "/v1/validity?limit=100000");
    let reference = parse(&body);
    let reference_rows: Vec<(String, u64)> = reference
        .get("conflicts")
        .and_then(Value::as_array)
        .expect("rows")
        .iter()
        .map(|row| {
            (
                row.get("prefix")
                    .and_then(Value::as_str)
                    .unwrap()
                    .to_string(),
                u(row, "open_secs"),
            )
        })
        .collect();
    assert!(
        reference_rows.len() >= 5,
        "window must score at least 5 conflicts"
    );
    let mut crawled_rows: Vec<(String, u64)> = Vec::new();
    let mut cursor: Option<String> = None;
    for _ in 0..1_000 {
        let target = match &cursor {
            None => "/v1/validity?limit=3".to_string(),
            Some(c) => format!("/v1/validity?limit=3&cursor={c}"),
        };
        let (status, _, body) = get_full(addr, &target);
        assert_eq!(status, 200, "{target} failed: {body}");
        let page = parse(&body);
        assert_eq!(u(&page, "matched"), reference_rows.len() as u64);
        for row in page
            .get("conflicts")
            .and_then(Value::as_array)
            .expect("rows")
        {
            crawled_rows.push((
                row.get("prefix")
                    .and_then(Value::as_str)
                    .unwrap()
                    .to_string(),
                u(row, "open_secs"),
            ));
        }
        match page.get("next_cursor").and_then(Value::as_str) {
            Some(c) => cursor = Some(c.to_string()),
            None => break,
        }
    }
    assert_eq!(
        crawled_rows, reference_rows,
        "validity crawl must reassemble the single-page rows in order"
    );

    // Conditional requests: capture every ETag, replay it, and every
    // replay must answer 304 with an empty body.
    let conditional_targets = [
        format!("/v1/conflicts?date={date}"),
        format!("/v1/conflicts?date={date}&limit=2"),
        "/v1/validity?limit=3".to_string(),
        format!("/v1/timeline?days={DAYS}"),
    ];
    let mut replays = 0u64;
    for target in &conditional_targets {
        let (status, headers, body) = get_full(addr, target);
        assert_eq!(status, 200, "{target} failed: {body}");
        let etag = header(&headers, "etag")
            .unwrap_or_else(|| panic!("{target}: cacheable 200 must carry an etag"))
            .to_string();

        for validator in [
            etag.clone(),
            format!("W/{etag}"),
            format!("\"bogus\", {etag}"),
        ] {
            let (status, headers, not_modified) = get_conditional(addr, target, &validator);
            assert_eq!(
                status, 304,
                "{target} with {validator:?} must answer 304: {not_modified}"
            );
            assert!(not_modified.is_empty(), "304 must carry no body");
            assert_eq!(
                header(&headers, "etag"),
                Some(etag.as_str()),
                "304 must restate the etag"
            );
            replays += 1;
        }

        // A non-matching validator re-renders the full body.
        let (status, _, rendered) = get_conditional(addr, target, "\"bogus\"");
        assert_eq!(status, 200);
        assert_eq!(rendered, body, "re-render must equal the original body");
    }
    let (_, _, metrics_body) = get_full(addr, "/v1/metrics");
    let metrics = parse(&metrics_body);
    let server_stats = metrics.get("server").expect("server metrics");
    assert_eq!(
        u(server_stats, "responses_not_modified"),
        replays,
        "every 304 must be counted"
    );

    // Cursor misuse: each is a typed envelope.
    let first_cursor = {
        let (_, _, body) = get_full(addr, &format!("/v1/conflicts?date={date}&limit=2"));
        parse(&body)
            .get("next_cursor")
            .and_then(Value::as_str)
            .expect("5+ conflicts at limit=2 must leave a next page")
            .to_string()
    };
    for (target, want, code) in [
        (
            format!("/v1/conflicts?date={date}&cursor={first_cursor}"),
            400,
            "bad_request", // cursor without limit
        ),
        (
            format!("/v1/conflicts?date={date}&limit=2&cursor=zzz"),
            400,
            "bad_request", // malformed cursor
        ),
        (
            format!("/v1/conflicts?date={date}&limit=0"),
            400,
            "bad_request", // zero limit
        ),
        (
            "/v1/validity?limit=3&cursor=zzz.1".to_string(),
            400,
            "bad_request",
        ),
    ] {
        let (status, _, body) = get_full(addr, &target);
        assert_eq!(status, want, "{target} must answer {want}: {body}");
        assert_envelope(&body, code);
    }

    // A stale cursor: the epoch advances underneath the crawl.
    let stray = SeqEvent {
        shard: 0,
        seq: u64::MAX,
        event: MonitorEvent::ConflictClosed {
            prefix: "203.0.113.0/24".parse().expect("prefix"),
            opened_at: 0,
            at: 1,
        },
    };
    service.append(&[stray]).expect("append stray event");
    service.mark_day(DAYS).expect("mark day");
    let (status, _, body) = get_full(
        addr,
        &format!("/v1/conflicts?date={date}&limit=2&cursor={first_cursor}"),
    );
    assert_eq!(status, 410, "stale cursor must answer 410: {body}");
    assert_envelope(&body, "cursor_expired");

    // Method and route errors carry the envelope too; 405 names the
    // allowed method.
    let (status, headers, body) = raw_request(
        addr,
        "POST /v1/stats HTTP/1.1\r\nhost: t\r\ncontent-length: 0\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 405, "POST must answer 405: {body}");
    assert_eq!(header(&headers, "allow"), Some("GET"));
    assert_envelope(&body, "method_not_allowed");

    let (status, _, body) = get_full(addr, "/nope");
    assert_eq!(status, 404);
    assert_envelope(&body, "not_found");

    // The stream route never goes through the JSON router.
    let resp = query.respond(&Request {
        method: "GET".to_string(),
        path: "/v1/events/stream".to_string(),
        query: Vec::new(),
        headers: Vec::new(),
        body: Vec::new(),
        keep_alive: true,
    });
    assert_eq!(resp.status, 400);
    assert_envelope(&resp.body, "bad_request");

    server.shutdown();
    drop(query);
    service.close().expect("close service");
    std::fs::remove_dir_all(&archive_dir).ok();
    std::fs::remove_dir_all(&store_dir).ok();
}

/// One SSE frame: `(id, event, data)` — `id` absent on comment-less
/// control frames like `end_of_stream`.
type Frame = (Option<u64>, String, String);

/// Reads one SSE frame (skipping `: ping` comments); `None` on EOF.
fn read_frame<R: BufRead>(reader: &mut R) -> Option<Frame> {
    let mut id = None;
    let mut event = String::new();
    let mut data = String::new();
    let mut saw_field = false;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read frame line") == 0 {
            return None;
        }
        let line = line.trim_end_matches('\n');
        if line.is_empty() {
            if saw_field {
                return Some((id, event, data));
            }
            continue; // blank after a comment / the retry preamble
        }
        if let Some(rest) = line.strip_prefix("id: ") {
            id = Some(rest.parse().expect("numeric id"));
            saw_field = true;
        } else if let Some(rest) = line.strip_prefix("event: ") {
            event = rest.to_string();
            saw_field = true;
        } else if let Some(rest) = line.strip_prefix("data: ") {
            data = rest.to_string();
            saw_field = true;
        } else if line.starts_with(':') || line.starts_with("retry: ") {
            continue; // comment ping / reconnect hint
        } else {
            panic!("unexpected SSE line {line:?}");
        }
    }
}

/// Opens the SSE stream and returns the buffered reader positioned
/// after the response headers.
fn open_stream(addr: SocketAddr, head: &str) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    writer.write_all(head.as_bytes()).expect("send request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read status line");
    assert!(
        line.starts_with("HTTP/1.1 200"),
        "stream must open with 200: {line:?}"
    );
    let mut saw_content_type = false;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("read header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if header.eq_ignore_ascii_case("content-type: text/event-stream") {
            saw_content_type = true;
        }
    }
    assert!(saw_content_type, "stream must be text/event-stream");
    reader
}

#[test]
fn sse_tail_streams_resumes_and_bounds() {
    let store_dir = fresh("sse-store");
    let service = HistoryService::open(
        &store_dir,
        ServiceConfig {
            start_date: Date::ymd(2024, 1, 1),
            daemon: false,
            ..ServiceConfig::default()
        },
    )
    .expect("open service");

    let query = Arc::new(QueryService::new(
        service.reader(),
        ServerConfig {
            start_date: Date::ymd(2024, 1, 1),
            sse_poll_interval: Duration::from_millis(20),
            sse_max_events: 4,
            // Keep the journal quiet: no slow-request entries.
            slow_request_micros: 0,
            ..ServerConfig::default()
        },
    ));
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind server");
    let addr = server.local_addr();

    let journal = query.registry().journal();
    journal.record("proto_marker", "m1");
    journal.record("proto_marker", "m2");
    let seqs: Vec<u64> = journal
        .events()
        .iter()
        .filter(|e| e.kind == "proto_marker")
        .map(|e| e.seq)
        .collect();
    assert_eq!(seqs.len(), 2);

    // Connection 1: a fresh subscription replays the whole ring —
    // including seq 0, the journal's first-ever event. Two frames
    // arrive immediately, two more as they are recorded, then the
    // per-connection bound ends the stream cleanly.
    let mut stream = open_stream(addr, "GET /v1/events/stream HTTP/1.1\r\nhost: t\r\n\r\n");
    let first = read_frame(&mut stream).expect("first frame");
    assert_eq!(first.0, Some(seqs[0]));
    assert_eq!(first.1, "proto_marker");
    let data = parse(&first.2);
    assert_eq!(u(&data, "seq"), seqs[0]);
    assert_eq!(
        data.get("kind").and_then(Value::as_str),
        Some("proto_marker")
    );
    assert_eq!(data.get("message").and_then(Value::as_str), Some("m1"));
    let second = read_frame(&mut stream).expect("second frame");
    assert_eq!(second.0, Some(seqs[1]));

    journal.record("proto_marker", "m3");
    journal.record("proto_marker", "m4");
    let third = read_frame(&mut stream).expect("third frame");
    assert_eq!(
        parse(&third.2).get("message").and_then(Value::as_str),
        Some("m3")
    );
    let fourth = read_frame(&mut stream).expect("fourth frame");
    assert_eq!(
        parse(&fourth.2).get("message").and_then(Value::as_str),
        Some("m4")
    );

    let end = read_frame(&mut stream).expect("end_of_stream frame");
    assert_eq!(end.1, "end_of_stream", "bound must end the stream");
    assert!(
        read_frame(&mut stream).is_none(),
        "server must close after end_of_stream"
    );
    drop(stream);

    // Connection 2: Last-Event-ID resumes mid-journal; only the later
    // markers replay, and an idle stream keeps pinging.
    let mut stream = open_stream(
        addr,
        &format!(
            "GET /v1/events/stream HTTP/1.1\r\nhost: t\r\nlast-event-id: {}\r\n\r\n",
            seqs[1]
        ),
    );
    let replay = read_frame(&mut stream).expect("resumed frame");
    assert_eq!(
        parse(&replay.2).get("message").and_then(Value::as_str),
        Some("m3")
    );
    let replay = read_frame(&mut stream).expect("resumed frame");
    assert_eq!(
        parse(&replay.2).get("message").and_then(Value::as_str),
        Some("m4")
    );
    // With a 20ms poll interval a comment ping lands within a second.
    let mut line = String::new();
    loop {
        line.clear();
        assert!(
            stream.read_line(&mut line).expect("read ping") > 0,
            "stream must stay open while idle"
        );
        if line.starts_with(": ping") {
            break;
        }
    }
    drop(stream);

    let (_, _, body) = get_full(addr, "/v1/metrics");
    let metrics = parse(&body);
    let server_stats = metrics.get("server").expect("server metrics");
    assert_eq!(u(server_stats, "sse_connections"), 2);
    assert_eq!(u(server_stats, "sse_events_sent"), 6);
    assert_eq!(u(server_stats, "sse_slow_disconnects"), 0);

    server.shutdown();
    drop(query);
    service.close().expect("close service");
    std::fs::remove_dir_all(&store_dir).ok();
}
