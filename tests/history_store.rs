//! Acceptance: the persistent history store is exact and useful.
//!
//! (1) Single-pass streaming archive analysis
//!     (`moas_history::pipeline::analyze_mrt_archive_streaming`)
//!     produces a history store whose *stored record set* reproduces
//!     batch `analyze_mrt_archive`'s [`Timeline`] exactly —
//!     `total_conflicts()` and sorted `durations()` — on a multi-day
//!     synthetic archive, at two monitor shard counts.
//!
//! (2) §VI validity scoring over a simulated multi-month window
//!     classifies long-lived conflicts as valid per the §VI-F
//!     threshold, flags injected short-lived misconfiguration
//!     episodes, upgrades recurring episodes via the affinity index,
//!     and reconciles with `causes::score_duration_heuristic`.

use moas_core::pipeline::analyze_mrt_archive;
use moas_history::pipeline::{analyze_mrt_archive_streaming, StreamingArchiveConfig};
use moas_history::{HistoryStore, ValidityConfig, ValidityReport, Verdict};
use moas_lab::study::{Study, StudyConfig};
use moas_monitor::{MonitorEvent, SeqEvent};
use moas_mrt::snapshot::{midnight_timestamp, DumpFormat};
use moas_net::{Asn, Date, Prefix};
use moas_routeviews::{write_window_archive, BackgroundMode, Collector};
use std::path::PathBuf;

const START: usize = 0;
const DAYS: usize = 12;
const BACKGROUND: BackgroundMode = BackgroundMode::Sample(15);

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("moas-history-accept-{}-{name}", std::process::id()))
}

fn window_dates(study: &Study) -> Vec<Date> {
    study.world.window.all_days()[START..START + DAYS]
        .iter()
        .map(|d| d.date())
        .collect()
}

#[test]
fn streaming_archive_store_matches_batch_timeline() {
    let study = Study::build(StudyConfig::test(0.004));
    let dates = window_dates(&study);
    let archive_dir = tmp("archive");
    std::fs::remove_dir_all(&archive_dir).ok();
    let files = {
        let mut collector = Collector::new(&study.world, &study.peers);
        write_window_archive(
            &mut collector,
            &archive_dir,
            START,
            START + DAYS,
            BACKGROUND,
            DumpFormat::V2,
        )
        .expect("write synthetic archive")
    };
    assert_eq!(files.len(), DAYS);

    // The batch reference: per-day table scans, sharded across files.
    let (batch_tl, batch_skipped) =
        analyze_mrt_archive(dates.clone(), DAYS, &files).expect("batch archive scan");
    assert_eq!(batch_skipped, 0);
    assert!(
        batch_tl.total_conflicts() > 0,
        "window must contain conflicts for the test to mean anything"
    );
    let mut batch_durations = batch_tl.durations();
    batch_durations.sort_unstable();

    for shards in [1usize, 4] {
        let store_dir = tmp(&format!("store-{shards}"));
        std::fs::remove_dir_all(&store_dir).ok();
        let mut store = HistoryStore::open(&store_dir).unwrap();
        let report = analyze_mrt_archive_streaming(
            &dates,
            &files,
            &StreamingArchiveConfig::with_shards(shards),
            &mut store,
        )
        .expect("streaming archive scan");

        assert_eq!(report.days, DAYS);
        assert_eq!(report.records_skipped, 0);
        assert!(report.events_stored > 0, "no lifecycle events persisted");
        assert!(
            report.monitor.events.is_empty(),
            "all events drain into the store"
        );

        // The stored record set reproduces the batch timeline exactly.
        let (conflicts, scan) = store.compact().unwrap();
        assert!(scan.corrupt.is_empty());
        assert_eq!(
            conflicts.total_conflicts(&dates, DAYS),
            batch_tl.total_conflicts(),
            "total_conflicts diverged at {shards} shards"
        );
        let mut stored_durations = conflicts.durations(&dates, DAYS);
        stored_durations.sort_unstable();
        assert_eq!(
            stored_durations, batch_durations,
            "durations diverged at {shards} shards"
        );

        // The raw stored log folds to the same timeline too.
        let (folded, _) = store.fold_timeline(&dates, DAYS).unwrap();
        assert_eq!(folded.total_conflicts(), batch_tl.total_conflicts());
        let mut folded_durations = folded.durations();
        folded_durations.sort_unstable();
        assert_eq!(folded_durations, batch_durations);

        // Store-side counters surface through the monitor report.
        let m = &report.monitor.metrics;
        assert_eq!(m.store_segments_written, store.stats().segments_written);
        assert!(m.store_segments_written > 0);
        assert_eq!(m.store_bytes_retained, store.stats().retained_bytes);
        assert!(m.store_bytes_retained > 0);
        assert_eq!(m.store_bytes_lifetime, store.stats().lifetime_bytes);
        assert_eq!(
            m.store_bytes_lifetime - m.store_bytes_retained,
            store.stats().bytes_expired,
            "retained vs lifetime difference is exactly what deletion reclaimed"
        );
        assert_eq!(m.day_marks, DAYS as u64);

        std::fs::remove_dir_all(&store_dir).ok();
    }
    std::fs::remove_dir_all(&archive_dir).ok();
}

/// Builds the multi-month event log: three long-lived conflicts, four
/// injected short-lived misconfiguration episodes (each straddling one
/// midnight so the daily-snapshot pipeline can see it at all), and one
/// short-lived but recurring origin pair.
fn multi_month_events(dates: &[Date]) -> (Vec<SeqEvent>, Vec<Prefix>, Vec<Prefix>, Prefix) {
    let base = midnight_timestamp(dates[0]);
    let day = |d: u32, secs: u32| base + d * 86_400 + secs;
    let mut seq = 0u64;
    let mut events: Vec<SeqEvent> = Vec::new();
    let mut push = |seq: &mut u64, event: MonitorEvent| {
        events.push(SeqEvent {
            shard: 0,
            seq: *seq,
            event,
        });
        *seq += 1;
    };

    // Long-lived valid practice: open on day 2, closed on day 80+.
    let long_prefixes: Vec<Prefix> = (0..3)
        .map(|i| format!("10.1.{i}.0/24").parse().unwrap())
        .collect();
    for (i, p) in long_prefixes.iter().enumerate() {
        let opened = day(2 + i as u32, 40_000);
        push(
            &mut seq,
            MonitorEvent::ConflictOpened {
                prefix: *p,
                origins: vec![Asn::new(100 + i as u32), Asn::new(200 + i as u32)],
                at: opened,
            },
        );
        push(
            &mut seq,
            MonitorEvent::ConflictClosed {
                prefix: *p,
                opened_at: opened,
                at: day(80 + i as u32, 10_000),
            },
        );
    }

    // Injected misconfigurations: ~4 hours each, straddling midnight.
    let fault_prefixes: Vec<Prefix> = (0..4)
        .map(|i| format!("10.2.{i}.0/24").parse().unwrap())
        .collect();
    for (i, p) in fault_prefixes.iter().enumerate() {
        let opened = day(10 + 7 * i as u32, 86_400 - 7_200);
        push(
            &mut seq,
            MonitorEvent::ConflictOpened {
                prefix: *p,
                origins: vec![Asn::new(8584), Asn::new(900 + i as u32)],
                at: opened,
            },
        );
        push(
            &mut seq,
            MonitorEvent::ConflictClosed {
                prefix: *p,
                opened_at: opened,
                at: opened + 14_400,
            },
        );
    }

    // Recurring multihomed pair: six short episodes spread over months,
    // same two origins every time.
    let recurring: Prefix = "10.3.0.0/24".parse().unwrap();
    for k in 0..6u32 {
        let opened = day(5 + 14 * k, 86_400 - 3_600);
        push(
            &mut seq,
            MonitorEvent::ConflictOpened {
                prefix: recurring,
                origins: vec![Asn::new(701), Asn::new(7007)],
                at: opened,
            },
        );
        push(
            &mut seq,
            MonitorEvent::ConflictClosed {
                prefix: recurring,
                opened_at: opened,
                at: opened + 7_200,
            },
        );
    }

    (events, long_prefixes, fault_prefixes, recurring)
}

#[test]
fn validity_scoring_over_multi_month_window() {
    let dates: Vec<Date> = (0..90)
        .map(|i| Date::ymd(2001, 1, 1).plus_days(i))
        .collect();
    let (events, long_prefixes, fault_prefixes, recurring) = multi_month_events(&dates);

    // Persist through the store (rotating weekly) rather than scoring
    // in memory — the whole point is that the log survives on disk.
    let dir = tmp("validity");
    std::fs::remove_dir_all(&dir).ok();
    let mut store = HistoryStore::open(&dir).unwrap();
    for (week, chunk) in events.chunks(4).enumerate() {
        store.append(chunk).unwrap();
        store.mark_day(week * 7).unwrap();
    }
    store.seal().unwrap();

    let (conflicts, scan) = store.compact().unwrap();
    assert!(scan.corrupt.is_empty());
    assert_eq!(conflicts.records().len(), 8);

    let config = ValidityConfig::with_threshold_days(7);
    let report = ValidityReport::build(&conflicts, config);

    // §VI-F: long-lived conflicts are valid practice.
    for p in &long_prefixes {
        assert_eq!(report.verdict_of(p), Some(Verdict::LikelyValid), "{p}");
    }
    // Injected short-lived misconfigurations are flagged.
    for p in &fault_prefixes {
        assert_eq!(report.verdict_of(p), Some(Verdict::LikelyInvalid), "{p}");
    }
    // The recurring pair is short-lived per episode but upgraded by
    // the affinity index ("co-announced this prefix before").
    assert_eq!(report.verdict_of(&recurring), Some(Verdict::RecurringValid));
    assert_eq!(report.tally(), (3, 1, 4));
    assert!(
        conflicts
            .affinity()
            .co_announcements(recurring, Asn::new(701), Asn::new(7007))
            >= 6
    );

    // Long-lived conflicts dominate the longevity percentile ranking.
    for c in &report.conflicts {
        if long_prefixes.contains(&c.prefix) {
            assert!(c.longevity_percentile > 0.5, "{}", c.prefix);
        }
    }

    // Reconciliation with the batch pipeline: fold the stored log into
    // a Timeline and score the day-granularity duration heuristic
    // against the report's verdicts. The only divergence must be the
    // recurring conflict — visible for 6 scattered days (≤ 7), so the
    // bare heuristic wrongly flags what the history recognizes as
    // established practice: the paper's "useful but not sufficient".
    let (tl, _) = store.fold_timeline(&dates, dates.len()).unwrap();
    assert_eq!(tl.total_conflicts(), 8);
    let score = report.reconcile(&tl, config.threshold_days());
    assert_eq!(score.true_valid, 3);
    assert_eq!(score.true_invalid, 4);
    assert_eq!(score.false_invalid, 1, "the affinity upgrade");
    assert_eq!(score.false_valid, 0);
    assert!(score.accuracy() < 1.0);
    assert_eq!(score.invalid_precision(), 0.8);

    std::fs::remove_dir_all(&dir).ok();
}
