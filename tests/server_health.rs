//! Acceptance for the observability surface: `/metrics` must serve
//! one valid Prometheus document covering monitor, history, feed, and
//! server from a shared registry; `/healthz` must answer whenever the
//! process does; `/readyz` must flip 503→200→503 across the first
//! epoch publish and an injected feed lag; and `/v1/events/log` must
//! surface journaled operational events. All checks are wire-level —
//! real sockets against a bound [`QueryServer`].

use moas_feed::{FeedConfig, FeedFollower};
use moas_history::{HistoryService, RetentionPolicy, ServiceConfig};
use moas_lab::study::{Study, StudyConfig};
use moas_net::Date;
use moas_obs::Registry;
use moas_routeviews::{write_update_archive, BackgroundMode, Collector};
use moas_serve::{FeedStatusSource, QueryServer, QueryService, ServerConfig};
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const DAYS: usize = 3;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("moas-server-health-{}-{name}", std::process::id()))
}

fn get(addr: SocketAddr, target: &str) -> (u16, String, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(
            format!("GET {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line.split(' ').nth(1).and_then(|s| s.parse().ok()).unwrap();
    let mut content_type = String::new();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => content_length = value.trim().parse().expect("length"),
                "content-type" => content_type = value.trim().to_string(),
                _ => {}
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, content_type, String::from_utf8(body).expect("utf8"))
}

fn parse(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"))
}

/// A feed stub whose lag the test controls directly.
struct StubFeed {
    lag: AtomicU64,
}

impl FeedStatusSource for StubFeed {
    fn status_json(&self) -> Value {
        Value::Object(vec![(
            "lag_seconds".into(),
            Value::U64(self.lag.load(Ordering::Relaxed)),
        )])
    }

    fn lag_seconds(&self) -> u64 {
        self.lag.load(Ordering::Relaxed)
    }
}

fn write_archive(name: &str, dates: &mut Vec<Date>) -> PathBuf {
    let study = Study::build(StudyConfig::test(0.004));
    *dates = study.world.window.all_days()[..DAYS]
        .iter()
        .map(|d| d.date())
        .collect();
    let archive_dir = tmp(name);
    std::fs::remove_dir_all(&archive_dir).ok();
    let mut collector = Collector::new(&study.world, &study.peers);
    write_update_archive(
        &mut collector,
        &archive_dir,
        0,
        DAYS,
        BackgroundMode::Sample(15),
    )
    .expect("write synthetic archive");
    archive_dir
}

fn open_service(dir: &PathBuf, start: Date) -> Arc<HistoryService> {
    std::fs::remove_dir_all(dir).ok();
    Arc::new(
        HistoryService::open(
            dir,
            ServiceConfig {
                start_date: start,
                retention: RetentionPolicy::keep_everything(),
                watermark_segments: 2,
                poll_interval: Duration::from_millis(50),
                daemon: true,
            },
        )
        .expect("open service"),
    )
}

/// `/readyz` flips 503→200 when the first epoch publishes, then
/// 503→200 again as an attached feed's lag crosses the configured
/// bound. `/healthz` answers 200 throughout.
#[test]
fn readyz_flips_across_epoch_publish_and_feed_lag() {
    let mut dates = Vec::new();
    let archive_dir = write_archive("flip-archive", &mut dates);
    let service = open_service(&tmp("flip-store"), dates[0]);

    let stub = Arc::new(StubFeed {
        lag: AtomicU64::new(0),
    });
    let registry = Arc::new(Registry::new());
    let query = Arc::new(
        QueryService::with_registry(
            service.reader(),
            ServerConfig {
                start_date: dates[0],
                ready_max_feed_lag_secs: 600,
                ..ServerConfig::default()
            },
            Arc::clone(&registry),
        )
        .with_feed_status(Arc::clone(&stub) as Arc<dyn FeedStatusSource>),
    );
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind");
    let addr = server.local_addr();

    // Percentiles are explicitly absent before the first completed
    // request (this request is the first — its own latency only lands
    // in the window after the response is built).
    let (status, _, body) = get(addr, "/v1/metrics");
    assert_eq!(status, 200);
    let server_stats = parse(&body);
    let server_stats = server_stats.get("server").expect("server block");
    assert_eq!(
        server_stats.get("p50_micros"),
        Some(&Value::Null),
        "no latency data must be null, not 0: {body}"
    );

    // Liveness is unconditional; readiness waits for the first epoch.
    let (status, _, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, _, body) = get(addr, "/readyz");
    assert_eq!(status, 503, "no epoch published yet: {body}");
    assert!(
        body.contains("epoch"),
        "503 must name the failing check: {body}"
    );

    // Ingest the archive through a follower: day marks seal segments
    // and publish epochs.
    let follower = FeedFollower::open(
        FeedConfig::new(&archive_dir, dates[0]),
        Arc::clone(&service),
    )
    .expect("open follower");
    let mut follower = follower;
    while !follower.poll_once().expect("poll").caught_up {}
    follower.finalize().expect("finalize");
    service.wait_idle();

    let (status, _, body) = get(addr, "/readyz");
    assert_eq!((status, body.as_str()), (200, "ready\n"), "epoch published");

    // Feed lag beyond the bound flips readiness back off.
    stub.lag.store(601, Ordering::Relaxed);
    let (status, _, body) = get(addr, "/readyz");
    assert_eq!(status, 503, "lag 601 > 600 must fail readiness");
    assert!(
        body.contains("lag"),
        "503 must name the failing check: {body}"
    );
    stub.lag.store(599, Ordering::Relaxed);
    let (status, _, _) = get(addr, "/readyz");
    assert_eq!(status, 200, "lag back under the bound");

    server.shutdown();
    follower.shutdown().expect("follower shutdown");
}

/// One shared registry, one scrape: `/metrics` must cover monitor,
/// history-store, feed, and server series in a single well-formed
/// Prometheus document, and `/v1/events/log` must surface journaled
/// events (slow requests at a 1µs threshold).
#[test]
fn one_scrape_covers_the_whole_pipeline() {
    let mut dates = Vec::new();
    let archive_dir = write_archive("scrape-archive", &mut dates);
    let service = open_service(&tmp("scrape-store"), dates[0]);

    let registry = Arc::new(Registry::new());
    let mut follower = FeedFollower::open_with_registry(
        FeedConfig::new(&archive_dir, dates[0]),
        Arc::clone(&service),
        Arc::clone(&registry),
    )
    .expect("open follower");
    while !follower.poll_once().expect("poll").caught_up {}
    follower.finalize().expect("finalize");
    service.wait_idle();

    let query = Arc::new(
        QueryService::with_registry(
            service.reader(),
            ServerConfig {
                start_date: dates[0],
                slow_request_micros: 1,
                ..ServerConfig::default()
            },
            Arc::clone(&registry),
        )
        .with_engine_metrics(service.metrics_handle().expect("engine attached"))
        .with_feed_status(follower.status()),
    );
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind");
    let addr = server.local_addr();

    // Drive some traffic so serve-side series are non-trivial.
    let (status, _, _) = get(addr, "/v1/stats");
    assert_eq!(status, 200);
    let (status, _, body) = get(addr, "/v1/feed");
    assert_eq!(status, 200);
    let feed = parse(&body);
    assert!(feed.get("lag").and_then(|l| l.get("lag_seconds")).is_some());
    assert!(feed.get("day").and_then(|d| d.get("files_seen")).is_some());
    assert!(feed.get("files_seen").and_then(Value::as_u64).unwrap() > 0);

    let (status, content_type, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        content_type.starts_with("text/plain"),
        "exposition is text: {content_type}"
    );
    for needle in [
        "# TYPE moas_monitor_records_ingested_total counter",
        "# TYPE moas_store_segments_written gauge",
        "# TYPE moas_feed_lag_seconds gauge",
        "# TYPE moas_serve_requests_total counter",
        "# TYPE moas_serve_request_duration_us histogram",
        "moas_stage_duration_us_count{stage=\"shard_apply\"}",
        "moas_stage_duration_us_count{stage=\"event_append\"}",
        "moas_stage_duration_us_count{stage=\"feed_poll\"}",
        "moas_stage_duration_us_count{stage=\"request_route\"}",
        "# TYPE moas_ingest_to_serve_lag_seconds gauge",
        "moas_serve_responses_total{class=\"2xx\"}",
    ] {
        assert!(body.contains(needle), "scrape missing {needle:?}:\n{body}");
    }
    // One family, one TYPE line — even with every subsystem sharing
    // the stage histogram.
    assert_eq!(
        body.matches("# TYPE moas_stage_duration_us histogram")
            .count(),
        1,
        "duplicate TYPE lines would be rejected by Prometheus"
    );
    // The lag watermark pair must have been fed from both sides.
    assert!(body.contains("moas_ingest_last_event_timestamp_seconds"));
    assert!(body.contains("moas_serve_last_event_timestamp_seconds"));

    // The journal surfaced the slow requests (threshold 1µs ⇒ all).
    let (status, _, body) = get(addr, "/v1/events/log");
    assert_eq!(status, 200);
    let log = parse(&body);
    assert!(log.get("recorded").and_then(Value::as_u64).unwrap() > 0);
    let events = match log.get("events") {
        Some(Value::Array(rows)) => rows.clone(),
        other => panic!("events must be an array, got {other:?}"),
    };
    assert!(
        events.iter().any(|e| {
            e.get("kind").and_then(|k| match k {
                Value::String(s) => Some(s == "slow_request"),
                _ => None,
            }) == Some(true)
        }),
        "slow requests must be journaled: {body}"
    );

    server.shutdown();
    follower.shutdown().expect("follower shutdown");
}
