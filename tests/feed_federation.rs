//! Acceptance for the federated collector-feed subsystem
//! (`moas_feed::Federation`).
//!
//! * **Equivalence pin:** a 4-collector federation over four copies of
//!   the same archive — clocks skewed within the dedup window — folds
//!   to exactly the single-collector history: same totals, durations,
//!   per-prefix episodes and flap counts, while the dedup counters
//!   show the three redundant copies were suppressed, not ingested.
//! * **Corroboration oracle:** under partial visibility (collectors
//!   hiding disjoint prefix sets), the per-conflict corroboration
//!   count served over the wire equals the hand-computed oracle
//!   `1 + Σ (collector sees the prefix)`, and the §VI verdict shifts
//!   only via the documented low-corroboration demotion.
//! * **Missing day:** one collector going dark for a day must not
//!   reopen or close conflicts the corroborated view keeps alive —
//!   the merged history still equals the single-collector fold, and
//!   the gap surfaces with the collector's name in `/v1/feed` and the
//!   operational event journal.
//! * **Cursor migration:** a store written by the pre-federation
//!   single follower (v1 `FEED_CURSOR`, killed mid-file) is adopted
//!   by a federation in place: resume starts at the exact kill point,
//!   nothing replays into the log twice, and the cursor is rewritten
//!   in the v2 format.
//! * **Permutation invariance (property):** the final per-origin
//!   vantage masks do not depend on the order collectors report the
//!   same sightings in.

use moas_core::pipeline::analyze_mrt_archive;
use moas_feed::{Federation, FederationConfig, FeedConfig, FeedCursor, FeedFollower};
use moas_history::{HistoryService, RetentionPolicy, ServiceConfig};
use moas_lab::study::{Study, StudyConfig};
use moas_monitor::{MonitorConfig, MonitorEngine, MonitorEvent};
use moas_mrt::record::MrtRecord;
use moas_mrt::snapshot::DumpFormat;
use moas_net::{Date, Ipv4Prefix, Prefix};
use moas_routeviews::{
    write_window_archive, BackgroundMode, Collector, SimCollectorSpec, SimFederation, SimFeed,
};
use moas_serve::{QueryServer, QueryService, ServerConfig};
use proptest::prelude::*;
use serde::Value;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

const DAYS: usize = 10;
const SHARDS: usize = 2;
const BACKGROUND: BackgroundMode = BackgroundMode::Sample(15);

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "moas-federation-accept-{}-{name}",
        std::process::id()
    ))
}

fn fresh(name: &str) -> PathBuf {
    let dir = tmp(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn window_dates(study: &Study) -> Vec<Date> {
    study.world.window.all_days()[..DAYS]
        .iter()
        .map(|d| d.date())
        .collect()
}

fn service_config(start: Date) -> ServiceConfig {
    ServiceConfig {
        start_date: start,
        retention: RetentionPolicy::keep_everything(),
        watermark_segments: 100,
        daemon: false,
        ..ServiceConfig::default()
    }
}

/// Polls until the federation has consumed everything on disk.
fn catch_up_fed(fed: &mut Federation) {
    for _ in 0..20_000 {
        if fed.poll_once().expect("poll").caught_up {
            return;
        }
    }
    panic!("federation never caught up");
}

fn catch_up(follower: &mut FeedFollower) {
    for _ in 0..10_000 {
        if follower.poll_once().expect("poll").caught_up {
            return;
        }
    }
    panic!("follower never caught up");
}

/// The batch reference over the same window: per-day table dumps.
fn batch_reference(study: &Study, dates: &[Date], name: &str) -> (usize, Vec<u32>) {
    let dir = fresh(name);
    let files = {
        let mut collector = Collector::new(&study.world, &study.peers);
        write_window_archive(&mut collector, &dir, 0, DAYS, BACKGROUND, DumpFormat::V2)
            .expect("write rib archive")
    };
    let (tl, skipped) = analyze_mrt_archive(dates.to_vec(), DAYS, &files).expect("batch scan");
    assert_eq!(skipped, 0);
    assert!(tl.total_conflicts() > 0, "window must contain conflicts");
    let mut durations = tl.durations();
    durations.sort_unstable();
    let total = tl.total_conflicts();
    std::fs::remove_dir_all(&dir).ok();
    (total, durations)
}

fn assert_history_matches_batch(
    service: &HistoryService,
    dates: &[Date],
    batch: &(usize, Vec<u32>),
    context: &str,
) {
    let snap = service.reader().snapshot();
    assert_eq!(
        snap.total_conflicts(dates),
        batch.0,
        "total_conflicts diverged: {context}"
    );
    let mut durations = snap.durations(dates);
    durations.sort_unstable();
    assert_eq!(durations, batch.1, "durations diverged: {context}");
}

/// The full per-prefix shape of a history — everything except the
/// corroboration column, which only a federated fold populates.
fn conflict_fingerprints(service: &HistoryService) -> Vec<String> {
    service
        .reader()
        .snapshot()
        .conflicts()
        .records()
        .iter()
        .map(|(p, r)| {
            format!(
                "{p} origins={:?} episodes={:?} flaps={} open={}",
                r.origins,
                r.episodes,
                r.flap_count,
                r.is_open()
            )
        })
        .collect()
}

fn get_json(addr: std::net::SocketAddr, target: &str) -> (u16, Value) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer
        .write_all(
            format!("GET {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line.split(' ').nth(1).unwrap().parse().unwrap();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(&mut reader, &mut body).expect("body");
    let body = String::from_utf8(body).expect("utf8");
    let json = serde_json::from_str(&body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"));
    (status, json)
}

fn u(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 {key:?} in {v:?}"))
}

fn s<'v>(v: &'v Value, key: &str) -> &'v str {
    v.get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string {key:?} in {v:?}"))
}

fn close_service(service: Arc<HistoryService>) {
    Arc::try_unwrap(service)
        .ok()
        .expect("sole service handle")
        .close()
        .unwrap();
}

/// Four collectors, identical archives, clocks skewed within the
/// dedup window: the merged fold equals the single-collector fold
/// exactly, the redundant copies dedup into corroborations, and the
/// federated status routes serve every vantage point.
#[test]
fn federation_over_identical_archives_equals_single_fold() {
    let study = Study::build(StudyConfig::test(0.004));
    let dates = window_dates(&study);
    let batch = batch_reference(&study, &dates, "eq-ribs");

    let base = fresh("eq-archives");
    let dirs = {
        let mut collector = Collector::new(&study.world, &study.peers);
        let mut sim = SimFederation::new(
            &mut collector,
            &base,
            0,
            DAYS,
            BACKGROUND,
            vec![
                SimCollectorSpec::new("a"),
                SimCollectorSpec::new("b").skewed(30),
                SimCollectorSpec::new("c").skewed(-45),
                SimCollectorSpec::new("d").skewed(60),
            ],
        )
        .unwrap();
        assert_eq!(sim.write_all().unwrap(), DAYS);
        sim.dirs()
    };

    // Reference: the pre-federation single follower over collector
    // a's (undistorted) copy.
    let ref_store = fresh("eq-ref-store");
    let ref_service = Arc::new(HistoryService::open(&ref_store, service_config(dates[0])).unwrap());
    let ref_cursor: FeedCursor = {
        let mut follower = FeedFollower::open(
            FeedConfig {
                monitor: MonitorConfig::with_shards(SHARDS),
                checkpoint_bytes: 1 << 16,
                ..FeedConfig::new(&dirs[0], dates[0])
            },
            Arc::clone(&ref_service),
        )
        .unwrap();
        catch_up(&mut follower);
        follower.finalize().unwrap();

        // Pin the legacy single-feed answer shape: no federated keys.
        let query = Arc::new(
            QueryService::new(ref_service.reader(), ServerConfig::default())
                .with_feed_status(follower.status()),
        );
        let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind");
        let (status, feed) = get_json(server.local_addr(), "/v1/feed");
        assert_eq!(status, 200);
        assert!(
            feed.get("collectors").is_none() && feed.get("deduped").is_none(),
            "single-feed shape must not grow federated keys: {feed:?}"
        );
        assert!(
            feed.get("cursor").unwrap().get("collector").is_none(),
            "single-feed cursor must not grow a collector field"
        );
        server.shutdown();
        drop(query);
        let (cursor, _) = follower.shutdown().unwrap();
        cursor
    };
    assert_history_matches_batch(&ref_service, &dates, &batch, "single fold vs batch");

    // Federation over all four copies.
    let store = fresh("eq-store");
    let service = Arc::new(HistoryService::open(&store, service_config(dates[0])).unwrap());
    let config = FederationConfig {
        monitor: MonitorConfig::with_shards(SHARDS),
        checkpoint_bytes: 1 << 16,
        ..FederationConfig::new(dates[0])
    }
    .collector("a", &dirs[0])
    .collector("b", &dirs[1])
    .collector("c", &dirs[2])
    .collector("d", &dirs[3]);
    let mut fed = Federation::open(config, Arc::clone(&service)).unwrap();
    catch_up_fed(&mut fed);
    fed.finalize().unwrap();

    // The tentpole pin: the merged timeline IS the single fold.
    assert_history_matches_batch(&service, &dates, &batch, "federated fold vs batch");
    assert_eq!(
        conflict_fingerprints(&service),
        conflict_fingerprints(&ref_service),
        "per-prefix episodes diverged between federated and single folds"
    );

    // Three of every four copies deduped into corroborations: the
    // engine saw exactly the single-collector record stream.
    let status = fed.status();
    assert_eq!(
        status.released(),
        ref_cursor.records,
        "released records must equal the single fold's ingest count"
    );
    assert_eq!(
        status.deduped(),
        3 * ref_cursor.records,
        "every record's three redundant skewed copies must dedup"
    );

    // Full corroboration: all four vantage points saw every origin.
    {
        let snap = service.reader().snapshot();
        for (prefix, rec) in snap.conflicts().records() {
            assert_eq!(
                rec.corroboration_count(),
                4,
                "{prefix} must be corroborated by all 4 collectors"
            );
        }
    }

    // Per-collector lag gauges replace the ambient one.
    for name in ["a", "b", "c", "d"] {
        assert!(
            fed.registry()
                .value("moas_feed_lag_seconds", &[("collector", name)])
                .is_some(),
            "missing moas_feed_lag_seconds{{collector={name:?}}}"
        );
    }

    // Federated status routes.
    let query = Arc::new(
        QueryService::new(service.reader(), ServerConfig::default()).with_feed_status(fed.status()),
    );
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind");
    let (code, feed) = get_json(server.local_addr(), "/v1/feed");
    assert_eq!(code, 200);
    assert_eq!(feed.get("caught_up").and_then(Value::as_bool), Some(true));
    assert!(u(&feed, "deduped") > 0);
    let blocks = feed
        .get("collectors")
        .and_then(Value::as_array)
        .expect("federated /v1/feed carries a collectors array");
    assert_eq!(blocks.len(), 4);
    // The aggregate keeps the single-feed keys (sums across units).
    assert_eq!(u(&feed, "records"), status.released());
    assert!(!s(feed.get("cursor").unwrap(), "collector").is_empty());

    let (code, cols) = get_json(server.local_addr(), "/v1/collectors");
    assert_eq!(code, 200);
    assert_eq!(u(&cols, "count"), 4);
    let names: Vec<&str> = cols
        .get("collectors")
        .and_then(Value::as_array)
        .expect("collectors array")
        .iter()
        .map(|b| s(b, "collector"))
        .collect();
    assert_eq!(names, ["a", "b", "c", "d"]);

    server.shutdown();
    drop(query);
    fed.shutdown().unwrap();
    close_service(service);
    close_service(ref_service);
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&store).ok();
    std::fs::remove_dir_all(&ref_store).ok();
}

/// Partial visibility: collectors hiding disjoint prefix sets yield
/// per-conflict corroboration counts matching the hand-computed
/// oracle, served over the wire, with the §VI verdict shifting only
/// via the documented low-corroboration demotion.
#[test]
fn partial_visibility_serves_corroboration_oracle() {
    let study = Study::build(StudyConfig::test(0.004));
    let dates = window_dates(&study);
    let batch = batch_reference(&study, &dates, "vis-ribs");

    // The conflicted prefix set, from the batch fold, picks the
    // hidden sets: conflicted[0] hidden from b, conflicted[1] hidden
    // from both b and c, conflicted[2] hidden from c.
    let conflicted: Vec<Prefix> = {
        let dir = fresh("vis-ribs-oracle");
        let files = {
            let mut collector = Collector::new(&study.world, &study.peers);
            write_window_archive(&mut collector, &dir, 0, DAYS, BACKGROUND, DumpFormat::V2).unwrap()
        };
        let (tl, _) = analyze_mrt_archive(dates.clone(), DAYS, &files).unwrap();
        let mut conflicted: Vec<Prefix> = tl
            .prefixes()
            .iter()
            .filter(|(_, r)| r.core_days > 0)
            .map(|(p, _)| *p)
            .collect();
        conflicted.sort();
        std::fs::remove_dir_all(&dir).ok();
        conflicted
    };
    assert!(
        conflicted.len() >= 4,
        "need at least 4 conflicted prefixes, got {}",
        conflicted.len()
    );
    let v4 = |p: &Prefix| match p {
        Prefix::V4(v) => *v,
        other => panic!("study prefixes are v4, got {other}"),
    };
    let hidden_b: Vec<Ipv4Prefix> = vec![v4(&conflicted[0]), v4(&conflicted[1])];
    let hidden_c: Vec<Ipv4Prefix> = vec![v4(&conflicted[1]), v4(&conflicted[2])];
    let oracle = |p: &Prefix| -> u32 {
        let p = v4(p);
        1 + u32::from(!hidden_b.contains(&p)) + u32::from(!hidden_c.contains(&p))
    };

    let base = fresh("vis-archives");
    let dirs = {
        let mut collector = Collector::new(&study.world, &study.peers);
        let mut sim = SimFederation::new(
            &mut collector,
            &base,
            0,
            DAYS,
            BACKGROUND,
            vec![
                SimCollectorSpec::new("a"),
                SimCollectorSpec::new("b").skewed(15).hiding(&hidden_b),
                SimCollectorSpec::new("c").skewed(25).hiding(&hidden_c),
            ],
        )
        .unwrap();
        sim.write_all().unwrap();
        sim.dirs()
    };

    let store = fresh("vis-store");
    let service = Arc::new(HistoryService::open(&store, service_config(dates[0])).unwrap());
    let config = FederationConfig {
        monitor: MonitorConfig::with_shards(SHARDS),
        checkpoint_bytes: 1 << 16,
        ..FederationConfig::new(dates[0])
    }
    .collector("a", &dirs[0])
    .collector("b", &dirs[1])
    .collector("c", &dirs[2]);
    let mut fed = Federation::open(config, Arc::clone(&service)).unwrap();
    catch_up_fed(&mut fed);
    fed.finalize().unwrap();

    // Collector a sees everything, so hiding prefixes from b and c
    // must not perturb the merged timeline.
    assert_history_matches_batch(&service, &dates, &batch, "partial visibility vs batch");

    // Every conflicted prefix's corroboration equals the oracle.
    {
        let snap = service.reader().snapshot();
        for (prefix, rec) in snap.conflicts().records() {
            assert_eq!(
                rec.corroboration_count(),
                oracle(prefix),
                "corroboration oracle diverged for {prefix}"
            );
        }
    }

    let query = Arc::new(
        QueryService::new(service.reader(), ServerConfig::default()).with_feed_status(fed.status()),
    );
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind");

    // Over the wire: /v1/prefix/{p} serves the oracle count.
    for p in &[&conflicted[0], &conflicted[1], &conflicted[3]] {
        let (code, body) = get_json(server.local_addr(), &format!("/v1/prefix/{p}"));
        assert_eq!(code, 200, "prefix {p}");
        let validity = body.get("validity").expect("validity block");
        assert_eq!(
            u(validity, "corroboration"),
            oracle(p) as u64,
            "wire corroboration diverged for {p}"
        );
    }

    // The verdict shifts only via the documented demotion: with
    // corroboration_min=1 the penalty is off; at the default (2), a
    // singly-corroborated conflict demotes iff its base verdict was
    // valid, and everything else is untouched.
    let weak = &conflicted[1]; // hidden from both b and c → count 1
    let (_, lenient) = get_json(
        server.local_addr(),
        &format!("/v1/prefix/{weak}?corroboration_min=1"),
    );
    let (_, strict) = get_json(server.local_addr(), &format!("/v1/prefix/{weak}"));
    let base_verdict = s(lenient.get("validity").unwrap(), "verdict").to_string();
    assert_ne!(base_verdict, "weakly_corroborated");
    let strict_verdict = s(strict.get("validity").unwrap(), "verdict");
    if base_verdict == "likely_valid" || base_verdict == "recurring_valid" {
        assert_eq!(strict_verdict, "weakly_corroborated");
    } else {
        assert_eq!(strict_verdict, base_verdict);
    }
    // A fully-corroborated prefix never demotes.
    let full = &conflicted[3];
    let (_, body) = get_json(server.local_addr(), &format!("/v1/prefix/{full}"));
    assert_ne!(
        s(body.get("validity").unwrap(), "verdict"),
        "weakly_corroborated"
    );

    // /v1/conflicts: the corroboration column is strictly opt-in.
    let date = dates[DAYS - 1];
    let (_, plain) = get_json(server.local_addr(), &format!("/v1/conflicts?date={date}"));
    assert!(
        plain.get("corroboration").is_none(),
        "default /v1/conflicts shape must not change"
    );
    let (_, with) = get_json(
        server.local_addr(),
        &format!("/v1/conflicts?date={date}&corroboration=1"),
    );
    let prefixes = with.get("prefixes").and_then(Value::as_array).unwrap();
    let counts = with
        .get("corroboration")
        .and_then(Value::as_array)
        .expect("opt-in corroboration column");
    assert_eq!(prefixes.len(), counts.len(), "parallel arrays must tile");
    for (p, c) in prefixes.iter().zip(counts) {
        let p: Prefix = p.as_str().unwrap().parse().unwrap();
        assert_eq!(c.as_u64().unwrap(), oracle(&p) as u64, "column for {p}");
    }

    server.shutdown();
    drop(query);
    fed.shutdown().unwrap();
    close_service(service);
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&store).ok();
}

/// One collector going dark for a day: the corroborated view rides
/// the gap (no spurious reopen/close), and the gap surfaces with the
/// collector's name in the status, `/v1/feed`, and the journal.
#[test]
fn missing_day_collector_keeps_corroborated_view_alive() {
    let study = Study::build(StudyConfig::test(0.004));
    let dates = window_dates(&study);
    let batch = batch_reference(&study, &dates, "gap-ribs");

    let base = fresh("gap-archives");
    let dirs = {
        let mut collector = Collector::new(&study.world, &study.peers);
        let mut sim = SimFederation::new(
            &mut collector,
            &base,
            0,
            DAYS,
            BACKGROUND,
            vec![
                SimCollectorSpec::new("a"),
                SimCollectorSpec::new("b").skewed(20).skipping(&[3]),
            ],
        )
        .unwrap();
        sim.write_all().unwrap();
        sim.dirs()
    };

    // Reference single fold over the full collector.
    let ref_store = fresh("gap-ref-store");
    let ref_service = Arc::new(HistoryService::open(&ref_store, service_config(dates[0])).unwrap());
    {
        let mut follower = FeedFollower::open(
            FeedConfig {
                monitor: MonitorConfig::with_shards(SHARDS),
                checkpoint_bytes: 1 << 16,
                ..FeedConfig::new(&dirs[0], dates[0])
            },
            Arc::clone(&ref_service),
        )
        .unwrap();
        catch_up(&mut follower);
        follower.finalize().unwrap();
        follower.shutdown().unwrap();
    }

    let store = fresh("gap-store");
    let service = Arc::new(HistoryService::open(&store, service_config(dates[0])).unwrap());
    let config = FederationConfig {
        monitor: MonitorConfig::with_shards(SHARDS),
        checkpoint_bytes: 1 << 16,
        ..FederationConfig::new(dates[0])
    }
    .collector("a", &dirs[0])
    .collector("b", &dirs[1]);
    let mut fed = Federation::open(config, Arc::clone(&service)).unwrap();
    catch_up_fed(&mut fed);
    fed.finalize().unwrap();

    // The gap must not reopen or close anything the corroborated view
    // keeps alive: the merged history equals the single fold exactly.
    assert_history_matches_batch(&service, &dates, &batch, "gapped federation vs batch");
    assert_eq!(
        conflict_fingerprints(&service),
        conflict_fingerprints(&ref_service),
        "b's dark day must not perturb the merged episodes"
    );

    // The gap is b's alone, by name, everywhere it surfaces.
    let gaps = fed.status().gaps();
    assert_eq!(gaps.len(), 1);
    assert_eq!(gaps[0].0, "b");
    assert_eq!(gaps[0].1.date, dates[3]);
    assert_eq!(gaps[0].1.day, 3);
    let cursors = fed.cursors();
    assert_eq!(cursors[0].gaps, 0, "collector a never gapped");
    assert_eq!(cursors[1].gaps, 1, "collector b's cursor counts its gap");

    let query = Arc::new(
        QueryService::with_registry(
            service.reader(),
            ServerConfig::default(),
            Arc::clone(fed.registry()),
        )
        .with_feed_status(fed.status()),
    );
    let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&query)).expect("bind");
    let (_, feed) = get_json(server.local_addr(), "/v1/feed");
    assert_eq!(u(&feed, "gap_count"), 1);
    let rows = feed.get("gaps").and_then(Value::as_array).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(s(&rows[0], "collector"), "b");
    assert_eq!(s(&rows[0], "date"), dates[3].to_string());

    // The journal event carries the collector too.
    let (_, log) = get_json(server.local_addr(), "/v1/events/log");
    let gap_events: Vec<&Value> = log
        .get("events")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .filter(|e| s(e, "kind") == "feed_gap")
        .collect();
    assert_eq!(gap_events.len(), 1, "one feed_gap journal event");
    assert_eq!(s(gap_events[0], "collector"), "b");

    server.shutdown();
    drop(query);
    fed.shutdown().unwrap();
    close_service(service);
    close_service(ref_service);
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&store).ok();
    std::fs::remove_dir_all(&ref_store).ok();
}

/// A store written by the pre-federation single follower — v1 cursor,
/// killed mid-file — is adopted by a (single-collector) federation in
/// place: resume lands on the exact kill point, the final history
/// equals an uninterrupted run byte for byte, and the cursor file is
/// rewritten in the v2 format.
#[test]
fn v1_cursor_migrates_mid_stream_without_replay() {
    let study = Study::build(StudyConfig::test(0.004));
    let dates = window_dates(&study);
    let batch = batch_reference(&study, &dates, "mig-ribs");

    // Reference: one uninterrupted single follower.
    let reference_cursor: FeedCursor = {
        let archive = fresh("mig-ref-archive");
        {
            let mut collector = Collector::new(&study.world, &study.peers);
            moas_routeviews::write_update_archive(&mut collector, &archive, 0, DAYS, BACKGROUND)
                .unwrap();
        }
        let store = fresh("mig-ref-store");
        let service = Arc::new(HistoryService::open(&store, service_config(dates[0])).unwrap());
        let mut follower = FeedFollower::open(
            FeedConfig {
                monitor: MonitorConfig::with_shards(SHARDS),
                checkpoint_bytes: 1,
                ..FeedConfig::new(&archive, dates[0])
            },
            Arc::clone(&service),
        )
        .unwrap();
        catch_up(&mut follower);
        follower.finalize().unwrap();
        let (cursor, _) = follower.shutdown().unwrap();
        assert_history_matches_batch(&service, &dates, &batch, "reference run vs batch");
        close_service(service);
        std::fs::remove_dir_all(&archive).ok();
        std::fs::remove_dir_all(&store).ok();
        cursor
    };

    // First life: the legacy follower, killed mid-file on day 4.
    let archive = fresh("mig-archive");
    let store = fresh("mig-store");
    let mut collector = Collector::new(&study.world, &study.peers);
    let mut sim = SimFeed::new(&mut collector, &archive, 0, DAYS, BACKGROUND).unwrap();
    for _ in 0..4 {
        sim.append_day().unwrap().expect("day in window");
    }
    let killed_cursor: FeedCursor = {
        let service = Arc::new(HistoryService::open(&store, service_config(dates[0])).unwrap());
        let mut follower = FeedFollower::open(
            FeedConfig {
                monitor: MonitorConfig::with_shards(SHARDS),
                checkpoint_bytes: 1,
                ..FeedConfig::new(&archive, dates[0])
            },
            Arc::clone(&service),
        )
        .unwrap();
        catch_up(&mut follower);
        let day4 = sim.begin_day().unwrap().expect("day 4 in window");
        catch_up(&mut follower);
        let cursor = follower.cursor().clone();
        assert!(cursor.offset > 0 && cursor.offset < day4.bytes, "mid-file");
        drop(follower);
        cursor
    };
    let on_disk = std::fs::read_to_string(store.join("FEED_CURSOR")).unwrap();
    assert!(
        on_disk.starts_with("MFCUR001"),
        "the single follower writes the v1 format: {on_disk:?}"
    );

    // The collector finishes the window; a federation adopts the store.
    sim.finish_day().unwrap();
    while sim.append_day().unwrap().is_some() {}

    let service = Arc::new(HistoryService::open(&store, service_config(dates[0])).unwrap());
    let config = FederationConfig {
        monitor: MonitorConfig::with_shards(SHARDS),
        checkpoint_bytes: 1,
        ..FederationConfig::new(dates[0])
    }
    .collector("route-views", &archive);
    let mut fed = Federation::open(config, Arc::clone(&service)).unwrap();
    assert_eq!(
        fed.cursors(),
        vec![killed_cursor],
        "the v1 cursor is adopted as collector 0's exact position"
    );
    catch_up_fed(&mut fed);
    fed.finalize().unwrap();
    let (cursors, _) = fed.shutdown().unwrap();

    // Byte-for-byte resume: the migrated run ends exactly where the
    // uninterrupted single follower did, and the cursor now lives in
    // the v2 format under the same legacy file name.
    assert_eq!(cursors[0].file, reference_cursor.file);
    assert_eq!(cursors[0].offset, reference_cursor.offset);
    assert_eq!(cursors[0].next_day, reference_cursor.next_day);
    assert_eq!(cursors[0].records, reference_cursor.records);
    assert_eq!(cursors[0].files_done, reference_cursor.files_done);
    let migrated = std::fs::read_to_string(store.join("FEED_CURSOR")).unwrap();
    assert!(
        migrated.starts_with("MFCUR002") && migrated.contains("collector=0"),
        "migration must rewrite the cursor as v2: {migrated:?}"
    );
    assert!(
        !store.join("FEED_CURSOR.1").exists(),
        "a single-collector federation stores one cursor"
    );

    // No replay duplicates: the history equals the uninterrupted run.
    assert_history_matches_batch(&service, &dates, &batch, "migrated resume vs batch");
    close_service(service);
    std::fs::remove_dir_all(&archive).ok();
    std::fs::remove_dir_all(&store).ok();
}

/// Property: the final per-origin vantage masks — and so the served
/// corroboration counts — are invariant under the order collectors
/// report the same sightings in.
mod permutation_invariance {
    use super::*;

    fn announce(ts: u32, prefix: &str, origin: u32) -> MrtRecord {
        use moas_bgp::attrs::Attrs;
        use moas_bgp::message::UpdateMsg;
        use moas_bgp::BgpMessage;
        use moas_mrt::bgp4mp::{Bgp4mpMessage, PeeringHeader};
        use moas_mrt::record::MrtBody;
        MrtRecord {
            timestamp: ts,
            body: MrtBody::Bgp4mpMessage(Bgp4mpMessage {
                header: PeeringHeader {
                    peer_as: moas_net::Asn::new(100),
                    local_as: moas_net::Asn::new(6447),
                    if_index: 0,
                    peer_addr: "10.0.0.1".parse().unwrap(),
                    local_addr: "10.0.0.2".parse().unwrap(),
                },
                message: BgpMessage::Update(UpdateMsg {
                    withdrawn: vec![],
                    attrs: Attrs::announcement(
                        format!("100 {origin}").parse().unwrap(),
                        std::net::Ipv4Addr::new(10, 0, 0, 1),
                    ),
                    announced: vec![prefix.parse().unwrap()],
                }),
                as4: false,
            }),
        }
    }

    const PREFIXES: [&str; 4] = [
        "192.0.2.0/24",
        "198.51.100.0/24",
        "203.0.113.0/24",
        "10.42.0.0/16",
    ];

    /// Drives one engine over the sightings, each observed first by
    /// `observers[0]` (regular ingest) and corroborated by the rest,
    /// and returns the final popcount per `(prefix, origin)`.
    fn fold(sightings: &[(usize, u32, Vec<usize>)], reverse: bool) -> HashMap<String, u32> {
        let mut engine = MonitorEngine::new(MonitorConfig {
            collectors: 4,
            ..MonitorConfig::with_shards(SHARDS)
        });
        let mut masks: HashMap<String, u64> = HashMap::new();
        for (i, (prefix_idx, origin, observers)) in sightings.iter().enumerate() {
            let rec = announce(1_000 + i as u32, PREFIXES[*prefix_idx], 7 + *origin);
            let mut order: Vec<u16> = observers.iter().map(|&o| o as u16).collect();
            if reverse {
                order.reverse();
            }
            engine.ingest_record_from(order[0], &rec);
            for &collector in &order[1..] {
                engine.corroborate_record(collector, &rec);
            }
        }
        for seq in engine.drain_events() {
            if let MonitorEvent::OriginCorroborated {
                prefix,
                origin,
                mask,
                ..
            } = seq.event
            {
                *masks.entry(format!("{prefix} {origin}")).or_default() |= mask;
            }
        }
        engine.finish();
        masks
            .into_iter()
            .map(|(k, m)| (k, m.count_ones()))
            .collect()
    }

    proptest! {
        #[test]
        fn corroboration_counts_are_order_invariant(
            sightings in prop::collection::vec(
                (0usize..4, 0u32..3, prop::collection::vec(0usize..4, 1..=4)),
                1..32,
            ),
        ) {
            let forward = fold(&sightings, false);
            let backward = fold(&sightings, true);
            prop_assert_eq!(forward, backward);
        }
    }
}
